//! End-to-end §V pipeline: synthetic Cora → GraphSAGE training →
//! inference on GPU-sim and LPU-sim, checking every reproducibility
//! claim across crate boundaries.

use fpna::core::metrics::ArrayComparison;
use fpna::gpu::GpuModel;
use fpna::nn::cost::lpu_inference;
use fpna::nn::graph::{synthetic_cora, CoraParams};
use fpna::nn::model::{train_model, TrainConfig};
use fpna::nn::sage::Aggregation;
use fpna::tensor::context::GpuContext;

fn dataset() -> fpna::nn::graph::NodeClassification {
    let mut p = CoraParams::tiny();
    p.nodes = 200;
    p.links = 600;
    synthetic_cora(p, 21)
}

fn cfg() -> TrainConfig {
    TrainConfig {
        hidden: 8,
        lr: 0.5,
        epochs: 6,
        init_seed: 5,
        aggregation: Aggregation::Mean,
    }
}

#[test]
fn full_determinism_gives_bitwise_pipeline() {
    let ds = dataset();
    let det = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
    let (m1, l1) = train_model(&ds, &cfg(), &det).unwrap();
    let (m2, l2) = train_model(&ds, &cfg(), &det.for_run(99)).unwrap();
    assert_eq!(l1, l2, "loss trajectories must match exactly");
    let p1 = m1.predict(&det, &ds).unwrap();
    let p2 = m2.predict(&det, &ds).unwrap();
    assert!(p1.bitwise_eq(&p2));
}

#[test]
fn nd_training_diverges_but_learns_equally_well() {
    let ds = dataset();
    let nd_a = GpuContext::new(GpuModel::H100, 2).with_determinism(Some(false));
    let nd_b = GpuContext::new(GpuModel::H100, 3).with_determinism(Some(false));
    let (ma, la) = train_model(&ds, &cfg(), &nd_a).unwrap();
    let (mb, lb) = train_model(&ds, &cfg(), &nd_b).unwrap();
    let cmp = ArrayComparison::compare(&ma.flat_params(), &mb.flat_params());
    assert!(!cmp.bitwise_identical(), "ND training must diverge");
    // similar loss despite different weights
    let (fa, fb) = (la.last().unwrap(), lb.last().unwrap());
    assert!((fa - fb).abs() < 0.25 * fa.abs().max(0.1), "losses {fa} vs {fb}");
    // both models beat chance
    let det = GpuContext::new(GpuModel::H100, 4).with_determinism(Some(true));
    for m in [&ma, &mb] {
        let acc = m.accuracy(&det, &ds).unwrap();
        assert!(acc > 1.2 / 4.0, "accuracy {acc}");
    }
}

#[test]
fn lpu_matches_deterministic_gpu_bitwise_for_this_model() {
    // The LPU executor performs the same operations in the same fixed
    // orders as the deterministic GPU path, so the probabilities agree
    // to fp equality (and in practice bitwise — assert approx here and
    // bitwise stability separately).
    let ds = dataset();
    let det = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
    let (model, _) = train_model(&ds, &cfg(), &det).unwrap();
    let gpu = model.predict(&det, &ds).unwrap();
    let (lpu1, t1) = lpu_inference(&ds, &model).unwrap();
    let (lpu2, t2) = lpu_inference(&ds, &model).unwrap();
    assert_eq!(t1, t2);
    for (a, b) in lpu1.iter().zip(&lpu2) {
        assert_eq!(a.to_bits(), b.to_bits(), "LPU must be bitwise stable");
    }
    for (a, b) in gpu.data().iter().zip(&lpu1) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn inference_mode_matrix_ordering() {
    // The Table 7 ordering: DD = 0 <= DND <= NDND in Vc (statistical,
    // but with compounding training noise the ordering is robust even
    // at small scale for the D rows).
    let ds = dataset();
    let rows = fpna::nn::train::train_inference_matrix(
        &ds,
        &cfg(),
        GpuModel::H100,
        2,
        31,
        &fpna::core::executor::RunExecutor::serial(),
    )
    .unwrap();
    assert_eq!(rows[0].vc.mean, 0.0, "D/D must be exactly reproducible");
    assert!(rows[3].vc.mean > 0.0, "ND/ND must vary");
    assert!(rows[3].vc.mean >= rows[1].vc.mean * 0.5);
}
