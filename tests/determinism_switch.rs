//! Integration of the process-global determinism switch (the
//! `torch.use_deterministic_algorithms` mirror) with the tensor ops —
//! including the documented-but-missing deterministic `scatter_reduce`
//! error the paper ran into.
//!
//! The switch is process-global, so these tests run in one file and
//! serialise on a mutex (separate integration-test binaries run in
//! separate processes, so they cannot interfere).

use std::sync::Mutex;

use fpna::core::determinism::{DeterminismGuard, DeterminismMode};
use fpna::core::error::FpnaError;
use fpna::gpu::GpuModel;
use fpna::tensor::context::GpuContext;
use fpna::tensor::ops::index::index_add;
use fpna::tensor::ops::scatter::{scatter_reduce, ReduceOp};
use fpna::tensor::Tensor;

static GLOBAL_SWITCH: Mutex<()> = Mutex::new(());

fn problem() -> (Tensor, Vec<u32>, Tensor) {
    let n = 4_096usize;
    let mut rng = fpna::core::rng::SplitMix64::new(1);
    let src = Tensor::from_vec(
        vec![n],
        (0..n).map(|_| rng.next_f64() * 1e8 - 5e7).collect(),
    );
    let index: Vec<u32> = (0..n).map(|_| rng.next_below(4) as u32).collect();
    (Tensor::zeros(vec![4]), index, src)
}

#[test]
fn global_deterministic_mode_makes_index_add_stable() {
    let _lock = GLOBAL_SWITCH.lock().unwrap();
    let _guard = DeterminismGuard::new(DeterminismMode::Deterministic);
    let (dst, index, src) = problem();
    // context defers to the global switch (determinism: None)
    let ctx = GpuContext::new(GpuModel::H100, 7);
    let a = index_add(&ctx.for_run(0), &dst, &index, &src).unwrap();
    let b = index_add(&ctx.for_run(1), &dst, &index, &src).unwrap();
    assert!(a.bitwise_eq(&b));
}

#[test]
fn global_deterministic_mode_errors_on_scatter_reduce() {
    let _lock = GLOBAL_SWITCH.lock().unwrap();
    let _guard = DeterminismGuard::new(DeterminismMode::Deterministic);
    let (dst, index, src) = problem();
    let ctx = GpuContext::new(GpuModel::H100, 7);
    let err = scatter_reduce(&ctx, &dst, &index, &src, ReduceOp::Sum).unwrap_err();
    assert!(matches!(
        err,
        FpnaError::NoDeterministicImplementation { op: "scatter_reduce" }
    ));
    // the same documented gap the paper hit: flipping the switch back
    // makes the op run (non-deterministically)
    drop(_guard);
    let _guard = DeterminismGuard::new(DeterminismMode::NonDeterministic);
    assert!(scatter_reduce(&ctx, &dst, &index, &src, ReduceOp::Sum).is_ok());
}

#[test]
fn warn_only_mode_runs_and_counts() {
    let _lock = GLOBAL_SWITCH.lock().unwrap();
    let _guard = DeterminismGuard::new(DeterminismMode::WarnOnly);
    let (dst, index, src) = problem();
    let ctx = GpuContext::new(GpuModel::H100, 7);
    let before = fpna::core::determinism::warning_count();
    assert!(scatter_reduce(&ctx, &dst, &index, &src, ReduceOp::Sum).is_ok());
    assert!(fpna::core::determinism::warning_count() > before);
}

#[test]
fn default_mode_is_nondeterministic_like_pytorch() {
    let _lock = GLOBAL_SWITCH.lock().unwrap();
    let _guard = DeterminismGuard::new(DeterminismMode::NonDeterministic);
    let (dst, index, src) = problem();
    let ctx = GpuContext::new(GpuModel::H100, 7);
    let mut bits = std::collections::HashSet::new();
    for run in 0..10 {
        let out = index_add(&ctx.for_run(run), &dst, &index, &src).unwrap();
        bits.insert(out.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    }
    assert!(bits.len() > 1, "default mode should expose FPNA");
}
