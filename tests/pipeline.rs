//! Cross-crate integration: the simulated GPU's non-deterministic
//! kernels feeding the core variability harness and the statistics
//! substrate — the full §III experimental pipeline in one test file.

use fpna::core::harness::VariabilityHarness;
use fpna::core::metrics::scalar_variability;
use fpna::gpu::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna::stats::describe::Describe;
use fpna::stats::kl::kl_vs_fitted_normal;
use fpna::stats::samplers::{Distribution, Sampler};

fn array(n: usize, seed: u64) -> Vec<f64> {
    Sampler::new(Distribution::paper_uniform(), seed).sample_vec(n)
}

#[test]
fn spa_variability_distribution_end_to_end() {
    let xs = array(200_000, 1);
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(64, 1563);
    let det = device
        .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::InOrder)
        .unwrap()
        .value;
    let vs: Vec<f64> = (0..300)
        .map(|r| {
            let nd = device
                .reduce(ReduceKernel::Spa, &xs, params, &ScheduleKind::Seeded(2).for_run(r))
                .unwrap()
                .value;
            scalar_variability(nd, det) * 1e16
        })
        .collect();
    let d = Describe::of(&vs);
    // variability exists, is tiny in absolute terms, and is roughly
    // centred within a few sigma of zero
    assert!(d.std_dev > 0.0, "SPA must vary");
    assert!(d.mean.abs() < 20.0 * d.std_dev);
    // KL against a fitted normal is finite and small-ish for SPA
    let (kl, _, _) = kl_vs_fitted_normal(&vs, 24);
    assert!(kl.is_finite());
    assert!(kl < 1.0, "SPA KL should be modest, got {kl}");
}

#[test]
fn harness_classifies_kernels_correctly() {
    let xs = array(50_000, 3);
    let device = GpuDevice::new(GpuModel::Gh200);
    let params = KernelParams::new(128, 256);
    let harness = VariabilityHarness::new(25);
    for kernel in [
        ReduceKernel::Cu,
        ReduceKernel::Sptr,
        ReduceKernel::Sprg,
        ReduceKernel::Tprc,
        ReduceKernel::Spa,
    ] {
        let reference = device
            .reduce(kernel, &xs, params, &ScheduleKind::InOrder)
            .unwrap()
            .value;
        let report = harness.array(&[reference], |i| {
            vec![
                device
                    .reduce(kernel, &xs, params, &ScheduleKind::Seeded(9).for_run(i as u64))
                    .unwrap()
                    .value,
            ]
        });
        if kernel.is_deterministic() {
            assert!(
                report.fully_reproducible(),
                "{} should be schedule-invariant",
                kernel.name()
            );
        } else {
            assert!(
                !report.fully_reproducible(),
                "{} should vary across schedules",
                kernel.name()
            );
        }
    }
}

#[test]
fn adversarial_schedules_bound_the_variability() {
    // Failure injection: reverse and in-order schedules give the
    // extreme association orders; seeded schedules must fall between
    // reasonable bounds around the deterministic value.
    let xs = array(100_000, 4);
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(64, 782);
    let det = device
        .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::InOrder)
        .unwrap()
        .value;
    let mut worst = 0.0f64;
    for kind in [
        ScheduleKind::InOrder,
        ScheduleKind::Reverse,
        ScheduleKind::Seeded(5),
        ScheduleKind::UniformRandom(6),
    ] {
        let v = device
            .reduce(ReduceKernel::Spa, &xs, params, &kind)
            .unwrap()
            .value;
        worst = worst.max((v - det).abs() / det.abs());
    }
    assert!(worst > 0.0, "some schedule must perturb the sum");
    assert!(worst < 1e-10, "FPNA is a rounding-level effect, got {worst}");
}

#[test]
fn timing_model_is_consistent_with_outcome_flags() {
    let xs = array(4_096, 7);
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(64, 16);
    let spa = device
        .reduce(ReduceKernel::Spa, &xs, params, &ScheduleKind::Seeded(1))
        .unwrap();
    let ao = device
        .reduce(ReduceKernel::Ao, &xs, params, &ScheduleKind::Seeded(1))
        .unwrap();
    assert!(!spa.deterministic && !ao.deterministic);
    assert!(
        ao.time_ns > spa.time_ns,
        "AO must be slower even at small n"
    );
}
