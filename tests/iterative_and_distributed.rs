//! Integration of the extension substrates: CG error accumulation and
//! distributed collectives, wired through the facade crate.

use fpna::collectives::{allreduce, Algorithm, Ordering};
use fpna::core::metrics::ArrayComparison;
use fpna::gpu::GpuModel;
use fpna::solvers::cg::{
    conjugate_gradient, divergence_experiment, CgConfig, ReductionMode,
};
use fpna::solvers::Csr;

#[test]
fn cg_divergence_grows_but_solutions_agree() {
    let a = Csr::poisson_2d(16);
    let mut rng = fpna::core::rng::SplitMix64::new(3);
    let b: Vec<f64> = (0..256).map(|_| rng.next_f64() - 0.5).collect();
    let cfg = CgConfig {
        max_iters: 150,
        tolerance: 1e-11,
        reduction: ReductionMode::GpuNonDeterministic {
            model: GpuModel::V100,
            seed: 0,
        },
    };
    let d = divergence_experiment(&a, &b, &cfg, (10, 20)).unwrap();
    // bitwise divergence appears within the first few iterations and
    // persists (the very first alpha can coincide by luck)
    assert!(d.vc_per_iteration.iter().take(3).any(|&vc| vc > 0.0));
    let mid = d.vc_per_iteration.len() / 2;
    assert!(d.vc_per_iteration[mid] > 0.3);
    // amplitude grows from the first iteration to the bulk of the solve
    let early = d.vermv_per_iteration[0];
    let bulk = d.vermv_per_iteration[mid];
    assert!(bulk > early, "divergence should accumulate: {early} -> {bulk}");
    // but the answers agree: FPNA here is a trajectory effect
    assert!(d.final_relative_diff < 1e-8);
}

#[test]
fn reproducible_cg_is_bitwise_stable_and_correct() {
    let a = Csr::random_spd(120, 5, 7);
    let mut rng = fpna::core::rng::SplitMix64::new(8);
    let b: Vec<f64> = (0..120).map(|_| rng.next_f64() - 0.5).collect();
    let cfg = CgConfig {
        reduction: ReductionMode::Reproducible,
        ..CgConfig::default()
    };
    let t1 = conjugate_gradient(&a, &b, &cfg).unwrap();
    let t2 = conjugate_gradient(&a, &b, &cfg).unwrap();
    assert!(t1.converged);
    assert_eq!(
        t1.solution.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        t2.solution.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    // the solve is genuinely correct
    let ax = a.spmv(&t1.solution).unwrap();
    let resid: f64 = ax
        .iter()
        .zip(&b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(resid / bn < 1e-8);
}

#[test]
fn gradient_allreduce_scenario() {
    // Data-parallel gradients: the exact allreduce makes the reduced
    // gradient independent of topology; the arrival-order tree does not.
    let ranks: Vec<Vec<f64>> = (0..16)
        .map(|r| {
            let mut rng = fpna::core::rng::SplitMix64::new(100 + r);
            (0..512).map(|_| rng.next_f64() * 2e6 - 1e6).collect()
        })
        .collect();
    let exact_ring = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible);
    let exact_tree = allreduce(
        &ranks,
        Algorithm::KAryTree { fanout: 4 },
        Ordering::Reproducible,
    );
    assert!(ArrayComparison::compare(&exact_ring, &exact_tree).bitwise_identical());

    let nd1 = allreduce(
        &ranks,
        Algorithm::KAryTree { fanout: 4 },
        Ordering::ArrivalOrder { seed: 1 },
    );
    let nd2 = allreduce(
        &ranks,
        Algorithm::KAryTree { fanout: 4 },
        Ordering::ArrivalOrder { seed: 2 },
    );
    let cmp = ArrayComparison::compare(&nd1, &nd2);
    assert!(!cmp.bitwise_identical(), "arrival order must matter");
    // values still agree to rounding — the divergence is bit-level
    assert!(cmp.max_abs_diff < 1e-4);
}
