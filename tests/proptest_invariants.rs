//! Cross-crate property-based tests (proptest) for the suite's core
//! invariants:
//!
//! * metric axioms: `V = 0 ⇔` bitwise identical;
//! * exact summation is bitwise permutation-invariant;
//! * deterministic kernels are schedule-invariant;
//! * schedules are permutations;
//! * conservation: `index_add` preserves total mass up to rounding;
//! * the LPU executor is a pure function.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna::core::metrics::{count_variability, ermv, scalar_variability};
use fpna::gpu::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind, Scheduler};
use fpna::summation::exact::exact_sum;
use fpna::summation::{pairwise_sum, serial_sum};
use fpna::tensor::context::GpuContext;
use fpna::tensor::ops::index::index_add;
use fpna::tensor::Tensor;

fn finite_f64() -> impl Strategy<Value = f64> {
    // wide but safely-summable range
    prop_oneof![
        -1e12..1e12f64,
        -1.0..1.0f64,
        -1e-12..1e-12f64,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_zero_iff_bitwise(xs in vec(finite_f64(), 1..64)) {
        prop_assert_eq!(ermv(&xs, &xs), 0.0);
        prop_assert_eq!(count_variability(&xs, &xs), 0.0);
        // perturb one element
        let mut ys = xs.clone();
        let bump = if ys[0] == 0.0 { 1.0 } else { ys[0] * (1.0 + 1e-9) + 1e-300 };
        if bump.to_bits() != ys[0].to_bits() {
            ys[0] = bump;
            prop_assert!(count_variability(&xs, &ys) > 0.0);
            prop_assert!(ermv(&xs, &ys) > 0.0);
        }
    }

    #[test]
    fn vs_zero_iff_same_bits(a in finite_f64()) {
        prop_assert_eq!(scalar_variability(a, a), 0.0);
        let b = f64::from_bits(a.to_bits() ^ 1);
        prop_assert_ne!(scalar_variability(b, a), 0.0);
    }

    #[test]
    fn exact_sum_is_permutation_invariant(mut xs in vec(finite_f64(), 1..512), seed in any::<u64>()) {
        let reference = exact_sum(&xs);
        let mut rng = fpna::core::rng::SplitMix64::new(seed);
        fpna::core::rng::shuffle(&mut xs, &mut rng);
        prop_assert_eq!(exact_sum(&xs).to_bits(), reference.to_bits());
    }

    #[test]
    fn pairwise_and_serial_agree_to_tolerance(xs in vec(-1e6..1e6f64, 1..2048)) {
        let s = serial_sum(&xs);
        let p = pairwise_sum(&xs);
        let scale = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        prop_assert!((s - p).abs() <= 1e-12 * scale);
    }

    #[test]
    fn deterministic_kernels_ignore_schedule(
        xs in vec(-1e6..1e6f64, 64..512),
        seed in any::<u64>(),
        nt_pow in 4u32..8,
        nb in 1u32..16,
    ) {
        let device = GpuDevice::new(GpuModel::V100);
        let params = KernelParams::new(1 << nt_pow, nb);
        for kernel in [ReduceKernel::Sptr, ReduceKernel::Sprg, ReduceKernel::Tprc, ReduceKernel::Cu] {
            let a = device.reduce(kernel, &xs, params, &ScheduleKind::InOrder).unwrap().value;
            let b = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed)).unwrap().value;
            let c = device.reduce(kernel, &xs, params, &ScheduleKind::Reverse).unwrap().value;
            prop_assert_eq!(a.to_bits(), b.to_bits());
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn schedules_are_permutations(nb in 1u32..2000, seed in any::<u64>(), window in 1u32..512) {
        let s = Scheduler::new(window);
        let order = s.block_finish_order(nb, &ScheduleKind::Seeded(seed));
        let mut seen = vec![false; nb as usize];
        for b in order {
            prop_assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_add_conserves_mass(
        values in vec(-1e6..1e6f64, 1..512),
        rows in 1usize..32,
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let mut rng = fpna::core::rng::SplitMix64::new(seed);
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        let src = Tensor::from_vec(vec![n], values.clone());
        let dst = Tensor::zeros(vec![rows]);
        let ctx = GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false));
        let out = index_add(&ctx, &dst, &index, &src).unwrap();
        let total_in = exact_sum(&values);
        let total_out = exact_sum(out.data());
        let scale = values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((total_in - total_out).abs() <= 1e-10 * scale,
            "mass not conserved: {} vs {}", total_in, total_out);
    }

    #[test]
    fn nd_index_add_replays_bitwise_for_fixed_seed(
        values in vec(-1e6..1e6f64, 1..256),
        rows in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let mut rng = fpna::core::rng::SplitMix64::new(seed);
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        let src = Tensor::from_vec(vec![n], values);
        let dst = Tensor::zeros(vec![rows]);
        let ctx = GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false));
        let a = index_add(&ctx, &dst, &index, &src).unwrap();
        let b = index_add(&ctx, &dst, &index, &src).unwrap();
        prop_assert!(a.bitwise_eq(&b), "same seed must replay identically");
    }
}
