//! Facade smoke test: exercise one public item from **each** of the
//! ten sub-crates through their `fpna::` re-export paths.
//!
//! This pins the workspace wiring — if a member crate is dropped from
//! the facade's dependencies, renamed, or its re-export alias changes,
//! this file stops compiling. It deliberately uses tiny inputs: it is
//! a build-graph test, not a numerics test.

use fpna::collectives::{allreduce, Algorithm, Ordering};
use fpna::core::metrics::scalar_variability;
use fpna::gpu::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna::lpu::{Lpu, LpuSpec, Program, Tensor2, TensorShape};
use fpna::net::{JitterModel, LinkSpec, NetSim, Topology};
use fpna::nn::Graph;
use fpna::solvers::{conjugate_gradient, CgConfig, Csr};
use fpna::stats::Describe;
use fpna::summation::{exact::exact_sum, serial_sum};
use fpna::tensor::Tensor;

#[test]
fn facade_reexports_core() {
    // Identical values have zero scalar variability by definition.
    assert_eq!(scalar_variability(1.5, 1.5), 0.0);
}

#[test]
fn facade_reexports_summation() {
    let xs = [1.0, 2.0, 3.0, 4.0];
    assert_eq!(serial_sum(&xs), 10.0);
    assert_eq!(exact_sum(&xs), 10.0);
}

#[test]
fn facade_reexports_gpu_sim() {
    let device = GpuDevice::new(GpuModel::V100);
    let xs: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let out = device
        .reduce(
            ReduceKernel::Sptr,
            &xs,
            KernelParams::new(32, 8),
            &ScheduleKind::InOrder,
        )
        .expect("deterministic tree reduce on in-order schedule");
    let expected: f64 = xs.iter().sum();
    assert!((out.value - expected).abs() < 1e-6);
}

#[test]
fn facade_reexports_lpu_sim() {
    let mut p = Program::new();
    let a = p.input(TensorShape::new(2, 2));
    let s = p.scale(a, 2.0);
    p.output(s);
    let compiled = Lpu::new(LpuSpec::groq_like()).compile(p).expect("compile");
    let out = compiled
        .run(&[Tensor2::new(2, 2, vec![1.0, 2.0, 3.0, 4.0])])
        .expect("run");
    assert_eq!(out[0].data, vec![2.0, 4.0, 6.0, 8.0]);
}

#[test]
fn facade_reexports_stats() {
    let d = Describe::of(&[1.0, 2.0, 3.0]);
    assert_eq!(d.mean, 2.0);
}

#[test]
fn facade_reexports_tensor() {
    let t = Tensor::full(vec![2, 3], 7.0);
    assert_eq!(t.shape(), &[2, 3]);
    assert_eq!(t.numel(), 6);
    assert!(t.data().iter().all(|&v| v == 7.0));
}

#[test]
fn facade_reexports_nn() {
    let g = Graph::from_undirected(3, &[(0, 1), (1, 2)]);
    assert!(g.num_edges() > 0);
}

#[test]
fn facade_reexports_solvers() {
    let a = Csr::poisson_2d(4);
    let b = vec![1.0; a.rows()];
    let trace = conjugate_gradient(&a, &b, &CgConfig::default()).expect("cg");
    assert!(trace.converged, "CG should converge on a tiny Poisson system");
}

#[test]
fn facade_reexports_collectives() {
    let ranks = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
    let out = allreduce(&ranks, Algorithm::Ring, Ordering::RankOrder);
    assert_eq!(out, vec![4.0, 6.0]);
}

#[test]
fn facade_reexports_net() {
    let topo = Topology::flat_switch(2, LinkSpec::new(100.0, 10.0));
    let mut sim = NetSim::new(&topo, JitterModel::none());
    sim.send_at(0.0, 0, 1, 8, 0);
    let stats = sim.run(|_, _| {});
    assert_eq!(stats.deliveries, 1);
}
