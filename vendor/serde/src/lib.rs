//! Offline shim for the subset of `serde` used by this workspace:
//! the `Serialize` and `Deserialize` derive macros, re-exported as
//! no-ops from [`serde_derive`].
//!
//! The build environment has no crates.io access. The workspace only
//! *marks* types serializable (no code serializes yet), so empty
//! derives keep the annotations compiling until the real dependency
//! can be restored — at which point these vendor crates are deleted
//! and the `[dependencies]` entries switched back to registry
//! versions with no source change.

pub use serde_derive::{Deserialize, Serialize};
