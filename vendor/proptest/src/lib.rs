//! Offline shim for the subset of the `proptest` crate used by this
//! workspace.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the pieces the test suites rely on:
//!
//! * the [`Strategy`](strategy::Strategy) trait with implementations
//!   for numeric ranges, [`Just`](strategy::Just), unions
//!   ([`prop_oneof!`]) and [`collection::vec`](fn@collection::vec);
//! * [`any`](arbitrary::any) for `u64`, `bool` and friends;
//! * the [`proptest!`] runner macro with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` support;
//! * the [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`]
//!   and [`prop_assume!`] assertion macros.
//!
//! Differences from upstream: generation is plain seeded pseudo-random
//! sampling with light edge biasing, and there is **no shrinking** — a
//! failing case reports its seed and the generated inputs instead.
//! Every run is deterministic: the per-test seed stream is derived from
//! the test's module path, so failures reproduce exactly. Set
//! `PROPTEST_SEED=<u64>` to perturb the stream.

/// Pseudo-random source and test-case plumbing used by the generated
/// runners.
pub mod test_runner {
    /// SplitMix64: the shim's only entropy source. Deterministic,
    /// seedable, and good enough for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Build the seed stream for a named test. Deterministic per
        /// test; `PROPTEST_SEED` perturbs it globally.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.trim().parse::<u64>() {
                    h ^= extra.rotate_left(32);
                }
            }
            TestRng::from_seed(h)
        }

        /// Create a generator from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Unbiased uniform draw in `[0, bound)`; `bound` must be > 0.
        #[inline]
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let mut x = self.next_u64();
            let mut m = (x as u128) * (bound as u128);
            let mut l = m as u64;
            if l < bound {
                let t = bound.wrapping_neg() % bound;
                while l < t {
                    x = self.next_u64();
                    m = (x as u128) * (bound as u128);
                    l = m as u64;
                }
            }
            (m >> 64) as u64
        }
    }

    /// Why a generated test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    /// Runner configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of one type. The shim's
    /// counterpart of proptest's `Strategy`; generation is direct (no
    /// value trees, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V: Debug> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// Build a union from its options; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.next_below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Helper used by [`prop_oneof!`](crate::prop_oneof) to box each
    /// branch while letting inference unify their value types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Light edge biasing: hit the endpoints sometimes so
                    // boundary bugs surface even at low case counts.
                    match rng.next_below(16) {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => {
                            let span = (self.end as u64).wrapping_sub(self.start as u64);
                            self.start.wrapping_add(rng.next_below(span) as $t)
                        }
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    match rng.next_below(16) {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => {
                            let span = ((self.end as $u).wrapping_sub(self.start as $u)) as u64;
                            self.start.wrapping_add(rng.next_below(span) as $t)
                        }
                    }
                }
            }
        )*};
    }

    signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            if rng.next_below(16) == 0 {
                return self.start;
            }
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            if rng.next_below(16) == 0 {
                return self.start;
            }
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }
}

/// `any::<T>()` — whole-domain strategies per type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a default whole-domain generation strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draw an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: exponent-uniform magnitudes over a
            // wide dynamic range plus sign, avoiding NaN/inf surprises.
            let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A> Debug for Any<A> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("any")
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `A` (the shim generates finite
    /// values for floats).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed size or a half-open /
    /// inclusive range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u64;
            self.lo + rng.next_below(span) as usize
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` may be a fixed `usize` or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import for tests:
/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same value type.
///
/// Weighted variants (`3 => strat`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Assert a condition inside a `proptest!` body, failing the current
/// case (not panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), l
        );
    }};
}

/// Reject the current case (it is re-drawn, not failed) when an input
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "assumption failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// The property-test runner macro. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, mut v in vec(-1.0..1.0f64, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test runs `cases` successful iterations; `prop_assume!`
/// rejections re-draw. A failure panics with the case seed and the
/// generated inputs (no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __seed_stream = $crate::test_runner::TestRng::for_test(
                    ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                );
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    let __case_seed = __seed_stream.next_u64();
                    let mut __rng = $crate::test_runner::TestRng::from_seed(__case_seed);
                    let __inputs = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __desc = ::std::format!("{:?}", __inputs);
                    let ( $($pat,)+ ) = __inputs;
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            ::std::assert!(
                                __rejected <= __config.cases.saturating_mul(16).max(1024),
                                "proptest {}: too many prop_assume! rejections (last: {})",
                                ::core::stringify!($name),
                                __why,
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            ::std::panic!(
                                "proptest case failed: {}\n  test: {}\n  case seed: {:#018x}\n  inputs: {}",
                                __msg,
                                ::core::stringify!($name),
                                __case_seed,
                                __desc,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(mut xs in vec(0u32..5, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            xs.push(0);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn fixed_size_vec(xs in vec(0.0..1.0f64, 7)) {
            prop_assert_eq!(xs.len(), 7);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(0.5f64), -1.0..1.0f64]) {
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn edge_bias_hits_range_start() {
        let mut rng = TestRng::from_seed(7);
        let hit_lo = (0..200).any(|_| {
            use crate::strategy::Strategy;
            (5usize..50).generate(&mut rng) == 5
        });
        assert!(hit_lo, "edge bias should produce the range start");
    }

    #[test]
    fn deterministic_per_test_stream() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
