//! No-op `Serialize` / `Deserialize` derives for the offline `serde`
//! shim.
//!
//! The workspace marks a handful of config structs
//! (`fpna-gpu-sim::profile`, `fpna-lpu-sim::spec`) as serializable so
//! that a future PR can persist hardware profiles; nothing in-tree
//! serializes yet, so the derives expand to nothing. Swapping the
//! `vendor/serde*` shims for the real crates requires no source change.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
