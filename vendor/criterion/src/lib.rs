//! Offline shim for the subset of the `criterion` crate used by the
//! `fpna-bench` suites.
//!
//! The build environment has no crates.io access. This shim keeps the
//! five bench suites compiling **and running**: `cargo bench` executes
//! each registered benchmark with a short warm-up, a fixed number of
//! timed samples, and prints median / mean wall-clock time per
//! iteration (plus throughput when set). It does not do criterion's
//! statistical analysis, HTML reports, or baseline comparison — it is
//! a stable measurement stub the perf-focused PRs can either build on
//! or swap for the real crate once a registry is reachable.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::throughput`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! ## JSON output
//!
//! Beyond printing, every benchmark appends one JSON line
//! (`{"id": …, "median_ns": …, "mean_ns": …, "samples": …}`) to
//! `<target>/bench-json/<suite>.json`, truncated at the first write of
//! each process so reruns never accumulate stale rows. The
//! `bench_gate` binary in `fpna-bench` diffs those files against a
//! committed baseline and fails CI on regressions — the shim's
//! replacement for criterion's own baseline machinery.

use std::fmt::Display;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-exported std `black_box`, for parity with criterion's.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!`
/// target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Parse criterion-style CLI arguments. The shim accepts and
    /// ignores them (including the `--bench` flag cargo passes).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, None, |b| f(b));
        self
    }
}

/// Identifier for one benchmark within a group, usually derived from
/// the swept parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identify a benchmark by its swept parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration performs; subsequent
    /// benchmarks in the group report elements/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group. (No-op in the shim; kept for API parity.)
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    /// Measured per-sample durations, one per `iter` batch.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running warm-up first and then `sample_size`
    /// timed batches. The routine's return value is black-boxed so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate per-iteration cost to size batches such
        // that one batch is long enough to time reliably.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / warmup_iters.max(1) as u128;
        // Aim for ~2ms per sample batch, clamped to a sane range.
        let batch = ((2_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push(Duration::from_nanos(
                (dt.as_nanos() / batch as u128) as u64,
            ));
        }
    }
}

/// Locate the cargo target directory by walking up from the bench
/// executable (which lives in `<target>/release/deps/…`), falling back
/// to `CARGO_TARGET_DIR`. `None` when neither resolves.
fn target_dir() -> Option<PathBuf> {
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return Some(dir.to_path_buf());
            }
        }
    }
    std::env::var_os("CARGO_TARGET_DIR").map(PathBuf::from)
}

/// Suite name for the JSON file: the executable stem minus cargo's
/// trailing `-<16 hex>` disambiguation hash.
fn suite_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem,
    }
}

/// The process-wide JSON sink: created (and truncated) on first use so
/// each `cargo bench` run of a suite starts from a clean file. Only
/// active when cargo invoked the binary as a bench target (it then
/// passes `--bench`) — unit-test runs of bench code never write.
fn json_sink() -> &'static Mutex<Option<std::fs::File>> {
    static SINK: OnceLock<Mutex<Option<std::fs::File>>> = OnceLock::new();
    SINK.get_or_init(|| {
        let is_bench_run = std::env::args().any(|a| a == "--bench");
        let file = is_bench_run
            .then(target_dir)
            .flatten()
            .and_then(|t| {
                let dir = t.join("bench-json");
                std::fs::create_dir_all(&dir).ok()?;
                std::fs::File::create(dir.join(format!("{}.json", suite_name()))).ok()
            });
        Mutex::new(file)
    })
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn record_json(id: &str, median_ns: u128, mean_ns: u128, samples: usize) {
    if let Ok(mut guard) = json_sink().lock() {
        if let Some(file) = guard.as_mut() {
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"median_ns\":{median_ns},\"mean_ns\":{mean_ns},\"samples\":{samples}}}",
                json_escape(id)
            );
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples recorded)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean_ns =
        sorted.iter().map(|d| d.as_nanos()).sum::<u128>() / sorted.len() as u128;
    record_json(id, median.as_nanos(), mean_ns, sorted.len());
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                format!("  ({:.3e} /s)", n as f64 / secs)
            } else {
                String::new()
            }
        }
        None => String::new(),
    };
    println!(
        "{id:<48} median {:>12} mean {:>10} ns/iter{rate}",
        format!("{median:?}"),
        mean_ns
    );
}

/// Define a benchmark group function, as in criterion:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark `main` that runs one or more groups:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(16));
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..16).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 4 };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 4);
    }
}
