//! Offline shim for the subset of the `rand` crate API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation of the pieces it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], and [`RngCore::next_u64`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha12-based `StdRng`,
//! but with the same reproducibility contract: the same seed always
//! yields the same sequence. Nothing in the workspace depends on the
//! specific stream, only on replayability and reasonable statistical
//! quality.

/// Core trait for random number generators: a source of random bits.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be deterministically created from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed. The same seed always
    /// produces the same stream.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value from raw bits, backing [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value from `rng`'s output stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range from which a single value can be drawn, backing
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire's nearly-divisionless unbiased bounded draw.
#[inline]
fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut l = m as u64;
    if l < bound {
        let t = bound.wrapping_neg() % bound;
        while l < t {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            l = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + next_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + next_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(next_below(rng, span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a standard value: `f64`/`f32` uniform in `[0, 1)`,
    /// integers over their whole range, `bool` fair.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draw a `bool` that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman &amp; Vigna),
    /// seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_residues() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_f64_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
