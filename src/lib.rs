//! # fpna — floating-point non-associativity reproducibility suite
//!
//! Facade crate re-exporting the whole workspace. A Rust reproduction
//! of Shanmugavelu et al., *"Impacts of floating-point non-associativity
//! on reproducibility for HPC and deep learning applications"*
//! (SC 2024, arXiv:2408.05148).
//!
//! The suite contains:
//!
//! * [`core`] *(fpna-core)* — the variability metrics `Vs`, `Vermv`,
//!   `Vc`, the run-to-run variability harness, the determinism context
//!   and floating-point utilities;
//! * [`summation`] *(fpna-summation)* — serial, compensated, pairwise,
//!   reproducible (binned) and multi-threaded ordered/unordered sums;
//! * [`gpu`] *(fpna-gpu-sim)* — a software GPU with a seeded
//!   non-deterministic block scheduler, atomics, shared memory and a
//!   cycle cost model; hosts the six reduction kernels AO, SPA, SPTR,
//!   SPRG, TPRC and CU from the paper;
//! * [`lpu`] *(fpna-lpu-sim)* — a deterministic, statically scheduled
//!   accelerator in the style of the Groq LPU;
//! * [`stats`] *(fpna-stats)* — histograms, KL divergence, power-law
//!   fits and seeded samplers;
//! * [`tensor`] *(fpna-tensor)* — a PyTorch-like tensor library whose
//!   kernels exist in paired deterministic / non-deterministic variants;
//! * [`nn`] *(fpna-nn)* — GraphSAGE on a synthetic Cora, with
//!   deterministic and non-deterministic training and inference;
//! * [`solvers`] *(fpna-solvers)* — sparse CSR + conjugate gradient
//!   with pluggable reductions, for the iterative error-accumulation
//!   study;
//! * [`net`] *(fpna-net)* — a seeded discrete-event interconnect
//!   simulator: flat/fat-tree/hierarchical topologies, `α + β·bytes`
//!   link costs with seeded jitter, and collective cost models;
//! * [`collectives`] *(fpna-collectives)* — simulated multi-node
//!   allreduce with arrival-order nondeterminism and reproducible
//!   variants (the paper's future-work section), including
//!   timing-driven arrival order on top of [`net`];
//! * [`obs`] *(fpna-obs)* — always-compiled, off-by-default
//!   observability: simulated-clock Chrome/Perfetto tracing,
//!   near-zero-cost counters, and wall-clock phase profiling;
//! * [`sweep`] *(fpna-sweep)* — fleet-scale sweep coordination:
//!   process-sharded experiments with byte-identical merged reports, a
//!   resumable content-addressed results store, and the `sweep`
//!   coordinator binary.
//!
//! ```
//! use fpna::core::metrics::scalar_variability;
//! use fpna::summation::serial_sum;
//!
//! let xs = vec![0.1, 0.2, 0.3];
//! let s = serial_sum(&xs);
//! assert_eq!(scalar_variability(s, s), 0.0);
//! ```

pub use fpna_collectives as collectives;
pub use fpna_core as core;
pub use fpna_net as net;
pub use fpna_gpu_sim as gpu;
pub use fpna_lpu_sim as lpu;
pub use fpna_nn as nn;
pub use fpna_obs as obs;
pub use fpna_solvers as solvers;
pub use fpna_stats as stats;
pub use fpna_summation as summation;
pub use fpna_sweep as sweep;
pub use fpna_tensor as tensor;
