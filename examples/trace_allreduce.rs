//! Produce a ready-to-open Perfetto trace of one contended allreduce.
//!
//! Runs a ring allreduce over 8 ranks on a 2-spine fat tree with
//! seeded background tenants at 0.7 offered load and seeded ECMP
//! routing, recording every simulated-clock event — message hops per
//! link, background bursts, admission drops, per-segment combines —
//! through `fpna::obs::trace`, then writes Chrome trace-event JSON.
//!
//! ```text
//! cargo run --release --example trace_allreduce
//! ```
//!
//! Open the result at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): drag `target/obs/trace_allreduce.json` into
//! the window. Lanes `L* a→b` are directed links (spans are wire
//! occupancy, `cat` distinguishes foreground `net` from background
//! `bg`); `rank N` lanes carry inject/deliver/combine instants; the
//! `seg r.chunk c` lanes span each ring segment's reduce-scatter from
//! injection to the final fold. The trace clock is *simulated* time,
//! so the file is a deterministic function of the seeds below.

use fpna::collectives::{allreduce_on, Algorithm, NetConfig, Ordering};
use fpna::net::{LinkSpec, RouteSelect, Topology};
use fpna::obs::trace;

fn main() {
    let ranks = 8usize;
    let len = 1_024usize;
    let seed = 42u64;

    let mut rng = fpna::core::rng::SplitMix64::new(seed);
    let grads: Vec<Vec<f64>> = (0..ranks)
        .map(|_| (0..len).map(|_| rng.next_f64() * 2e4 - 1e4).collect())
        .collect();

    // 2 groups of 4 ranks under 2 spines: cross-group traffic has two
    // equal-cost paths, so seeded ECMP makes a visible difference.
    let topo = Topology::fat_tree_spines(
        ranks,
        4,
        2,
        LinkSpec::new(500.0, 25.0),
        LinkSpec::new(1_500.0, 50.0),
    );
    let cfg = NetConfig::default()
        .with_load(0.7, fpna::core::rng::derive_seed(seed, 0xB6))
        .with_route(RouteSelect::SeededEcmp { seed: fpna::core::rng::derive_seed(seed, 0xEC) });

    trace::start();
    let out = allreduce_on(
        &topo,
        &grads,
        Algorithm::Ring,
        Ordering::ArrivalOrder { seed },
        &cfg,
    );
    let path = std::path::Path::new("target/obs/trace_allreduce.json");
    let events = trace::write_json(path).expect("write trace");
    trace::stop();

    println!(
        "ring allreduce on {}: {} ranks x {} elements, offered load 0.7, seeded ECMP",
        topo.name(),
        ranks,
        len
    );
    println!(
        "simulated elapsed = {:.1} µs; fg deliveries = {}, bg deliveries = {}, bg drops = {}",
        out.elapsed_ns / 1e3,
        out.stats.deliveries,
        out.stats.bg_deliveries,
        out.stats.bg_dropped
    );
    println!("wrote {events} trace events to {}", path.display());
    println!();
    println!("to view: open https://ui.perfetto.dev and drag the file in,");
    println!("or load it in chrome://tracing. All timestamps are simulated");
    println!("nanoseconds — rerunning this example reproduces the file byte");
    println!("for byte.");
}
