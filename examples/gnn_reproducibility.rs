//! The §V scenario: train the same GraphSAGE model twice on identical
//! inputs with identical initial weights and hyperparameters.
//!
//! With non-deterministic kernels, the two runs produce different model
//! weights and different predictions — without any RNG involved. With
//! deterministic kernels the runs are bitwise identical.
//!
//! ```text
//! cargo run --release --example gnn_reproducibility
//! ```

use fpna::core::metrics::ArrayComparison;
use fpna::gpu::GpuModel;
use fpna::nn::graph::{synthetic_cora, CoraParams};
use fpna::nn::model::{train_model, TrainConfig};
use fpna::nn::sage::Aggregation;
use fpna::tensor::context::GpuContext;

fn main() {
    // Scaled-down synthetic Cora so the example runs in seconds.
    let mut params = CoraParams::cora();
    params.nodes = 800;
    params.features = 256;
    params.links = 2_400;
    let ds = synthetic_cora(params, 11);
    let cfg = TrainConfig {
        hidden: 16,
        lr: 0.5,
        epochs: 10,
        init_seed: 99, // identical across every run below
        aggregation: Aggregation::Mean,
    };

    println!("-- deterministic kernels ------------------------------------");
    let det_a = train_model(&ds, &cfg, &GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))).unwrap();
    let det_b = train_model(&ds, &cfg, &GpuContext::new(GpuModel::H100, 2).with_determinism(Some(true))).unwrap();
    let cmp = ArrayComparison::compare(&det_a.0.flat_params(), &det_b.0.flat_params());
    println!("weights bitwise identical: {}", cmp.bitwise_identical());
    assert!(cmp.bitwise_identical());

    println!("\n-- non-deterministic kernels (the PyTorch default) ----------");
    let nd_a = train_model(&ds, &cfg, &GpuContext::new(GpuModel::H100, 1).with_determinism(Some(false))).unwrap();
    let nd_b = train_model(&ds, &cfg, &GpuContext::new(GpuModel::H100, 2).with_determinism(Some(false))).unwrap();
    let cmp = ArrayComparison::compare(&nd_a.0.flat_params(), &nd_b.0.flat_params());
    println!("weights bitwise identical: {}", cmp.bitwise_identical());
    println!("fraction of weights differing (Vc): {:.3}", cmp.vc);
    println!("weight Vermv: {:.3e}", cmp.vermv);
    println!(
        "final losses: run A = {:.6}, run B = {:.6}  (similar loss, different model!)",
        nd_a.1.last().unwrap(),
        nd_b.1.last().unwrap()
    );
    let ctx = GpuContext::new(GpuModel::H100, 3).with_determinism(Some(true));
    let pred_a = nd_a.0.predict(&ctx, &ds).unwrap();
    let pred_b = nd_b.0.predict(&ctx, &ds).unwrap();
    let pcmp = ArrayComparison::compare(pred_a.data(), pred_b.data());
    println!(
        "prediction Vc between the two ND models: {:.3} \
         (deterministic inference cannot undo ND training)",
        pcmp.vc
    );
    assert!(!cmp.bitwise_identical());
}
