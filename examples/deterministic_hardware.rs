//! The paper's hardware answer (§IV–V): on a statically scheduled
//! accelerator there is no runtime arbitration, so determinism is free —
//! and the runtime is a compile-time constant, not a measurement.
//!
//! This example compiles a GraphSAGE inference program for the LPU
//! simulator, runs it repeatedly, and contrasts it with the simulated
//! GPU's non-deterministic inference.
//!
//! ```text
//! cargo run --release --example deterministic_hardware
//! ```

use fpna::core::metrics::ArrayComparison;
use fpna::gpu::GpuModel;
use fpna::nn::cost::{gpu_inference_time_ms, lpu_inference};
use fpna::nn::graph::{synthetic_cora, CoraParams};
use fpna::nn::model::{train_model, TrainConfig};
use fpna::nn::sage::Aggregation;
use fpna::tensor::context::GpuContext;

fn main() {
    let mut params = CoraParams::cora();
    params.nodes = 600;
    params.features = 200;
    params.links = 1_800;
    let ds = synthetic_cora(params, 5);
    let cfg = TrainConfig {
        hidden: 16,
        lr: 0.5,
        epochs: 5,
        init_seed: 7,
        aggregation: Aggregation::Mean,
    };
    let det = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
    let (model, _) = train_model(&ds, &cfg, &det).unwrap();

    // GPU inference with ND kernels: different bits per run.
    let nd = GpuContext::new(GpuModel::H100, 2).with_determinism(Some(false));
    let a = model.predict(&nd.for_run(0), &ds).unwrap();
    let b = model.predict(&nd.for_run(1), &ds).unwrap();
    let cmp = ArrayComparison::compare(a.data(), b.data());
    println!(
        "GPU ND inference, two runs: bitwise identical = {}, Vc = {:.3}",
        cmp.bitwise_identical(),
        cmp.vc
    );

    // LPU inference: compiled once, bitwise identical forever, fixed time.
    let (run1, t1) = lpu_inference(&ds, &model).unwrap();
    let (run2, t2) = lpu_inference(&ds, &model).unwrap();
    let cmp = ArrayComparison::compare(&run1, &run2);
    println!(
        "LPU inference, two runs: bitwise identical = {}, runtime = {t1:.1} us (constant: {})",
        cmp.bitwise_identical(),
        t1 == t2
    );
    assert!(cmp.bitwise_identical());

    let h100 = fpna::gpu::DeviceProfile::new(GpuModel::H100);
    println!(
        "\nmodelled H100 inference: D = {:.2} ms, ND = {:.2} ms; LPU = {:.3} ms",
        gpu_inference_time_ms(&h100, &ds, cfg.hidden, true),
        gpu_inference_time_ms(&h100, &ds, cfg.hidden, false),
        t1 / 1e3
    );
    println!(
        "the deterministic-hardware route gives reproducibility without the \
         deterministic-kernel slowdown."
    );
}
