//! Distributed data-parallel training, in miniature: the gradient
//! allreduce. The paper's conclusion points at MPI-style inter-node
//! communication as the *next* source of run-to-run variation beyond
//! intra-GPU atomics — and at software-scheduled interconnects (the LPU
//! multiprocessor) as the hardware fix.
//!
//! This example allreduces "gradients" from 32 simulated ranks three
//! ways and shows: arrival-order trees vary run to run; every fixed
//! algorithm is internally deterministic but disagrees with the other
//! algorithms (so runtime algorithm selection still breaks
//! reproducibility); and exact accumulators are bitwise stable across
//! all of it.
//!
//! ```text
//! cargo run --release --example distributed_allreduce
//! ```

use fpna::collectives::{allreduce, Algorithm, Ordering};
use fpna::core::metrics::ArrayComparison;
use fpna::core::rng::SplitMix64;

fn main() {
    let ranks = 32usize;
    let grad_len = 8_192usize;
    let mut rng = SplitMix64::new(7);
    let grads: Vec<Vec<f64>> = (0..ranks)
        .map(|_| (0..grad_len).map(|_| rng.next_f64() * 2e4 - 1e4).collect())
        .collect();

    println!("-- arrival-order 8-ary tree (MPI on a busy fabric) -----------");
    let a = allreduce(&grads, Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed: 1 });
    let b = allreduce(&grads, Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed: 2 });
    let cmp = ArrayComparison::compare(&a, &b);
    println!(
        "two runs: bitwise identical = {}, Vc = {:.3}, Vermv = {:.3e}",
        cmp.bitwise_identical(),
        cmp.vc,
        cmp.vermv
    );

    println!("\n-- algorithm selection (each deterministic, mutually different) --");
    let ring = allreduce(&grads, Algorithm::Ring, Ordering::RankOrder);
    let rd = allreduce(&grads, Algorithm::RecursiveDoubling, Ordering::RankOrder);
    let cmp = ArrayComparison::compare(&ring, &rd);
    println!(
        "ring vs recursive doubling: bitwise identical = {}, Vc = {:.3}",
        cmp.bitwise_identical(),
        cmp.vc
    );

    println!("\n-- reproducible (exact accumulators in the messages) ---------");
    let e1 = allreduce(&grads, Algorithm::Ring, Ordering::Reproducible);
    let e2 = allreduce(&grads, Algorithm::KAryTree { fanout: 8 }, Ordering::Reproducible);
    let cmp = ArrayComparison::compare(&e1, &e2);
    println!(
        "different algorithms, exact mode: bitwise identical = {}",
        cmp.bitwise_identical()
    );
    assert!(cmp.bitwise_identical());
    println!(
        "\na distributed trainer built on the exact allreduce gets bitwise-\n\
         reproducible gradients regardless of topology, fabric timing, or\n\
         the library's per-message-size algorithm heuristics."
    );
}
