//! Distributed data-parallel training, in miniature: the gradient
//! allreduce. The paper's conclusion points at MPI-style inter-node
//! communication as the *next* source of run-to-run variation beyond
//! intra-GPU atomics — and at software-scheduled interconnects (the LPU
//! multiprocessor) as the hardware fix.
//!
//! This example allreduces "gradients" from 32 simulated ranks three
//! ways and shows: arrival-order trees vary run to run; every fixed
//! algorithm is internally deterministic but disagrees with the other
//! algorithms (so runtime algorithm selection still breaks
//! reproducibility); and exact accumulators are bitwise stable across
//! all of it.
//!
//! ```text
//! cargo run --release --example distributed_allreduce
//! ```

use fpna::collectives::{allreduce, allreduce_on, Algorithm, NetConfig, Ordering};
use fpna::core::metrics::ArrayComparison;
use fpna::core::rng::SplitMix64;
use fpna::net::{LinkSpec, Topology};

fn main() {
    let ranks = 32usize;
    let grad_len = 8_192usize;
    let mut rng = SplitMix64::new(7);
    let grads: Vec<Vec<f64>> = (0..ranks)
        .map(|_| (0..grad_len).map(|_| rng.next_f64() * 2e4 - 1e4).collect())
        .collect();

    println!("-- arrival-order 8-ary tree (MPI on a busy fabric) -----------");
    let a = allreduce(&grads, Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed: 1 });
    let b = allreduce(&grads, Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed: 2 });
    let cmp = ArrayComparison::compare(&a, &b);
    println!(
        "two runs: bitwise identical = {}, Vc = {:.3}, Vermv = {:.3e}",
        cmp.bitwise_identical(),
        cmp.vc,
        cmp.vermv
    );

    println!("\n-- algorithm selection (each deterministic, mutually different) --");
    let ring = allreduce(&grads, Algorithm::Ring, Ordering::RankOrder);
    let rd = allreduce(&grads, Algorithm::RecursiveDoubling, Ordering::RankOrder);
    let cmp = ArrayComparison::compare(&ring, &rd);
    println!(
        "ring vs recursive doubling: bitwise identical = {}, Vc = {:.3}",
        cmp.bitwise_identical(),
        cmp.vc
    );

    println!("\n-- timing-driven arrival order (event-driven fabric sim) -----");
    // Same collective, but on a simulated 4-node cluster: combine
    // order now *emerges* from per-hop message timing instead of a
    // shuffle, and each run reports its simulated wall-clock.
    let topo = Topology::hierarchical(
        4,
        ranks / 4,
        LinkSpec::new(200.0, 100.0),
        LinkSpec::new(500.0, 50.0),
        LinkSpec::new(5_000.0, 25.0),
    );
    let cfg = NetConfig::default();
    let n1 = allreduce_on(&topo, &grads, Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed: 1 }, &cfg);
    let n2 = allreduce_on(&topo, &grads, Algorithm::KAryTree { fanout: 8 }, Ordering::ArrivalOrder { seed: 2 }, &cfg);
    let cmp = ArrayComparison::compare(&n1.values, &n2.values);
    println!(
        "two fabric schedules on {}: bitwise identical = {}, Vc = {:.3}, elapsed = {:.1}µs / {:.1}µs",
        topo.name(),
        cmp.bitwise_identical(),
        cmp.vc,
        n1.elapsed_ns / 1e3,
        n2.elapsed_ns / 1e3
    );
    let sw1 = allreduce_on(&topo, &grads, Algorithm::KAryTree { fanout: 8 }, Ordering::RankOrder, &cfg);
    let sw2 = allreduce_on(&topo, &grads, Algorithm::KAryTree { fanout: 8 }, Ordering::RankOrder, &cfg);
    let cmp = ArrayComparison::compare(&sw1.values, &sw2.values);
    println!(
        "software-scheduled (zero jitter): bitwise identical = {}, elapsed identical = {}",
        cmp.bitwise_identical(),
        sw1.elapsed_ns == sw2.elapsed_ns
    );

    println!("\n-- reproducible (exact accumulators in the messages) ---------");
    let e1 = allreduce(&grads, Algorithm::Ring, Ordering::Reproducible);
    let e2 = allreduce(&grads, Algorithm::KAryTree { fanout: 8 }, Ordering::Reproducible);
    let cmp = ArrayComparison::compare(&e1, &e2);
    println!(
        "different algorithms, exact mode: bitwise identical = {}",
        cmp.bitwise_identical()
    );
    assert!(cmp.bitwise_identical());
    println!(
        "\na distributed trainer built on the exact allreduce gets bitwise-\n\
         reproducible gradients regardless of topology, fabric timing, or\n\
         the library's per-message-size algorithm heuristics."
    );
}
