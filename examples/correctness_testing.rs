//! The CP2K scenario (§III of the paper): tolerance-based correctness
//! tests in computational chemistry use thresholds as tight as 1e-14 on
//! quantities like energies. A non-deterministic reduction inside the
//! computation makes such tests *flaky*: the same build, the same
//! inputs, a different verdict per run — and real bugs can hide inside
//! the noise band.
//!
//! This example computes a mock "total energy" (a large sum of pairwise
//! interaction terms) with a non-deterministic and a deterministic
//! kernel and measures the false-failure rate of a tolerance test
//! against a golden reference.
//!
//! ```text
//! cargo run --release --example correctness_testing
//! ```

use fpna::core::fp::relative_diff;
use fpna::gpu::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna::stats::samplers::{Distribution, Sampler};

fn main() {
    // Mock per-pair interaction energies: Boltzmann-distributed
    // magnitudes, mixed signs — the shape of a real force-field sum.
    let n = 2_000_000usize;
    let mut sampler = Sampler::new(Distribution::boltzmann(), 2024);
    let mut sign = fpna::core::rng::SplitMix64::new(55);
    let terms: Vec<f64> = (0..n)
        .map(|_| {
            let magnitude = sampler.sample() * 1e3;
            if sign.next_f64() < 0.5 {
                -magnitude
            } else {
                magnitude
            }
        })
        .collect();

    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(128, 2048);
    // Golden reference: the deterministic kernel, once.
    let golden = device
        .reduce(ReduceKernel::Sptr, &terms, params, &ScheduleKind::InOrder)
        .unwrap()
        .value;

    let tolerance = 1e-14; // CP2K-tight
    let runs = 500;
    let mut nd_failures = 0;
    let mut det_failures = 0;
    for run in 0..runs {
        let nd = device
            .reduce(ReduceKernel::Spa, &terms, params, &ScheduleKind::Seeded(3).for_run(run))
            .unwrap()
            .value;
        if relative_diff(nd, golden) > tolerance {
            nd_failures += 1;
        }
        let det = device
            .reduce(ReduceKernel::Sptr, &terms, params, &ScheduleKind::Seeded(3).for_run(run))
            .unwrap()
            .value;
        if relative_diff(det, golden) > tolerance {
            det_failures += 1;
        }
    }
    println!("mock energy           : {golden:.15e}");
    println!("tolerance             : {tolerance:.0e} (relative)");
    println!(
        "ND kernel (SPA)       : {nd_failures}/{runs} runs FAIL the correctness test"
    );
    println!(
        "det kernel (SPTR)     : {det_failures}/{runs} runs fail (always 0 — bitwise stable)"
    );
    println!();
    println!(
        "every ND failure above is *false*: the code is identical, only the\n\
         atomic commit order changed. This is exactly how FPNA masks real\n\
         bugs in threshold-based test suites."
    );
    assert_eq!(det_failures, 0);
}
