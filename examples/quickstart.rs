//! Quickstart: see floating-point non-associativity break run-to-run
//! reproducibility, measure it, and fix it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fpna::core::metrics::scalar_variability;
use fpna::gpu::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna::stats::samplers::{Distribution, Sampler};
use fpna::summation::{exact::exact_sum, serial::randomly_permuted_sum, serial_sum};

fn main() {
    // 1. The phenomenon, on the CPU: the same million numbers, summed
    //    in a different order, give a bitwise different answer.
    let mut sampler = Sampler::new(Distribution::standard_normal(), 42);
    let xs = sampler.sample_vec(1_000_000);
    let in_order = serial_sum(&xs);
    let shuffled = randomly_permuted_sum(&xs, 7);
    println!("serial sum          : {in_order:.17e}");
    println!("permuted sum        : {shuffled:.17e}");
    println!("difference          : {:+.3e}", shuffled - in_order);
    println!("Vs                  : {:+.3e}", scalar_variability(shuffled, in_order));

    // 2. The same phenomenon on a (simulated) GPU: the atomic-based SPA
    //    kernel commits block partials in scheduler order, so every
    //    "launch" (seed) can give different bits...
    let device = GpuDevice::new(GpuModel::V100);
    let params = KernelParams::new(64, 7813);
    println!("\nSPA (atomicAdd partials) over 5 simulated launches:");
    for run in 0..5 {
        let out = device
            .reduce(ReduceKernel::Spa, &xs, params, &ScheduleKind::Seeded(1).for_run(run))
            .unwrap();
        println!("  launch {run}: {:.17e}", out.value);
    }

    // 3. ...while the deterministic tree kernel (SPTR) is bitwise
    //    stable under every schedule:
    println!("SPTR (deterministic tree) over the same launches:");
    for run in 0..5 {
        let out = device
            .reduce(ReduceKernel::Sptr, &xs, params, &ScheduleKind::Seeded(1).for_run(run))
            .unwrap();
        println!("  launch {run}: {:.17e}", out.value);
    }

    // 4. And the strongest fix: the exact (reproducible) accumulator
    //    gives the same bits for ANY order — even the shuffled one.
    let exact_in_order = exact_sum(&xs);
    let mut shuffled_xs = xs.clone();
    let mut rng = fpna::core::rng::SplitMix64::new(9);
    fpna::core::rng::shuffle(&mut shuffled_xs, &mut rng);
    let exact_shuffled = exact_sum(&shuffled_xs);
    println!("\nexact sum, in order : {exact_in_order:.17e}");
    println!("exact sum, shuffled : {exact_shuffled:.17e}");
    assert_eq!(exact_in_order.to_bits(), exact_shuffled.to_bits());
    println!("bitwise identical   : true");
}
