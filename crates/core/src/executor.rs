//! Order-invariant parallel execution of repeated runs.
//!
//! Every experiment in the suite has the same outer shape: execute the
//! same kernel `N` times with per-run seeds and aggregate the results.
//! [`RunExecutor`] fans those runs out across OS threads while keeping
//! the aggregate **bitwise identical** to a serial execution at any
//! thread count — a working demonstration of the paper's thesis that
//! parallelism and reproducibility are compatible when the algorithm is
//! made order-invariant *by construction*:
//!
//! 1. each run's seed is a pure function of `(base_seed, run_index)`
//!    (SplitMix64 derivation via [`crate::rng::derive_seed`]), never of
//!    which worker picks the run up or when;
//! 2. results are collected into run-index order before any
//!    floating-point aggregation happens, so downstream summaries see
//!    the exact sequence a serial loop would have produced.
//!
//! Workers pull run indices from a shared atomic counter (dynamic load
//! balancing — runs of a sweep can have very different costs), stash
//! `(index, result)` pairs locally, and the pairs are sorted by index
//! at the end. The same pattern `fpna_summation::parallel` uses: scoped
//! `std` threads, no extra dependencies.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable providing the default worker count when no
/// explicit `--threads` flag is given (see
/// [`RunExecutor::from_env`]).
pub const THREADS_ENV: &str = "FPNA_THREADS";

// ---------------------------------------------------------------------------
// Intra-run parallelism: one shared thread budget
// ---------------------------------------------------------------------------

/// Process-wide worker-count hint for the *intra-run* primitives
/// ([`par_chunk_map`], [`par_fill`], [`par_reduce_indexed`]): how many
/// threads a single kernel invocation may use. `0` means "not yet
/// configured" — the first read falls back to [`THREADS_ENV`].
static INTRA_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside every executor-spawned worker thread. The intra-run
    /// primitives consult it and collapse to one worker, so an outer
    /// [`RunExecutor::map_runs`] fan-out and the inner kernels share a
    /// single thread budget instead of multiplying (no nested
    /// oversubscription). Chunk *boundaries* are unaffected — they are
    /// a pure function of `(len, hint)` — so results stay bitwise
    /// identical whether a kernel runs inside a worker or not.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on a thread spawned by one of this module's primitives.
fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Configure the intra-run worker-count hint (normally wired from the
/// same `--threads` flag that sizes the [`RunExecutor`], so one flag
/// governs the whole budget).
///
/// The hint only ever changes wall-clock time: every primitive in this
/// module is bitwise invariant to it by construction.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn set_intra_threads(threads: usize) {
    assert!(threads > 0, "need at least one intra-run worker thread");
    INTRA_THREADS.store(threads, Ordering::Relaxed);
}

/// The parallelism a kernel would *actually* get right now: 1 inside
/// an executor worker (the shared budget is already spent), otherwise
/// the [`intra_threads`] hint. Use this to decide whether a
/// parallel-only code path (e.g. a gather buffer) is worth its setup
/// cost; use [`intra_threads`] for chunk *boundaries*, which must stay
/// a pure function of the configured hint.
pub fn effective_intra_threads() -> usize {
    if in_worker() {
        1
    } else {
        intra_threads()
    }
}

/// The intra-run worker-count hint: the value set via
/// [`set_intra_threads`], else the [`THREADS_ENV`] environment
/// variable, else 1.
pub fn intra_threads() -> usize {
    match INTRA_THREADS.load(Ordering::Relaxed) {
        0 => {
            let t = RunExecutor::from_env().threads;
            // Racing initializers compute the same value; store is
            // idempotent.
            INTRA_THREADS.store(t, Ordering::Relaxed);
            t
        }
        t => t,
    }
}

/// Test support: serializes tests that mutate the process-global
/// intra-thread hint via [`set_intra_threads`]. Without the lock, two
/// such tests running on parallel test threads can flip the hint
/// under each other, so a "serial reference" might be computed with
/// parallelism enabled and the serial==parallel assertion would be
/// vacuous. The guard also restores the serial hint when dropped —
/// including on panic or a failed property case — so a parallel hint
/// never leaks into unrelated tests.
#[doc(hidden)]
pub fn intra_hint_test_guard() -> impl Drop {
    static LOCK: Mutex<()> = Mutex::new(());
    struct Guard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            set_intra_threads(1);
        }
    }
    Guard(LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Fixed chunk boundaries over `0..len`: `min(hint, len)` nearly-equal
/// contiguous ranges. A **pure function of `(len, hint)`** — never of
/// the thread count actually running, which is what lets a combine in
/// chunk-index order stay bitwise identical when the scheduler, the
/// machine, or a nested thread budget changes how many workers show
/// up.
pub fn fixed_chunks(len: usize, num_threads_hint: usize) -> Vec<Range<usize>> {
    assert!(num_threads_hint > 0, "need at least one chunk");
    let pieces = num_threads_hint.min(len);
    if len == 0 {
        return Vec::new();
    }
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let n = base + usize::from(i < extra);
        out.push(start..start + n);
        start += n;
    }
    out
}

/// Map fixed chunks of `0..len` through `f` in parallel and return the
/// per-chunk results **in chunk-index order**.
///
/// Chunk boundaries come from [`fixed_chunks`]`(len, hint)`; `f`
/// receives `(chunk_index, index_range)` and must be pure in them.
/// One OS thread runs per chunk unless the call happens inside another
/// executor worker, in which case the chunks run serially on the
/// current thread (shared budget) — either way the returned vector is
/// identical.
pub fn par_chunk_map_with<T, F>(num_threads_hint: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let _span = fpna_obs::profile::scope("executor.par_chunk_map");
    let chunks = fixed_chunks(len, num_threads_hint);
    if chunks.len() <= 1 || in_worker() {
        return chunks.into_iter().enumerate().map(|(i, r)| f(i, r)).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(chunks.len());
    slots.resize_with(chunks.len(), || None);
    std::thread::scope(|scope| {
        for ((i, range), slot) in chunks.into_iter().enumerate().zip(slots.iter_mut()) {
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                *slot = Some(f(i, range));
            });
        }
    });
    slots.into_iter().map(|s| s.expect("worker finished")).collect()
}

/// [`par_chunk_map_with`] using the ambient [`intra_threads`] hint —
/// the form library kernels call so `--threads` reaches them without
/// plumbing an executor through every signature.
pub fn par_chunk_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    par_chunk_map_with(intra_threads(), len, f)
}

/// Parallel indexed reduction: map fixed chunks through `map`, then
/// fold the per-chunk partials **strictly in chunk-index order** with
/// `fold`. Returns `None` for `len == 0`.
///
/// Deterministic for a fixed `(len, hint)` pair regardless of
/// scheduling; bitwise equal to the serial execution whenever the
/// value is partition-invariant (exact accumulators) or the chunks are
/// independent.
pub fn par_reduce_indexed<T, M, F>(num_threads_hint: usize, len: usize, map: M, fold: F) -> Option<T>
where
    T: Send,
    M: Fn(usize, Range<usize>) -> T + Sync,
    F: FnMut(T, T) -> T,
{
    par_chunk_map_with(num_threads_hint, len, map)
        .into_iter()
        .reduce(fold)
}

/// Fill disjoint regions of `out` in parallel: `out` is viewed as
/// `out.len() / unit` logical indices of `unit` elements each, split
/// into fixed chunks, and `f(index_range, region)` runs once per chunk
/// with exclusive access to that chunk's region.
///
/// Because every region is disjoint the result is bitwise identical to
/// the serial loop for any hint; parallelism is skipped inside another
/// worker (shared budget).
///
/// # Panics
///
/// Panics if `unit == 0` or `out.len()` is not a multiple of `unit`.
pub fn par_fill<T, F>(out: &mut [T], unit: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit must be positive");
    assert!(out.len().is_multiple_of(unit), "out length must be a multiple of unit");
    let _span = fpna_obs::profile::scope("executor.par_fill");
    let len = out.len() / unit;
    let chunks = fixed_chunks(len, intra_threads());
    if chunks.len() <= 1 || in_worker() {
        for range in chunks {
            let region = &mut out[range.start * unit..range.end * unit];
            f(range, region);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut consumed = 0usize;
        for range in chunks {
            let (region, tail) = rest.split_at_mut((range.end - range.start) * unit);
            rest = tail;
            consumed += region.len();
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                f(range, region);
            });
        }
        debug_assert_eq!(consumed, len * unit);
    });
}

/// Executes repeated runs across a fixed number of worker threads,
/// collecting results in run-index order.
///
/// `threads == 1` is the serial path: a plain loop, no threads spawned.
/// For any thread count the returned vector is identical — parallelism
/// changes wall-clock time only, never results.
///
/// Workers pull run indices from a shared atomic counter. By default
/// they pull one index at a time (best load balancing when runs are
/// expensive); [`RunExecutor::with_batch`] makes each pull claim a
/// *batch* of consecutive indices, amortising the counter contention
/// when individual runs are very short. Batching affects scheduling
/// only — results are sorted into run-index order regardless, so the
/// output is bitwise identical at every batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunExecutor {
    /// Number of worker threads (≥ 1).
    pub threads: usize,
    /// Run indices claimed per atomic-counter pull (≥ 1).
    pub batch: usize,
}

impl Default for RunExecutor {
    fn default() -> Self {
        RunExecutor::serial()
    }
}

impl RunExecutor {
    /// Executor with an explicit worker count (batch size 1).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        RunExecutor { threads, batch: 1 }
    }

    /// The serial executor (one worker, no threads spawned).
    pub fn serial() -> Self {
        RunExecutor { threads: 1, batch: 1 }
    }

    /// Executor configured from the `FPNA_THREADS` environment
    /// variable; unset, empty, or unparsable values mean serial.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(1);
        RunExecutor { threads, batch: 1 }
    }

    /// This executor pulling `batch` consecutive run indices per
    /// shared-counter hit — the work-stealing chunk-size knob for
    /// sweeps whose individual runs are so short that the per-run
    /// atomic/mutex traffic dominates. Purely a scheduling change:
    /// results stay bitwise identical at any batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must claim at least one run");
        self.batch = batch;
        self
    }

    /// The per-run RNG seed for run `run` of an experiment keyed by
    /// `base_seed` — a pure function of its arguments (SplitMix64
    /// derivation), so the seed a run sees never depends on the thread
    /// count or on scheduling.
    #[inline]
    pub fn run_seed(base_seed: u64, run: usize) -> u64 {
        crate::rng::derive_seed(base_seed, run as u64)
    }

    /// Execute `run(i)` for every **global** run index `i` in `range`
    /// and return the results in index order.
    ///
    /// This is the process-sharding primitive: a shard owning
    /// `range = a..b` of an `0..runs` sweep calls its closure with the
    /// *global* indices `a, a+1, …, b−1`, so index-keyed seeding
    /// ([`RunExecutor::run_seed`] /
    /// [`crate::rng::derive_seed`]) hands every run the seed it would
    /// have received in a single-process execution — shard boundaries
    /// can change freely without moving one bit of any run.
    pub fn map_run_range<T, F>(&self, range: Range<usize>, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let start = range.start;
        self.map_runs(range.len(), |i| run(start + i))
    }

    /// Execute `run(0), run(1), …, run(runs − 1)` and return the
    /// results in run-index order.
    ///
    /// The closure must be pure in its index argument (it receives
    /// shared references only); any per-run randomness should flow from
    /// [`RunExecutor::run_seed`] or an equivalent index-keyed
    /// derivation. Under that contract the output is bitwise identical
    /// for every thread count.
    ///
    /// Called from inside another executor worker (a nested fan-out),
    /// the runs execute serially on the current thread: the outer
    /// fan-out already owns the thread budget, and the serial path is
    /// bitwise identical by the same contract.
    pub fn map_runs<T, F>(&self, runs: usize, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Observability flags are sampled once per fan-out so the
        // disabled path stays a pair of predictable branches per run.
        // Tracing gives each run its own trace "process" (pid = run
        // index + 1; pid 0 is everything outside a fan-out), restored
        // afterwards so nested fan-outs keep the outer run's track.
        let tracing = fpna_obs::trace::enabled();
        let profiling = fpna_obs::profile::enabled();
        let _span = fpna_obs::profile::scope("executor.map_runs");
        let run = |i: usize| {
            let prev = if tracing {
                let p = fpna_obs::trace::current_pid();
                fpna_obs::trace::set_current_pid(i as u64 + 1);
                p
            } else {
                0
            };
            let t0 = profiling.then(std::time::Instant::now);
            let out = run(i);
            if let Some(t0) = t0 {
                fpna_obs::profile::record("executor.run", t0.elapsed().as_nanos() as u64);
            }
            if tracing {
                fpna_obs::trace::set_current_pid(prev);
            }
            out
        };
        if self.threads == 1 || runs <= 1 || in_worker() {
            return (0..runs).map(run).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(runs));
        let workers = self.threads.min(runs);
        let batch = self.batch;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Claim `batch` consecutive indices per counter
                        // hit; the tail batch may be partial.
                        let start = next.fetch_add(batch, Ordering::Relaxed);
                        if start >= runs {
                            break;
                        }
                        for i in start..(start + batch).min(runs) {
                            local.push((i, run(i)));
                        }
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        let mut pairs = collected.into_inner().unwrap();
        debug_assert_eq!(pairs.len(), runs, "every run must report exactly once");
        // Completion order is scheduler-dependent; run-index order is
        // not. This sort is what makes the executor order-invariant.
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| (i as f64).sqrt() * 1e3 + i as f64;
        let reference: Vec<f64> = RunExecutor::serial().map_runs(100, work);
        for threads in [2, 3, 4, 7, 16] {
            let got = RunExecutor::new(threads).map_runs(100, work);
            let same = reference
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} must match serial bitwise");
        }
    }

    #[test]
    fn map_run_range_passes_global_indices() {
        let work = |i: usize| (i as f64).sqrt() * 1e3 + i as f64;
        let full: Vec<f64> = RunExecutor::serial().map_runs(50, work);
        for threads in [1usize, 3, 8] {
            let ex = RunExecutor::new(threads);
            // Any partition of 0..50 must reproduce the matching slice
            // of the full sweep bitwise.
            for (a, b) in [(0usize, 50usize), (0, 17), (17, 33), (33, 50), (49, 50), (20, 20)] {
                let part = ex.map_run_range(a..b, work);
                assert_eq!(part.len(), b - a);
                let same = full[a..b]
                    .iter()
                    .zip(&part)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "range {a}..{b} threads={threads}");
            }
        }
    }

    #[test]
    fn results_are_in_run_order() {
        let out = RunExecutor::new(4).map_runs(1000, |i| i);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_runs() {
        let out = RunExecutor::new(64).map_runs(3, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn zero_runs() {
        let out: Vec<u8> = RunExecutor::new(4).map_runs(0, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn batching_is_bitwise_invariant() {
        let work = |i: usize| (i as f64).sqrt() * 1e3 + (i as f64).sin();
        let reference: Vec<f64> = RunExecutor::serial().map_runs(97, work);
        for threads in [2, 4, 7] {
            for batch in [1usize, 2, 3, 16, 97, 200] {
                let got = RunExecutor::new(threads).with_batch(batch).map_runs(97, work);
                let same = reference
                    .iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same && got.len() == 97, "threads={threads} batch={batch}");
            }
        }
    }

    #[test]
    fn batched_results_stay_in_run_order() {
        let out = RunExecutor::new(4).with_batch(7).map_runs(1000, |i| i);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_batch_panics() {
        RunExecutor::new(2).with_batch(0);
    }

    #[test]
    fn run_seed_is_pure_and_distinct() {
        let s0 = RunExecutor::run_seed(42, 0);
        assert_eq!(s0, RunExecutor::run_seed(42, 0));
        assert_ne!(s0, RunExecutor::run_seed(42, 1));
        assert_ne!(s0, RunExecutor::run_seed(43, 0));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        RunExecutor::new(0);
    }

    #[test]
    fn fixed_chunks_partition_exactly() {
        for (len, hint) in [(10usize, 3usize), (0, 2), (7, 7), (100, 1), (5, 8), (1_000_000, 4)] {
            let chunks = fixed_chunks(len, hint);
            assert_eq!(chunks.len(), hint.min(len));
            if len == 0 {
                continue;
            }
            assert_eq!(chunks[0].start, 0);
            assert_eq!(chunks.last().unwrap().end, len);
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            // Pure function of (len, hint): recomputing gives identical
            // boundaries.
            assert_eq!(chunks, fixed_chunks(len, hint));
        }
    }

    #[test]
    fn par_chunk_map_is_in_chunk_order_and_hint_invariant_for_maps() {
        // Per-index work (a pure map): results must not depend on the
        // hint at all.
        let reference: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        for hint in [1usize, 2, 4, 7, 16] {
            let chunks = par_chunk_map_with(hint, 1000, |_, range| {
                range.map(|i| (i as f64).sqrt()).collect::<Vec<_>>()
            });
            let flat: Vec<f64> = chunks.into_iter().flatten().collect();
            let same = reference.iter().zip(&flat).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same && flat.len() == 1000, "hint={hint}");
        }
    }

    #[test]
    fn par_reduce_indexed_folds_in_chunk_order() {
        // Concatenation is order-sensitive, so this checks the fold
        // really walks chunks in index order.
        for hint in [1usize, 3, 5, 8] {
            let joined = par_reduce_indexed(
                hint,
                26,
                |_, range| range.map(|i| (b'a' + i as u8) as char).collect::<String>(),
                |a, b| a + &b,
            )
            .unwrap();
            assert_eq!(joined, "abcdefghijklmnopqrstuvwxyz", "hint={hint}");
        }
        assert_eq!(par_reduce_indexed(4, 0, |_, _| 1u32, |a, b| a + b), None);
    }

    #[test]
    fn par_fill_matches_serial_loop() {
        let mut serial = vec![0.0f64; 12 * 3];
        for i in 0..12 {
            for j in 0..3 {
                serial[i * 3 + j] = (i * 3 + j) as f64 * 1.5;
            }
        }
        let _hint = intra_hint_test_guard();
        for hint in [1usize, 2, 4, 7] {
            set_intra_threads(hint);
            let mut out = vec![0.0f64; 12 * 3];
            par_fill(&mut out, 3, |rows, region| {
                for (local, i) in rows.clone().enumerate() {
                    for j in 0..3 {
                        region[local * 3 + j] = (i * 3 + j) as f64 * 1.5;
                    }
                }
            });
            assert_eq!(out, serial, "hint={hint}");
        }
    }

    #[test]
    fn nested_fan_out_collapses_but_bits_do_not_change() {
        let work = |i: usize| {
            // A nested fan-out inside each run: must serialize, and the
            // value must match the flat computation.
            let inner: f64 = RunExecutor::new(4)
                .map_runs(5, |j| ((i * 5 + j) as f64).sqrt())
                .iter()
                .sum();
            inner
        };
        let reference: Vec<f64> = (0..20).map(work).collect();
        let got = RunExecutor::new(4).map_runs(20, work);
        let same = reference.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same);
    }

    #[test]
    fn from_env_defaults_to_serial() {
        // The test environment does not set FPNA_THREADS; and even if a
        // caller does, the executor must hold a positive thread count.
        assert!(RunExecutor::from_env().threads >= 1);
    }
}
