//! Order-invariant parallel execution of repeated runs.
//!
//! Every experiment in the suite has the same outer shape: execute the
//! same kernel `N` times with per-run seeds and aggregate the results.
//! [`RunExecutor`] fans those runs out across OS threads while keeping
//! the aggregate **bitwise identical** to a serial execution at any
//! thread count — a working demonstration of the paper's thesis that
//! parallelism and reproducibility are compatible when the algorithm is
//! made order-invariant *by construction*:
//!
//! 1. each run's seed is a pure function of `(base_seed, run_index)`
//!    (SplitMix64 derivation via [`crate::rng::derive_seed`]), never of
//!    which worker picks the run up or when;
//! 2. results are collected into run-index order before any
//!    floating-point aggregation happens, so downstream summaries see
//!    the exact sequence a serial loop would have produced.
//!
//! Workers pull run indices from a shared atomic counter (dynamic load
//! balancing — runs of a sweep can have very different costs), stash
//! `(index, result)` pairs locally, and the pairs are sorted by index
//! at the end. The same pattern `fpna_summation::parallel` uses: scoped
//! `std` threads, no extra dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable providing the default worker count when no
/// explicit `--threads` flag is given (see
/// [`RunExecutor::from_env`]).
pub const THREADS_ENV: &str = "FPNA_THREADS";

/// Executes repeated runs across a fixed number of worker threads,
/// collecting results in run-index order.
///
/// `threads == 1` is the serial path: a plain loop, no threads spawned.
/// For any thread count the returned vector is identical — parallelism
/// changes wall-clock time only, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunExecutor {
    /// Number of worker threads (≥ 1).
    pub threads: usize,
}

impl Default for RunExecutor {
    fn default() -> Self {
        RunExecutor::serial()
    }
}

impl RunExecutor {
    /// Executor with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        RunExecutor { threads }
    }

    /// The serial executor (one worker, no threads spawned).
    pub fn serial() -> Self {
        RunExecutor { threads: 1 }
    }

    /// Executor configured from the `FPNA_THREADS` environment
    /// variable; unset, empty, or unparsable values mean serial.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(1);
        RunExecutor { threads }
    }

    /// The per-run RNG seed for run `run` of an experiment keyed by
    /// `base_seed` — a pure function of its arguments (SplitMix64
    /// derivation), so the seed a run sees never depends on the thread
    /// count or on scheduling.
    #[inline]
    pub fn run_seed(base_seed: u64, run: usize) -> u64 {
        crate::rng::derive_seed(base_seed, run as u64)
    }

    /// Execute `run(0), run(1), …, run(runs − 1)` and return the
    /// results in run-index order.
    ///
    /// The closure must be pure in its index argument (it receives
    /// shared references only); any per-run randomness should flow from
    /// [`RunExecutor::run_seed`] or an equivalent index-keyed
    /// derivation. Under that contract the output is bitwise identical
    /// for every thread count.
    pub fn map_runs<T, F>(&self, runs: usize, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || runs <= 1 {
            return (0..runs).map(run).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(runs));
        let workers = self.threads.min(runs);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        local.push((i, run(i)));
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        let mut pairs = collected.into_inner().unwrap();
        debug_assert_eq!(pairs.len(), runs, "every run must report exactly once");
        // Completion order is scheduler-dependent; run-index order is
        // not. This sort is what makes the executor order-invariant.
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| (i as f64).sqrt() * 1e3 + i as f64;
        let reference: Vec<f64> = RunExecutor::serial().map_runs(100, work);
        for threads in [2, 3, 4, 7, 16] {
            let got = RunExecutor::new(threads).map_runs(100, work);
            let same = reference
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} must match serial bitwise");
        }
    }

    #[test]
    fn results_are_in_run_order() {
        let out = RunExecutor::new(4).map_runs(1000, |i| i);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_runs() {
        let out = RunExecutor::new(64).map_runs(3, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn zero_runs() {
        let out: Vec<u8> = RunExecutor::new(4).map_runs(0, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn run_seed_is_pure_and_distinct() {
        let s0 = RunExecutor::run_seed(42, 0);
        assert_eq!(s0, RunExecutor::run_seed(42, 0));
        assert_ne!(s0, RunExecutor::run_seed(42, 1));
        assert_ne!(s0, RunExecutor::run_seed(43, 0));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        RunExecutor::new(0);
    }

    #[test]
    fn from_env_defaults_to_serial() {
        // The test environment does not set FPNA_THREADS; and even if a
        // caller does, the executor must hold a positive thread count.
        assert!(RunExecutor::from_env().threads >= 1);
    }
}
