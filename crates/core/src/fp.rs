//! Floating-point building blocks: error-free transforms, ULP
//! distances, and directed comparison helpers.
//!
//! The deterministic and compensated summation algorithms in
//! `fpna-summation` are built on the classic error-free transforms
//! (Knuth's `two_sum`, Dekker's `fast_two_sum`): `two_sum(a, b)`
//! produces `(s, e)` with `s = fl(a + b)` and `a + b = s + e` *exactly*.
//! These identities hold for every pair of finite doubles and are the
//! reason compensated sums can recover the bits that plain summation
//! drops — the same bits whose loss order-dependence makes parallel sums
//! non-reproducible.

/// Error-free sum (Knuth). Returns `(s, e)` with `s = fl(a+b)` and
/// `a + b = s + e` exactly, for finite inputs.
///
/// ```
/// use fpna_core::fp::two_sum;
/// let (s, e) = two_sum(1.0, 1e-17);
/// assert_eq!(s, 1.0);        // 1e-17 is below 1 ulp of 1.0
/// assert_eq!(e, 1e-17);      // ... but the transform keeps it exactly
/// ```
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum assuming `|a| >= |b|` (Dekker). One branchless
/// operation cheaper than [`two_sum`]; the exactness guarantee only
/// holds under the magnitude precondition.
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(
        a == 0.0 || b == 0.0 || a.abs() >= b.abs() || a.is_nan() || b.is_nan(),
        "fast_two_sum requires |a| >= |b|"
    );
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free product via fused multiply-add: `(p, e)` with
/// `p = fl(a*b)` and `a*b = p + e` exactly.
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// Distance in units-in-the-last-place between two doubles, computed on
/// the monotone integer mapping of the IEEE-754 encoding (negative
/// numbers are reflected so ordering matches the reals). Returns
/// `u64::MAX` when either argument is NaN.
///
/// `ulp_distance(a, a) == 0`, and adjacent representable doubles are at
/// distance 1 — including across `±0.0`.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map to an ordered integer line: negatives become -(magnitude), so
    // the integer ordering matches the ordering of the reals and the
    // gap between adjacent representables is exactly 1.
    let ord = |x: f64| -> i64 {
        let bits = x.to_bits();
        if bits >> 63 == 0 {
            bits as i64
        } else {
            -((bits & 0x7fff_ffff_ffff_ffff) as i64)
        }
    };
    let (x, y) = (ord(a), ord(b));
    x.abs_diff(y)
}

/// One unit in the last place of `x` (the gap to the next representable
/// double away from zero). For non-finite input returns NaN.
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    let ax = x.abs();
    let next = f64::from_bits(ax.to_bits() + 1);
    next - ax
}

/// `true` when `a` and `b` are within `max_ulps` units in the last
/// place. The tolerance style used by threshold-based correctness tests
/// in HPC codes (cf. the CP2K discussion in the paper §III).
#[inline]
pub fn approx_eq_ulps(a: f64, b: f64, max_ulps: u64) -> bool {
    ulp_distance(a, b) <= max_ulps
}

/// Relative difference `|a − b| / max(|a|, |b|)`, zero when both are
/// zero. The classic tolerance metric for correctness testing.
#[inline]
pub fn relative_diff(a: f64, b: f64) -> f64 {
    if a.to_bits() == b.to_bits() {
        return 0.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let cases = [
            (1.0, 1e-17),
            (1e16, 1.0),
            (-3.5, 3.5 + 1e-16),
            (0.1, 0.2),
            (1e308, -1e292),
        ];
        for &(a, b) in &cases {
            let (s, e) = two_sum(a, b);
            assert_eq!(s, a + b);
            // exactness: reconstructing in higher "precision" via the
            // identity a+b-s == e must hold when s is representable.
            if e != 0.0 {
                // the error term is below 1 ulp of s
                assert!(e.abs() <= ulp(s), "a={a} b={b} s={s} e={e}");
            }
        }
    }

    #[test]
    fn two_sum_recovers_dropped_bits() {
        let (s, e) = two_sum(1e16, 1.0);
        assert_ne!(e, 0.0); // the 1.0 was partially dropped from s
        assert_eq!(s + e, 1e16 + 1.0);
    }

    #[test]
    fn fast_two_sum_matches_two_sum_under_precondition() {
        let cases: [(f64, f64); 3] = [(5.0, 1e-17), (1e10, -123.456), (-8.0, 0.5)];
        for &(a, b) in &cases {
            assert!(a.abs() >= b.abs());
            let (s1, e1) = two_sum(a, b);
            let (s2, e2) = fast_two_sum(a, b);
            assert_eq!(s1, s2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn two_prod_is_exact_via_fma() {
        let (p, e) = two_prod(0.1, 0.3);
        // p + e reconstructs the true product more closely than p alone.
        assert_eq!(p, 0.1 * 0.3);
        assert!(e.abs() < ulp(p));
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        let next = f64::from_bits(1.0f64.to_bits() + 1);
        assert_eq!(ulp_distance(1.0, next), 1);
        assert_eq!(ulp_distance(next, 1.0), 1);
        // across zero: -0.0 and 0.0 map to the same ordinal
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        let tiny = f64::from_bits(1); // smallest subnormal
        assert_eq!(ulp_distance(0.0, tiny), 1);
        assert_eq!(ulp_distance(-tiny, tiny), 2);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn ulp_of_one_is_machine_epsilon() {
        assert_eq!(ulp(1.0), f64::EPSILON);
        assert!(ulp(f64::INFINITY).is_nan());
    }

    #[test]
    fn approx_and_relative() {
        assert!(approx_eq_ulps(1.0, 1.0 + f64::EPSILON, 1));
        assert!(!approx_eq_ulps(1.0, 1.0 + 3.0 * f64::EPSILON, 1));
        assert_eq!(relative_diff(2.0, 2.0), 0.0);
        assert!((relative_diff(2.0, 1.0) - 0.5).abs() < 1e-16);
        assert_eq!(relative_diff(0.0, 0.0), 0.0);
    }
}
