//! Variability metrics `Vs`, `Vermv` and `Vc` (paper §II).
//!
//! The paper defines three metrics quantifying run-to-run variability of
//! a non-deterministic implementation of a function against a reference
//! (usually deterministic) implementation. Each metric is zero if and
//! only if the two outputs are bitwise identical and increases with
//! variability.
//!
//! * Scalar outputs: `Vs(f) = 1 − |f_ND / f_D|`. Note that `Vs` is
//!   *signed*: Table 1 of the paper reports negative values whenever
//!   `|f_ND| > |f_D|`.
//! * Array outputs: `Vermv` (elementwise relative mean absolute
//!   variation, Eq. 1) and `Vc` (count variability, Eq. 2).
//!
//! "Different" is always interpreted *bitwise* — via [`f64::to_bits`] —
//! so `-0.0` vs `0.0` counts as a difference and `NaN` compares equal to
//! an identically-encoded `NaN`. This matches the paper's usage: the
//! metrics certify bitwise reproducibility, not approximate agreement.

/// Scalar variability `Vs(f) = 1 − |f_ND / f_D|` between a
/// non-deterministic output `nd` and a deterministic reference `d`.
///
/// Returns exactly `0.0` when the two values are bitwise identical
/// (including the `d == 0` case). When `d == 0` but `nd != 0` the ratio
/// is infinite and `Vs` is `-∞`, faithfully signalling unbounded
/// relative variability.
///
/// ```
/// use fpna_core::metrics::scalar_variability;
/// assert_eq!(scalar_variability(2.0, 2.0), 0.0);
/// // |nd| > |d|  =>  Vs < 0 (as in Table 1 of the paper)
/// assert!(scalar_variability(2.0 + 1e-15, 2.0) < 0.0);
/// assert!(scalar_variability(2.0 - 1e-15, 2.0) > 0.0);
/// ```
#[inline]
pub fn scalar_variability(nd: f64, d: f64) -> f64 {
    if nd.to_bits() == d.to_bits() {
        return 0.0;
    }
    1.0 - (nd / d).abs()
}

/// Elementwise relative mean absolute variation (`Vermv`, paper Eq. 1):
///
/// `Vermv = (1/D) Σ_i |A_i − B_i| / |A_i|`
///
/// where `A` is the reference output and `B` the comparison output, both
/// flattened to slices (the metric is a sum over all elements of a
/// multidimensional array, so the logical shape is irrelevant as long as
/// both sides use the same layout).
///
/// Elements where `A_i == 0` would make the relative term undefined; for
/// those the absolute difference `|A_i − B_i|` is used instead (zero when
/// both are zero), keeping the metric finite and preserving the
/// zero-iff-bitwise-identical property.
///
/// # Panics
///
/// Panics if the slices have different lengths — comparing outputs of
/// different shapes is a logic error, not a data condition.
pub fn ermv(reference: &[f64], other: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        other.len(),
        "Vermv requires equally-shaped outputs"
    );
    if reference.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (&a, &b) in reference.iter().zip(other) {
        if a.to_bits() == b.to_bits() {
            continue;
        }
        let diff = (a - b).abs();
        if a == 0.0 {
            acc += diff;
        } else {
            acc += diff / a.abs();
        }
    }
    acc / reference.len() as f64
}

/// Count variability (`Vc`, paper Eq. 2): the fraction of elements that
/// differ *bitwise* between the two outputs.
///
/// `Vc = (1/D) Σ_i 1(A_i ≠ B_i)`
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use fpna_core::metrics::count_variability;
/// assert_eq!(count_variability(&[1.0, 2.0, 3.0], &[1.0, 2.5, 3.0]), 1.0 / 3.0);
/// ```
pub fn count_variability(reference: &[f64], other: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        other.len(),
        "Vc requires equally-shaped outputs"
    );
    if reference.is_empty() {
        return 0.0;
    }
    let differing = reference
        .iter()
        .zip(other)
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    differing as f64 / reference.len() as f64
}

/// Full comparison of two equally-shaped array outputs: both array
/// metrics plus the maximum elementwise absolute difference, computed in
/// one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayComparison {
    /// Elementwise relative mean absolute variation (Eq. 1).
    pub vermv: f64,
    /// Count variability (Eq. 2).
    pub vc: f64,
    /// Largest absolute elementwise difference.
    pub max_abs_diff: f64,
    /// Number of elements compared.
    pub len: usize,
}

impl ArrayComparison {
    /// Compare `other` against `reference` (both flattened).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn compare(reference: &[f64], other: &[f64]) -> Self {
        assert_eq!(
            reference.len(),
            other.len(),
            "array comparison requires equally-shaped outputs"
        );
        let mut rel_acc = 0.0f64;
        let mut differing = 0usize;
        let mut max_abs = 0.0f64;
        for (&a, &b) in reference.iter().zip(other) {
            if a.to_bits() == b.to_bits() {
                continue;
            }
            differing += 1;
            let diff = (a - b).abs();
            max_abs = max_abs.max(diff);
            rel_acc += if a == 0.0 { diff } else { diff / a.abs() };
        }
        let d = reference.len().max(1) as f64;
        ArrayComparison {
            vermv: rel_acc / d,
            vc: differing as f64 / d,
            max_abs_diff: max_abs,
            len: reference.len(),
        }
    }

    /// `true` when the outputs were bitwise identical.
    #[inline]
    pub fn bitwise_identical(&self) -> bool {
        self.vc == 0.0
    }

    /// Rebuild a comparison from its stored metric values — the
    /// deserialization side of shard result files, which persist
    /// `(vermv, vc, max_abs_diff, len)` per run instead of the raw
    /// output vectors. Round-trips [`ArrayComparison::compare`]
    /// exactly: every field (and therefore every downstream
    /// [`crate::harness::VariabilityReport`] statistic) is bitwise the
    /// original.
    #[inline]
    pub fn from_parts(vermv: f64, vc: f64, max_abs_diff: f64, len: usize) -> Self {
        ArrayComparison {
            vermv,
            vc,
            max_abs_diff,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_zero_iff_bitwise_identical() {
        assert_eq!(scalar_variability(1.5, 1.5), 0.0);
        assert_eq!(scalar_variability(0.0, 0.0), 0.0);
        assert_eq!(scalar_variability(f64::NAN, f64::NAN), 0.0);
        assert_ne!(scalar_variability(1.5 + 1e-14, 1.5), 0.0);
        // -0.0 and 0.0 differ bitwise but |ratio| = NaN; the bitwise
        // check fires first only for identical encodings.
        assert!(scalar_variability(-0.0, 0.0).is_nan());
    }

    #[test]
    fn vs_sign_convention() {
        // nd larger in magnitude -> negative Vs, matching Table 1.
        assert!(scalar_variability(10.0 + 1e-10, 10.0) < 0.0);
        assert!(scalar_variability(10.0 - 1e-10, 10.0) > 0.0);
        assert!(scalar_variability(-10.0 - 1e-10, -10.0) < 0.0);
    }

    #[test]
    fn vs_zero_reference() {
        assert_eq!(scalar_variability(1.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn ermv_basics() {
        assert_eq!(ermv(&[], &[]), 0.0);
        assert_eq!(ermv(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let v = ermv(&[2.0, 4.0], &[2.0, 5.0]);
        assert!((v - 0.25 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn ermv_zero_reference_elements_fall_back_to_absolute() {
        let v = ermv(&[0.0, 1.0], &[0.5, 1.0]);
        assert!((v - 0.25).abs() < 1e-15);
        // both zero -> no contribution
        assert_eq!(ermv(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn vc_counts_bitwise_differences() {
        assert_eq!(count_variability(&[0.0], &[-0.0]), 1.0);
        assert_eq!(count_variability(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(
            count_variability(&[1.0, 2.0, 3.0, 4.0], &[1.0, 9.0, 3.0, 8.0]),
            0.5
        );
    }

    #[test]
    fn comparison_matches_individual_metrics() {
        let a = [1.0, 0.0, 3.0, -2.0, 5.5];
        let b = [1.0, 0.25, 3.0, -2.5, 5.5];
        let c = ArrayComparison::compare(&a, &b);
        assert!((c.vermv - ermv(&a, &b)).abs() < 1e-16);
        assert_eq!(c.vc, count_variability(&a, &b));
        assert_eq!(c.max_abs_diff, 0.5);
        assert!(!c.bitwise_identical());
        let ident = ArrayComparison::compare(&a, &a);
        assert!(ident.bitwise_identical());
        assert_eq!(ident.max_abs_diff, 0.0);
    }

    #[test]
    #[should_panic(expected = "equally-shaped")]
    fn mismatched_lengths_panic() {
        let _ = ermv(&[1.0], &[1.0, 2.0]);
    }
}
