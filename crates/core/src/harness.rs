//! Run-to-run variability harness.
//!
//! The paper's experimental template (§II, §IV) is always the same:
//!
//! 1. fix an input;
//! 2. compute a reference output `A` — from a deterministic kernel when
//!    one exists, otherwise from the first non-deterministic run
//!    (`A = B_0`);
//! 3. run the non-deterministic implementation `N` times, producing
//!    `B_1 … B_N`;
//! 4. report the distribution of `Vs` / `Vermv` / `Vc` over the runs.
//!
//! [`VariabilityHarness`] packages that template. The closure receives
//! the run index, which experiments use to reseed the simulated
//! scheduler — the analogue of "launch the kernel again and let the
//! hardware pick a new interleaving".
//!
//! Runs execute through a [`RunExecutor`]: serial by default, fanned
//! out across OS threads via [`VariabilityHarness::with_executor`].
//! Because per-run seeds are index-keyed and comparisons are collected
//! in run-index order, every [`VariabilityReport`] is bit-for-bit
//! identical at any thread count.

use crate::executor::RunExecutor;
use crate::metrics::ArrayComparison;

/// Descriptive statistics over the per-run metric values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Number of non-deterministic runs compared against the reference.
    pub runs: usize,
    /// Mean of the metric across runs.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for a single run).
    pub std_dev: f64,
    /// Minimum across runs.
    pub min: f64,
    /// Maximum across runs.
    pub max: f64,
}

impl RunSummary {
    /// Summarise a sequence of metric values.
    pub fn from_values(values: &[f64]) -> Self {
        let runs = values.len();
        if runs == 0 {
            return RunSummary {
                runs: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / runs as f64;
        let var = if runs > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (runs - 1) as f64
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        RunSummary {
            runs,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Aggregated variability of a non-deterministic array-valued kernel
/// over repeated runs against a fixed reference.
#[derive(Debug, Clone)]
pub struct VariabilityReport {
    /// Summary of `Vermv` across runs.
    pub vermv: RunSummary,
    /// Summary of `Vc` across runs.
    pub vc: RunSummary,
    /// Summary of the max absolute elementwise difference across runs.
    pub max_abs_diff: RunSummary,
    /// Number of runs whose output was bitwise identical to the
    /// reference.
    pub bitwise_identical_runs: usize,
    /// Per-run raw metric values `(vermv, vc)`, for downstream
    /// distribution analysis.
    pub per_run: Vec<(f64, f64)>,
}

impl VariabilityReport {
    /// `true` when every run reproduced the reference bitwise — the
    /// definition of a reproducible kernel.
    pub fn fully_reproducible(&self) -> bool {
        self.bitwise_identical_runs == self.per_run.len()
    }

    /// Assemble a report from per-run comparisons in run-index order.
    pub fn from_comparisons(comparisons: &[ArrayComparison]) -> Self {
        let vermv: Vec<f64> = comparisons.iter().map(|c| c.vermv).collect();
        let vc: Vec<f64> = comparisons.iter().map(|c| c.vc).collect();
        let max_abs: Vec<f64> = comparisons.iter().map(|c| c.max_abs_diff).collect();
        VariabilityReport {
            vermv: RunSummary::from_values(&vermv),
            vc: RunSummary::from_values(&vc),
            max_abs_diff: RunSummary::from_values(&max_abs),
            bitwise_identical_runs: comparisons
                .iter()
                .filter(|c| c.bitwise_identical())
                .count(),
            per_run: comparisons.iter().map(|c| (c.vermv, c.vc)).collect(),
        }
    }
}

/// Harness executing the paper's repeated-run experimental template.
#[derive(Debug, Clone, Copy)]
pub struct VariabilityHarness {
    /// Number of non-deterministic runs.
    pub runs: usize,
    /// How runs execute (serial by default). Any thread count produces
    /// the identical report.
    pub executor: RunExecutor,
}

impl VariabilityHarness {
    /// A harness performing `runs` non-deterministic executions
    /// serially.
    pub fn new(runs: usize) -> Self {
        VariabilityHarness {
            runs,
            executor: RunExecutor::serial(),
        }
    }

    /// Execute the runs through `executor` instead of serially.
    pub fn with_executor(mut self, executor: RunExecutor) -> Self {
        self.executor = executor;
        self
    }

    /// Scalar experiment: `reference` is the deterministic output,
    /// `run(i)` the i-th non-deterministic output. Returns the per-run
    /// `Vs` values.
    pub fn scalar<F>(&self, reference: f64, run: F) -> Vec<f64>
    where
        F: Fn(usize) -> f64 + Sync,
    {
        self.executor
            .map_runs(self.runs, |i| {
                crate::metrics::scalar_variability(run(i), reference)
            })
    }

    /// Array experiment with a deterministic reference output.
    pub fn array<F>(&self, reference: &[f64], run: F) -> VariabilityReport
    where
        F: Fn(usize) -> Vec<f64> + Sync,
    {
        let comparisons = self.comparisons_range(reference, 0..self.runs, run);
        VariabilityReport::from_comparisons(&comparisons)
    }

    /// Per-run comparisons for the **global** run indices in `range` —
    /// the shardable slice of [`VariabilityHarness::array`]. `run(i)`
    /// receives the global index, so a shard computing `a..b` of an
    /// `0..runs` experiment produces bit-for-bit the comparisons a
    /// single process would have produced at those indices; a report
    /// assembled from the concatenation (in index order) of any
    /// partition equals the single-process report.
    pub fn comparisons_range<F>(
        &self,
        reference: &[f64],
        range: std::ops::Range<usize>,
        run: F,
    ) -> Vec<ArrayComparison>
    where
        F: Fn(usize) -> Vec<f64> + Sync,
    {
        debug_assert!(range.end <= self.runs, "range beyond the experiment's runs");
        self.executor.map_run_range(range, |i| {
            let out = run(i);
            ArrayComparison::compare(reference, &out)
        })
    }

    /// Array experiment for ops *without* a deterministic kernel: the
    /// first run becomes the reference (`A = B_0`, paper §IV), and the
    /// remaining `runs − 1` executions are compared against it.
    pub fn array_self_referenced<F>(&self, run: F) -> VariabilityReport
    where
        F: Fn(usize) -> Vec<f64> + Sync,
    {
        assert!(self.runs >= 1, "self-referenced experiment needs >= 1 run");
        let reference = run(0);
        let remaining = VariabilityHarness {
            runs: self.runs - 1,
            executor: self.executor,
        };
        remaining.array(&reference, |i| run(i + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_values() {
        let s = RunSummary::from_values(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_known_std() {
        // values 1,2,3: mean 2, sample variance 1
        let s = RunSummary::from_values(&[1.0, 2.0, 3.0]);
        assert!((s.std_dev - 1.0).abs() < 1e-15);
        assert_eq!(s.runs, 3);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = RunSummary::from_values(&[]);
        assert_eq!(e.runs, 0);
        let s = RunSummary::from_values(&[5.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn deterministic_kernel_is_fully_reproducible() {
        let h = VariabilityHarness::new(10);
        let reference = vec![1.0, 2.0, 3.0];
        let report = h.array(&reference, |_| vec![1.0, 2.0, 3.0]);
        assert!(report.fully_reproducible());
        assert_eq!(report.vermv.mean, 0.0);
        assert_eq!(report.vc.max, 0.0);
    }

    #[test]
    fn perturbed_runs_are_detected() {
        let h = VariabilityHarness::new(4);
        let reference = vec![1.0, 2.0];
        // runs 0 and 2 perturb the first element
        let report = h.array(&reference, |i| {
            if i % 2 == 0 {
                vec![1.0 + 1e-12, 2.0]
            } else {
                vec![1.0, 2.0]
            }
        });
        assert_eq!(report.bitwise_identical_runs, 2);
        assert!(!report.fully_reproducible());
        assert!(report.vc.max > 0.0);
        assert_eq!(report.vc.min, 0.0);
    }

    #[test]
    fn scalar_harness_reports_vs_per_run() {
        let h = VariabilityHarness::new(3);
        let vs = h.scalar(10.0, |i| 10.0 + i as f64 * 1e-13);
        assert_eq!(vs[0], 0.0);
        assert!(vs[1] < 0.0); // larger magnitude => negative Vs
        assert!(vs[2] < vs[1]);
    }

    #[test]
    fn self_referenced_uses_first_run() {
        let h = VariabilityHarness::new(3);
        let outputs = [vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]];
        let report = h.array_self_referenced(|i| outputs[i].clone());
        // 2 comparisons: run1 identical, run2 differs in 1 of 2 elements
        assert_eq!(report.per_run.len(), 2);
        assert_eq!(report.bitwise_identical_runs, 1);
        assert_eq!(report.vc.max, 0.5);
    }
}
