//! Global determinism context, mirroring
//! `torch.use_deterministic_algorithms` (paper §IV).
//!
//! PyTorch exposes a process-wide switch that makes operations with a
//! deterministic implementation use it, and makes operations *without*
//! one raise a runtime error. The paper leans on this switch for all of
//! its D/ND comparisons — and reports that the documentation around it
//! is not always accurate (they hit a runtime error asking for a
//! deterministic `scatter_reduce`). We reproduce the same three-state
//! API so the tensor library can honour it:
//!
//! * [`DeterminismMode::NonDeterministic`] — kernels may use runtime-
//!   ordered atomics (the default, as in PyTorch);
//! * [`DeterminismMode::Deterministic`] — deterministic kernels are
//!   required; ops lacking one return
//!   [`FpnaError::NoDeterministicImplementation`];
//! * [`DeterminismMode::WarnOnly`] — deterministic kernels are selected
//!   when available but missing ones only record a warning (PyTorch's
//!   `warn_only=True`).
//!
//! The mode is a process-global (an `AtomicU8`), just like the original,
//! plus an RAII [`DeterminismGuard`] for scoped flips in tests.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use crate::error::FpnaError;

/// Process-wide determinism policy. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeterminismMode {
    /// Allow non-deterministic kernels (default).
    NonDeterministic,
    /// Require deterministic kernels; error when none exists.
    Deterministic,
    /// Prefer deterministic kernels; count a warning when none exists.
    WarnOnly,
}

static MODE: AtomicU8 = AtomicU8::new(0);
static WARNINGS: AtomicUsize = AtomicUsize::new(0);

fn encode(mode: DeterminismMode) -> u8 {
    match mode {
        DeterminismMode::NonDeterministic => 0,
        DeterminismMode::Deterministic => 1,
        DeterminismMode::WarnOnly => 2,
    }
}

fn decode(v: u8) -> DeterminismMode {
    match v {
        0 => DeterminismMode::NonDeterministic,
        1 => DeterminismMode::Deterministic,
        _ => DeterminismMode::WarnOnly,
    }
}

/// Set the global determinism mode. Equivalent to
/// `torch.use_deterministic_algorithms(mode)`.
pub fn use_deterministic_algorithms(mode: DeterminismMode) {
    MODE.store(encode(mode), Ordering::SeqCst);
}

/// Read the current global determinism mode.
pub fn determinism_mode() -> DeterminismMode {
    decode(MODE.load(Ordering::SeqCst))
}

/// `true` when deterministic kernels should be selected (i.e. the mode
/// is `Deterministic` or `WarnOnly`).
pub fn deterministic_requested() -> bool {
    determinism_mode() != DeterminismMode::NonDeterministic
}

/// Number of "no deterministic implementation" warnings recorded while
/// in [`DeterminismMode::WarnOnly`].
pub fn warning_count() -> usize {
    WARNINGS.load(Ordering::SeqCst)
}

/// Called by kernels that have no deterministic implementation when the
/// caller asked for determinism. Returns an error in `Deterministic`
/// mode, records a warning in `WarnOnly` mode, is a no-op otherwise.
pub fn report_nondeterministic_only(op: &'static str) -> Result<(), FpnaError> {
    match determinism_mode() {
        DeterminismMode::Deterministic => {
            Err(FpnaError::NoDeterministicImplementation { op })
        }
        DeterminismMode::WarnOnly => {
            WARNINGS.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        DeterminismMode::NonDeterministic => Ok(()),
    }
}

/// RAII guard that sets a determinism mode and restores the previous one
/// on drop. Intended for tests and scoped experiments.
///
/// Note the mode is process-global: concurrent guards in multithreaded
/// tests will race just like they would with the PyTorch switch. Tests
/// that use guards should serialise on a lock (see `fpna-tensor`).
#[derive(Debug)]
pub struct DeterminismGuard {
    previous: DeterminismMode,
}

impl DeterminismGuard {
    /// Set `mode` globally, remembering the previous mode.
    pub fn new(mode: DeterminismMode) -> Self {
        let previous = determinism_mode();
        use_deterministic_algorithms(mode);
        DeterminismGuard { previous }
    }
}

impl Drop for DeterminismGuard {
    fn drop(&mut self) {
        use_deterministic_algorithms(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The mode is process-global; serialise tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn default_is_nondeterministic() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _g = DeterminismGuard::new(DeterminismMode::NonDeterministic);
        assert_eq!(determinism_mode(), DeterminismMode::NonDeterministic);
        assert!(!deterministic_requested());
        assert!(report_nondeterministic_only("x").is_ok());
    }

    #[test]
    fn deterministic_mode_errors_for_missing_kernels() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _g = DeterminismGuard::new(DeterminismMode::Deterministic);
        assert!(deterministic_requested());
        let err = report_nondeterministic_only("scatter_reduce").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("scatter_reduce"), "{msg}");
    }

    #[test]
    fn warn_only_counts() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _g = DeterminismGuard::new(DeterminismMode::WarnOnly);
        let before = warning_count();
        report_nondeterministic_only("op").unwrap();
        assert_eq!(warning_count(), before + 1);
    }

    #[test]
    fn guard_restores_mode() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _outer = DeterminismGuard::new(DeterminismMode::NonDeterministic);
        {
            let _g = DeterminismGuard::new(DeterminismMode::Deterministic);
            assert_eq!(determinism_mode(), DeterminismMode::Deterministic);
        }
        assert_eq!(determinism_mode(), DeterminismMode::NonDeterministic);
    }
}
