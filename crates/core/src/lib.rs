//! # fpna-core
//!
//! Core of the floating-point non-associativity (FPNA) reproducibility
//! suite: the variability metrics of Shanmugavelu et al. (SC 2024,
//! arXiv:2408.05148, §II), a run-to-run variability harness, a global
//! determinism context mirroring `torch.use_deterministic_algorithms`,
//! and low-level floating-point utilities (error-free transforms, ULP
//! distances) used by the deterministic summation algorithms.
//!
//! ## The problem
//!
//! Floating-point addition is not associative: `(a + b) + c` is in
//! general not bitwise equal to `a + (b + c)`. Any parallel kernel that
//! combines partial results in an order chosen at runtime (thread
//! arrival order, atomic commit order, work stealing) therefore produces
//! results that differ from run to run *on identical inputs*. This crate
//! provides the vocabulary to quantify that variability:
//!
//! * [`metrics::scalar_variability`] — `Vs(f) = 1 − |f_ND / f_D|` for
//!   scalar outputs;
//! * [`metrics::ermv`] — the elementwise relative mean absolute
//!   variation `Vermv` for array outputs (paper Eq. 1);
//! * [`metrics::count_variability`] — the count variability `Vc`, the
//!   fraction of elements that differ bitwise (paper Eq. 2).
//!
//! All three are zero if and only if the outputs are bitwise identical,
//! and grow as variability grows.
//!
//! ## Quick example
//!
//! ```
//! use fpna_core::metrics::{scalar_variability, count_variability};
//!
//! let deterministic = 1.0_f64;
//! let nondeterministic = 1.0_f64 + f64::EPSILON;
//! let vs = scalar_variability(nondeterministic, deterministic);
//! assert!(vs != 0.0 && vs.abs() < 1e-15);
//! assert_eq!(count_variability(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod determinism;
pub mod error;
pub mod executor;
pub mod fp;
pub mod harness;
pub mod metrics;
pub mod report;
pub mod rng;

pub use determinism::{DeterminismGuard, DeterminismMode};
pub use error::{FpnaError, Result};
pub use executor::RunExecutor;
pub use harness::{RunSummary, VariabilityHarness, VariabilityReport};
pub use metrics::{count_variability, ermv, scalar_variability, ArrayComparison};
