//! Plain-text table rendering for the experiment binaries.
//!
//! Every `table*` / `fig*` binary in `fpna-bench` prints rows in the
//! same layout the paper uses. This module provides a small
//! column-aligned table builder plus the number formats that appear in
//! the paper: fixed-width scientific notation with 15 significant
//! digits (Table 1), `mean(std)` timing cells (Table 4), and percentage
//! penalties.

use std::fmt::Write as _;

/// Column-aligned plain-text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            title: None,
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Attach a caption printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row. The number of cells must match the header.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "{title}");
        }
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Scientific notation with 15 significant digits, e.g.
/// `-1.776356839400250e-15` — the format of Table 1.
pub fn sci(x: f64) -> String {
    format!("{x:.15e}")
}

/// Scientific notation with `digits` significant digits.
pub fn sci_n(x: f64, digits: usize) -> String {
    format!("{x:.*e}", digits)
}

/// The paper's `mean(std)` cell format for timings, e.g. `6.456(0.008)`.
pub fn mean_std(mean: f64, std: f64, decimals: usize) -> String {
    format!("{mean:.decimals$}({std:.decimals$})")
}

/// Percentage with 4 significant decimals, for the `Ps` penalty column.
pub fn percent(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["size", "Vs"]).with_title("demo");
        t.push_row(["100", "1.0e-16"]);
        t.push_row(["1000000", "3.1e-15"]);
        let s = t.render();
        assert!(s.starts_with("demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
        // all data lines equal width alignment: the Vs column starts at
        // the same offset in both rows
        let off_a = lines[3].find("1.0e-16").unwrap();
        let off_b = lines[4].find("3.1e-15").unwrap();
        assert_eq!(off_a, off_b);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn formats() {
        assert_eq!(sci(-1.776_356_839_400_25e-15), "-1.776356839400250e-15");
        assert_eq!(mean_std(6.456, 0.008, 3), "6.456(0.008)");
        assert_eq!(percent(-0.198538), "-0.1985");
        assert_eq!(sci_n(1.5, 2), "1.50e0");
    }
}
