//! Error types shared across the fpna workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, FpnaError>;

/// Errors surfaced by the fpna crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpnaError {
    /// A deterministic kernel was requested (via
    /// [`crate::determinism::use_deterministic_algorithms`]) for an
    /// operation that only has a non-deterministic implementation.
    ///
    /// This mirrors the PyTorch runtime error the paper encountered for
    /// `scatter_reduce` (§IV): the documentation promised a
    /// deterministic path that did not exist.
    NoDeterministicImplementation {
        /// Name of the offending operation.
        op: &'static str,
    },
    /// Tensor/kernel shape mismatch.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// An index was out of bounds for the dimension it addresses.
    IndexOutOfBounds {
        /// The offending index value.
        index: usize,
        /// The bound it violated.
        bound: usize,
        /// Where it happened.
        context: &'static str,
    },
    /// A configuration value was invalid (zero-sized block, empty grid,
    /// reduction ratio outside (0, 1], ...).
    InvalidConfig {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for FpnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpnaError::NoDeterministicImplementation { op } => write!(
                f,
                "{op} does not have a deterministic implementation, but \
                 use_deterministic_algorithms(Deterministic) is set"
            ),
            FpnaError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            FpnaError::IndexOutOfBounds {
                index,
                bound,
                context,
            } => write!(f, "index {index} out of bounds {bound} in {context}"),
            FpnaError::InvalidConfig { context } => {
                write!(f, "invalid configuration: {context}")
            }
        }
    }
}

impl std::error::Error for FpnaError {}

impl FpnaError {
    /// Shorthand constructor for [`FpnaError::ShapeMismatch`].
    pub fn shape(context: impl Into<String>) -> Self {
        FpnaError::ShapeMismatch {
            context: context.into(),
        }
    }

    /// Shorthand constructor for [`FpnaError::InvalidConfig`].
    pub fn config(context: impl Into<String>) -> Self {
        FpnaError::InvalidConfig {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FpnaError::NoDeterministicImplementation { op: "cumsum" };
        assert!(e.to_string().contains("cumsum"));
        let e = FpnaError::shape("a vs b");
        assert!(e.to_string().contains("a vs b"));
        let e = FpnaError::IndexOutOfBounds {
            index: 7,
            bound: 5,
            context: "index_add",
        };
        assert!(e.to_string().contains('7'));
        let e = FpnaError::config("bad");
        assert!(e.to_string().contains("bad"));
    }
}
