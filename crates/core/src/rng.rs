//! Seeded randomness plumbing: reproducible experiment seeds, stream
//! splitting, and Fisher–Yates permutations.
//!
//! Every stochastic experiment in the suite must be *replayable*: the
//! whole point of a reproducibility study is that the only
//! non-determinism under investigation is the one injected by the
//! scheduler model, never by ambient RNG state. All entropy therefore
//! flows from explicit `u64` seeds through [`SplitMix64`] — a tiny,
//! well-understood generator that is also the standard seeding function
//! for larger PRNGs — or through `rand`'s `StdRng` seeded from it.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 (Steele, Lea, Flood 2014): a 64-bit generator with a
/// single u64 of state. Used for seed derivation and cheap permutation
/// draws inside the simulator's scheduler, where creating a full
/// `StdRng` per block would dominate the simulation cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Lemire's nearly-divisionless rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Derive an independent child seed. Deriving with distinct labels
    /// yields decorrelated streams from one experiment seed.
    #[inline]
    pub fn derive(&mut self, label: u64) -> u64 {
        let mut child = SplitMix64::new(self.next_u64() ^ label.rotate_left(17));
        child.next_u64()
    }
}

/// Derive a named sub-seed from an experiment seed. Stable across runs
/// and platforms.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut g = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
    let mixed = g
        .next_u64()
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    SplitMix64::new(mixed).next_u64()
}

/// Seed a `rand::StdRng` from an experiment seed and stream label.
pub fn std_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

/// In-place Fisher–Yates shuffle driven by [`SplitMix64`].
pub fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    let n = items.len();
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// A fresh random permutation of `0..n`.
pub fn permutation(n: usize, rng: &mut SplitMix64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "permutation index overflow");
    let mut idx: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut idx, rng);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = g.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be hit");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut g = SplitMix64::new(3);
        let p = permutation(100, &mut g);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn derive_seed_streams_differ() {
        let s0 = derive_seed(1234, 0);
        let s1 = derive_seed(1234, 1);
        let s2 = derive_seed(1234, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        // stable: same inputs, same outputs
        assert_eq!(derive_seed(1234, 1), s1);
    }

    #[test]
    fn std_rng_is_seedable() {
        use rand::RngCore;
        let mut a = std_rng(5, 0);
        let mut b = std_rng(5, 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
