//! Property tests for the parallel run executor: the harness's
//! reports must be **bitwise identical** to the serial (`threads = 1`)
//! execution at every thread count, for all three experiment entry
//! points — the invariant that lets every fig/table binary accept
//! `--threads N` without changing a single printed digit.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_core::executor::RunExecutor;
use fpna_core::harness::{VariabilityHarness, VariabilityReport};
use fpna_core::rng::SplitMix64;

/// A deterministic, run-index-keyed stand-in for a non-deterministic
/// kernel: perturbs a base vector by an amount drawn from the per-run
/// seed, exactly the shape real experiments have.
fn fake_kernel(base: &[f64], experiment_seed: u64, run: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(RunExecutor::run_seed(experiment_seed, run));
    base.iter()
        .map(|&x| {
            // roughly half the elements get a tiny seed-dependent nudge
            if rng.next_u64().is_multiple_of(2) {
                x + (rng.next_f64() - 0.5) * 1e-12
            } else {
                x
            }
        })
        .collect()
}

fn summaries_identical(a: &VariabilityReport, b: &VariabilityReport) -> bool {
    let eq = |x: f64, y: f64| x.to_bits() == y.to_bits();
    a.per_run.len() == b.per_run.len()
        && a.bitwise_identical_runs == b.bitwise_identical_runs
        && a.per_run
            .iter()
            .zip(&b.per_run)
            .all(|(p, q)| eq(p.0, q.0) && eq(p.1, q.1))
        && eq(a.vermv.mean, b.vermv.mean)
        && eq(a.vermv.std_dev, b.vermv.std_dev)
        && eq(a.vc.mean, b.vc.mean)
        && eq(a.vc.std_dev, b.vc.std_dev)
        && eq(a.max_abs_diff.min, b.max_abs_diff.min)
        && eq(a.max_abs_diff.max, b.max_abs_diff.max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `array`: parallel report == serial report, bit for bit.
    #[test]
    fn array_reports_thread_invariant(
        base in vec(-1e6..1e6f64, 1..64),
        runs in 1usize..25,
        seed in any::<u64>(),
    ) {
        let serial = VariabilityHarness::new(runs)
            .array(&base, |i| fake_kernel(&base, seed, i));
        for threads in [2usize, 4, 7] {
            let parallel = VariabilityHarness::new(runs)
                .with_executor(RunExecutor::new(threads))
                .array(&base, |i| fake_kernel(&base, seed, i));
            prop_assert!(
                summaries_identical(&serial, &parallel),
                "array diverged at threads={}", threads
            );
        }
    }

    /// `array_self_referenced`: the first run is the reference in both
    /// modes, and everything downstream matches bitwise.
    #[test]
    fn self_referenced_reports_thread_invariant(
        base in vec(-1e3..1e3f64, 1..64),
        runs in 1usize..25,
        seed in any::<u64>(),
    ) {
        let serial = VariabilityHarness::new(runs)
            .array_self_referenced(|i| fake_kernel(&base, seed, i));
        for threads in [2usize, 4, 7] {
            let parallel = VariabilityHarness::new(runs)
                .with_executor(RunExecutor::new(threads))
                .array_self_referenced(|i| fake_kernel(&base, seed, i));
            prop_assert!(
                summaries_identical(&serial, &parallel),
                "self-referenced diverged at threads={}", threads
            );
        }
    }

    /// `scalar`: per-run Vs sequences match bitwise, in order.
    #[test]
    fn scalar_vs_thread_invariant(
        reference in -1e6..1e6f64,
        runs in 1usize..40,
        seed in any::<u64>(),
    ) {
        let kernel = |i: usize| {
            let mut rng = SplitMix64::new(RunExecutor::run_seed(seed, i));
            reference + (rng.next_f64() - 0.5) * 1e-10
        };
        let serial = VariabilityHarness::new(runs).scalar(reference, kernel);
        for threads in [2usize, 4, 7] {
            let parallel = VariabilityHarness::new(runs)
                .with_executor(RunExecutor::new(threads))
                .scalar(reference, kernel);
            prop_assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "threads={}", threads);
            }
        }
    }

    /// `map_runs` returns results in run-index order regardless of
    /// which worker computed what.
    #[test]
    fn map_runs_order_invariant(runs in 0usize..200, threads in 1usize..9) {
        let out = RunExecutor::new(threads).map_runs(runs, |i| i * 3 + 1);
        prop_assert_eq!(out, (0..runs).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }
}

/// Per-run seeds are a pure function of `(base_seed, run_index)` —
/// they cannot shift when the worker count changes, which is the other
/// half of the order-invariance argument.
#[test]
fn run_seeds_stable_under_thread_count_changes() {
    let base_seed = 0xFEED_F00Du64;
    let expected: Vec<u64> = (0..64).map(|i| RunExecutor::run_seed(base_seed, i)).collect();
    for threads in [1usize, 2, 4, 7, 16] {
        let observed =
            RunExecutor::new(threads).map_runs(64, |i| RunExecutor::run_seed(base_seed, i));
        assert_eq!(observed, expected, "seed stream changed at threads={threads}");
    }
    // and the derivation matches the documented primitive
    for i in 0..64usize {
        assert_eq!(
            RunExecutor::run_seed(base_seed, i),
            fpna_core::rng::derive_seed(base_seed, i as u64)
        );
    }
}
