//! Property tests for the GNN substrate: gradient correctness on
//! random graphs (finite differences), aggregation linearity, and the
//! determinism contract of the full layer.

use proptest::prelude::*;

use fpna_gpu_sim::GpuModel;
use fpna_nn::graph::Graph;
use fpna_nn::sage::{Aggregation, SageConv};
use fpna_tensor::context::GpuContext;
use fpna_tensor::Tensor;

fn det_ctx() -> GpuContext {
    GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
}

fn random_graph(nodes: usize, links: usize, seed: u64) -> Graph {
    let mut rng = fpna_core::rng::SplitMix64::new(seed);
    let mut pairs = Vec::new();
    for _ in 0..links {
        let a = rng.next_below(nodes as u64) as u32;
        let b = rng.next_below(nodes as u64) as u32;
        if a != b {
            pairs.push((a, b));
        }
    }
    Graph::from_undirected(nodes, &pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Weight gradients match finite differences on random graphs —
    /// the property that certifies the manual backward pass.
    #[test]
    fn gradients_match_finite_differences(
        seed in any::<u64>(),
        nodes in 3usize..8,
        relu in any::<bool>(),
        mean in any::<bool>(),
    ) {
        let g = random_graph(nodes, nodes * 2, seed);
        let agg = if mean { Aggregation::Mean } else { Aggregation::Sum };
        let mut layer = SageConv::new(3, 2, agg, relu, seed ^ 1);
        let x = Tensor::randn(vec![nodes, 3], seed ^ 2).map(|v| v * 0.5);
        let ctx = det_ctx();
        let loss_of = |l: &SageConv, xt: &Tensor| -> f64 {
            let (out, _) = l.forward(&ctx, &g, xt).unwrap();
            0.5 * out.data().iter().map(|v| v * v).sum::<f64>()
        };
        let (out, cache) = layer.forward(&ctx, &g, &x).unwrap();
        let (grads, dx) = layer.backward(&ctx, &g, &cache, &out).unwrap();
        let eps = 1e-6;
        let base = loss_of(&layer, &x);

        // probe one weight of each parameter tensor and one input slot
        layer.w_self.data_mut()[0] += eps;
        let fd = (loss_of(&layer, &x) - base) / eps;
        layer.w_self.data_mut()[0] -= eps;
        prop_assert!((fd - grads.dw_self.data()[0]).abs() <= 1e-3 * fd.abs().max(1.0),
            "dw_self: fd {} vs {}", fd, grads.dw_self.data()[0]);

        layer.w_neigh.data_mut()[1] += eps;
        let fd = (loss_of(&layer, &x) - base) / eps;
        layer.w_neigh.data_mut()[1] -= eps;
        prop_assert!((fd - grads.dw_neigh.data()[1]).abs() <= 1e-3 * fd.abs().max(1.0),
            "dw_neigh: fd {} vs {}", fd, grads.dw_neigh.data()[1]);

        let mut x2 = x.clone();
        x2.data_mut()[0] += eps;
        let fd = (loss_of(&layer, &x2) - base) / eps;
        prop_assert!((fd - dx.data()[0]).abs() <= 1e-3 * fd.abs().max(1.0),
            "dx: fd {} vs {}", fd, dx.data()[0]);
    }

    /// Aggregation is linear: agg(x + y) == agg(x) + agg(y) to
    /// rounding, for both mean and sum.
    #[test]
    fn aggregation_linearity(seed in any::<u64>(), nodes in 3usize..10) {
        let g = random_graph(nodes, nodes * 3, seed);
        let layer = SageConv::new(2, 2, Aggregation::Mean, false, seed);
        let ctx = det_ctx();
        let x = Tensor::randn(vec![nodes, 2], seed ^ 3);
        let y = Tensor::randn(vec![nodes, 2], seed ^ 4);
        let sum_xy = x.zip(&y, |a, b| a + b);
        // forward through the layer with zero weights isolates nothing;
        // test the aggregation via a layer whose w_self = 0, w_neigh = I
        let mut iso = SageConv::new(2, 2, Aggregation::Mean, false, seed);
        for v in iso.w_self.data_mut() { *v = 0.0; }
        for (i, v) in iso.w_neigh.data_mut().iter_mut().enumerate() {
            *v = if i % 3 == 0 { 1.0 } else { 0.0 }; // 2x2 identity
        }
        iso.bias.iter_mut().for_each(|b| *b = 0.0);
        let (ax, _) = iso.forward(&ctx, &g, &x).unwrap();
        let (ay, _) = iso.forward(&ctx, &g, &y).unwrap();
        let (axy, _) = iso.forward(&ctx, &g, &sum_xy).unwrap();
        for ((a, b), c) in ax.data().iter().zip(ay.data()).zip(axy.data()) {
            prop_assert!((a + b - c).abs() <= 1e-9 * c.abs().max(1.0));
        }
        let _ = layer;
    }

    /// Deterministic forward is schedule-invariant for any graph.
    #[test]
    fn det_forward_schedule_invariant(seed in any::<u64>(), nodes in 3usize..12) {
        let g = random_graph(nodes, nodes * 4, seed);
        let layer = SageConv::new(4, 3, Aggregation::Mean, true, seed);
        let x = Tensor::randn(vec![nodes, 4], seed ^ 9).map(|v| v * 1e3);
        let (a, _) = layer.forward(&det_ctx().for_run(seed), &g, &x).unwrap();
        let (b, _) = layer.forward(&det_ctx().for_run(seed ^ 1), &g, &x).unwrap();
        prop_assert!(a.bitwise_eq(&b));
    }

    /// Row-blocked matmuls are bitwise identical to the serial loops
    /// for every intra-run thread-count hint — sizes straddle the
    /// parallel work floor so both code paths are exercised.
    #[test]
    fn matmuls_are_intra_thread_invariant(
        seed in any::<u64>(),
        m in 1usize..96,
        k in 1usize..96,
        n in 1usize..96,
    ) {
        use fpna_core::executor::{intra_hint_test_guard, set_intra_threads};
        use fpna_nn::linalg::{matmul, matmul_nt, matmul_tn};
        let _hint = intra_hint_test_guard();

        let a = Tensor::randn(vec![m, k], seed).map(|v| v * 1e3);
        let b = Tensor::randn(vec![k, n], seed ^ 1).map(|v| v * 1e3);
        let a_t = Tensor::randn(vec![k, m], seed ^ 2).map(|v| v * 1e3);
        let b_t = Tensor::randn(vec![n, k], seed ^ 3).map(|v| v * 1e3);

        set_intra_threads(1);
        let mm_ref = matmul(&a, &b);
        let tn_ref = matmul_tn(&a_t, &b);
        let nt_ref = matmul_nt(&a, &b_t);
        for threads in [2usize, 4, 7] {
            set_intra_threads(threads);
            prop_assert!(matmul(&a, &b).bitwise_eq(&mm_ref), "matmul threads={}", threads);
            prop_assert!(matmul_tn(&a_t, &b).bitwise_eq(&tn_ref), "matmul_tn threads={}", threads);
            prop_assert!(matmul_nt(&a, &b_t).bitwise_eq(&nt_ref), "matmul_nt threads={}", threads);
        }
    }

    /// A whole SAGE forward pass (gather + index_add + mean scaling +
    /// matmuls) is bitwise invariant to the intra-run thread budget.
    #[test]
    fn sage_forward_is_intra_thread_invariant(seed in any::<u64>(), nodes in 3usize..24) {
        use fpna_core::executor::{intra_hint_test_guard, set_intra_threads};
        let _hint = intra_hint_test_guard();
        let g = random_graph(nodes, nodes * 6, seed);
        let layer = SageConv::new(6, 4, Aggregation::Mean, true, seed);
        let x = Tensor::randn(vec![nodes, 6], seed ^ 7).map(|v| v * 1e3);
        set_intra_threads(1);
        let (reference, _) = layer.forward(&det_ctx(), &g, &x).unwrap();
        for threads in [2usize, 4, 7] {
            set_intra_threads(threads);
            let (out, _) = layer.forward(&det_ctx(), &g, &x).unwrap();
            prop_assert!(out.bitwise_eq(&reference), "threads={}", threads);
        }
    }
}
