//! Small deterministic dense kernels: matmul, transpose-matmuls,
//! row-softmax. Fixed loop order (i-k-j) means fixed addition order —
//! these never contribute to run-to-run variability, keeping
//! `index_add` the model's only non-deterministic operation.
//!
//! Large matmuls are **row-blocked** across the intra-run thread
//! budget ([`fpna_core::executor::par_fill`]): every output row's
//! additions still happen in ascending-`k` order, so the parallel
//! result is bitwise identical to the serial one at any `--threads`
//! value; below `PAR_FLOP_FLOOR` the serial loop runs directly (the
//! GNN's layer matmuls are small enough that thread fan-out would cost
//! more than it saves).

use fpna_core::executor::par_fill;
use fpna_tensor::Tensor;

/// Minimum `m·k·n` multiply-add count before a matmul fans its output
/// rows across threads.
const PAR_FLOP_FLOOR: usize = 1 << 17;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul inner dimension mismatch");
    let mut out = Tensor::zeros(vec![m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    let row_block = |rows: std::ops::Range<usize>, orows: &mut [f64]| {
        for (local, i) in rows.enumerate() {
            let orow = &mut orows[local * n..(local + 1) * n];
            for kk in 0..k {
                let aik = ad[i * k + kk];
                if aik == 0.0 {
                    continue; // sparse features make this a big win
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for j in 0..n {
                    orow[j] += aik * brow[j];
                }
            }
        }
    };
    if m * k * n >= PAR_FLOP_FLOOR {
        par_fill(od, n, row_block);
    } else {
        row_block(0..m, od);
    }
    out
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (gradient of weights).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_tn inner dimension mismatch");
    let mut out = Tensor::zeros(vec![m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    if m * k * n >= PAR_FLOP_FLOOR {
        // Row-blocked: each output row `i` accumulates over `kk` in
        // ascending order — exactly the per-element addition order of
        // the serial kk-outer loop below, so the bits match it.
        par_fill(od, n, |rows, orows| {
            for (local, i) in rows.enumerate() {
                let orow = &mut orows[local * n..(local + 1) * n];
                for kk in 0..k {
                    let aki = ad[kk * m + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for j in 0..n {
                        orow[j] += aki * brow[j];
                    }
                }
            }
        });
    } else {
        // Serial: kk-outer keeps `A` reads sequential.
        for kk in 0..k {
            let arow = &ad[kk * m..(kk + 1) * m];
            let brow = &bd[kk * n..(kk + 1) * n];
            for i in 0..m {
                let aki = arow[i];
                if aki == 0.0 {
                    continue;
                }
                let orow = &mut od[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += aki * brow[j];
                }
            }
        }
    }
    out
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (gradient of inputs).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_nt inner dimension mismatch");
    let mut out = Tensor::zeros(vec![m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    let row_block = |rows: std::ops::Range<usize>, orows: &mut [f64]| {
        for (local, i) in rows.enumerate() {
            let arow = &ad[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                orows[local * n + j] = acc;
            }
        }
    };
    if m * k * n >= PAR_FLOP_FLOOR {
        par_fill(od, n, row_block);
    } else {
        row_block(0..m, od);
    }
    out
}

/// Row-wise softmax.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let cols = x.shape()[1];
    let mut out = x.clone();
    for row in out.data_mut().chunks_mut(cols) {
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
    out
}

/// Add a bias row to every row, in place.
pub fn add_bias_rows(x: &mut Tensor, bias: &[f64]) {
    let cols = x.shape()[1];
    assert_eq!(bias.len(), cols, "bias width mismatch");
    for row in x.data_mut().chunks_mut(cols) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree() {
        let a = Tensor::randn(vec![4, 5], 1);
        let b = Tensor::randn(vec![4, 3], 2);
        // A^T B  via matmul_tn == manual transpose + matmul
        let at = {
            let mut t = Tensor::zeros(vec![5, 4]);
            for i in 0..4 {
                for j in 0..5 {
                    t.data_mut()[j * 4 + i] = a.data()[i * 5 + j];
                }
            }
            t
        };
        let want = matmul(&at, &b);
        let got = matmul_tn(&a, &b);
        for (x, y) in want.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-12);
        }
        // A B^T via matmul_nt
        let c = Tensor::randn(vec![6, 5], 3);
        let ct = {
            let mut t = Tensor::zeros(vec![5, 6]);
            for i in 0..6 {
                for j in 0..5 {
                    t.data_mut()[j * 6 + i] = c.data()[i * 5 + j];
                }
            }
            t
        };
        let want = matmul(&a, &ct);
        let got = matmul_nt(&a, &c);
        for (x, y) in want.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_is_bitwise_deterministic() {
        let a = Tensor::randn(vec![20, 30], 4);
        let b = Tensor::randn(vec![30, 10], 5);
        assert!(matmul(&a, &b).bitwise_eq(&matmul(&a, &b)));
    }

    #[test]
    fn softmax_normalises_and_is_stable() {
        let x = Tensor::from_vec(vec![1, 3], vec![1000.0, 1001.0, 1002.0]);
        let s = softmax_rows(&x);
        let sum: f64 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s.data().iter().all(|&p| p.is_finite() && p > 0.0));
    }

    #[test]
    fn bias_rows() {
        let mut x = Tensor::zeros(vec![2, 2]);
        add_bias_rows(&mut x, &[1.0, -1.0]);
        assert_eq!(x.data(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_mismatch_panics() {
        matmul(&Tensor::zeros(vec![2, 3]), &Tensor::zeros(vec![4, 2]));
    }
}
