//! Graph representation and the synthetic Cora generator.
//!
//! The paper trains on Cora: 2708 scientific publications in 7
//! classes, 5429 citation links, 1433-dimensional bag-of-words
//! features. The real dataset is a download; the experiment, however,
//! only needs *a fixed graph of the same shape* — it measures
//! divergence between repeated runs on identical inputs, so any seeded
//! graph exercising the same `index_add` code path preserves the
//! behaviour (substitution documented in DESIGN.md). The generator
//! produces a class-assortative stochastic-block-model-like citation
//! graph with sparse class-correlated features.

use fpna_core::rng::SplitMix64;
use fpna_tensor::Tensor;

/// An undirected graph stored as a directed edge list (both
/// directions), plus per-node degrees.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Directed edges: `edge_src[e] → edge_dst[e]`. Each undirected
    /// link appears in both directions, matching PyG's representation.
    pub edge_src: Vec<u32>,
    /// Destination node of each directed edge.
    pub edge_dst: Vec<u32>,
    /// In-degree of every node (the mean-aggregation divisor).
    pub degree: Vec<u32>,
}

impl Graph {
    /// Build from undirected links, expanding both directions.
    ///
    /// # Panics
    ///
    /// Panics if a link references a node `>= num_nodes`.
    pub fn from_undirected(num_nodes: usize, links: &[(u32, u32)]) -> Self {
        let mut edge_src = Vec::with_capacity(links.len() * 2);
        let mut edge_dst = Vec::with_capacity(links.len() * 2);
        let mut degree = vec![0u32; num_nodes];
        for &(a, b) in links {
            assert!(
                (a as usize) < num_nodes && (b as usize) < num_nodes,
                "link ({a}, {b}) out of range"
            );
            edge_src.push(a);
            edge_dst.push(b);
            degree[b as usize] += 1;
            edge_src.push(b);
            edge_dst.push(a);
            degree[a as usize] += 1;
        }
        Graph {
            num_nodes,
            edge_src,
            edge_dst,
            degree,
        }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }
}

/// A node-classification dataset: graph, features, labels, train mask.
#[derive(Debug, Clone)]
pub struct NodeClassification {
    /// The graph.
    pub graph: Graph,
    /// Node features, `[num_nodes, num_features]`.
    pub features: Tensor,
    /// Class label per node.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Nodes that contribute to the training loss.
    pub train_mask: Vec<bool>,
}

/// Parameters of the synthetic citation-graph generator.
#[derive(Debug, Clone, Copy)]
pub struct CoraParams {
    /// Node count.
    pub nodes: usize,
    /// Feature dimension.
    pub features: usize,
    /// Class count.
    pub classes: usize,
    /// Undirected link count.
    pub links: usize,
    /// Probability that a link connects same-class nodes
    /// (assortativity).
    pub intra_class_prob: f64,
    /// Non-zero features per node (bag-of-words sparsity).
    pub active_features: usize,
    /// Fraction of nodes in the training mask.
    pub train_fraction: f64,
}

impl CoraParams {
    /// The real Cora's dimensions (2708 / 1433 / 7 / 5429).
    pub fn cora() -> Self {
        CoraParams {
            nodes: 2708,
            features: 1433,
            classes: 7,
            links: 5429,
            intra_class_prob: 0.8,
            active_features: 18,
            train_fraction: 0.05,
        }
    }

    /// A scaled-down variant for fast tests.
    pub fn tiny() -> Self {
        CoraParams {
            nodes: 120,
            features: 32,
            classes: 4,
            links: 240,
            intra_class_prob: 0.8,
            active_features: 6,
            train_fraction: 0.3,
        }
    }
}

/// Generate a synthetic citation dataset. Fully determined by the
/// seed: the same `(params, seed)` always yields the same bits, so the
/// *inputs* of every experiment are identical across runs — the
/// precondition for attributing divergence to FPNA.
pub fn synthetic_cora(params: CoraParams, seed: u64) -> NodeClassification {
    assert!(params.classes >= 2, "need at least two classes");
    assert!(params.nodes >= params.classes, "need nodes >= classes");
    let mut rng = SplitMix64::new(seed);

    // Class labels: round-robin then shuffled, so classes are balanced.
    let mut labels: Vec<u32> = (0..params.nodes)
        .map(|i| (i % params.classes) as u32)
        .collect();
    fpna_core::rng::shuffle(&mut labels, &mut rng);

    // Class-assortative links. Rejection-free: pick an endpoint, then
    // pick the partner from the same class w.p. intra_class_prob.
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); params.classes];
    for (i, &c) in labels.iter().enumerate() {
        by_class[c as usize].push(i as u32);
    }
    let mut links = Vec::with_capacity(params.links);
    let mut seen = std::collections::HashSet::with_capacity(params.links * 2);
    while links.len() < params.links {
        let a = rng.next_below(params.nodes as u64) as u32;
        let b = if rng.next_f64() < params.intra_class_prob {
            let peers = &by_class[labels[a as usize] as usize];
            peers[rng.next_below(peers.len() as u64) as usize]
        } else {
            rng.next_below(params.nodes as u64) as u32
        };
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            links.push(key);
        }
    }
    let graph = Graph::from_undirected(params.nodes, &links);

    // Sparse class-correlated bag-of-words features: each class owns a
    // band of the vocabulary; a node activates mostly in its band.
    let mut data = vec![0.0f64; params.nodes * params.features];
    let band = (params.features / params.classes).max(1);
    for i in 0..params.nodes {
        let c = labels[i] as usize;
        for _ in 0..params.active_features {
            let in_band = rng.next_f64() < 0.7;
            let f = if in_band {
                c * band + rng.next_below(band as u64) as usize
            } else {
                rng.next_below(params.features as u64) as usize
            };
            data[i * params.features + f.min(params.features - 1)] = 1.0;
        }
    }
    let features = Tensor::from_vec(vec![params.nodes, params.features], data);

    // Training mask: first train_fraction of a shuffled node order.
    let mut order: Vec<u32> = (0..params.nodes as u32).collect();
    fpna_core::rng::shuffle(&mut order, &mut rng);
    let n_train = ((params.nodes as f64 * params.train_fraction) as usize).max(params.classes);
    let mut train_mask = vec![false; params.nodes];
    for &i in order.iter().take(n_train) {
        train_mask[i as usize] = true;
    }

    NodeClassification {
        graph,
        features,
        labels,
        num_classes: params.classes,
        train_mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_undirected_expands_both_directions() {
        let g = Graph::from_undirected(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree, vec![1, 2, 1]);
    }

    #[test]
    fn cora_dimensions() {
        let ds = synthetic_cora(CoraParams::cora(), 1);
        assert_eq!(ds.graph.num_nodes, 2708);
        assert_eq!(ds.features.shape(), &[2708, 1433]);
        assert_eq!(ds.labels.len(), 2708);
        assert_eq!(ds.num_classes, 7);
        assert_eq!(ds.graph.num_edges(), 2 * 5429);
        assert!(ds.train_mask.iter().filter(|&&m| m).count() >= 7);
    }

    #[test]
    fn generation_is_seeded() {
        let a = synthetic_cora(CoraParams::tiny(), 7);
        let b = synthetic_cora(CoraParams::tiny(), 7);
        assert!(a.features.bitwise_eq(&b.features));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.edge_src, b.graph.edge_src);
        let c = synthetic_cora(CoraParams::tiny(), 8);
        assert_ne!(a.graph.edge_src, c.graph.edge_src);
    }

    #[test]
    fn assortativity_holds() {
        let ds = synthetic_cora(CoraParams::cora(), 3);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (&s, &d) in ds.graph.edge_src.iter().zip(&ds.graph.edge_dst) {
            total += 1;
            if ds.labels[s as usize] == ds.labels[d as usize] {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.6, "intra-class fraction {frac}");
    }

    #[test]
    fn features_are_sparse_binary() {
        let ds = synthetic_cora(CoraParams::tiny(), 4);
        let nnz = ds.features.data().iter().filter(|&&x| x != 0.0).count();
        let density = nnz as f64 / ds.features.numel() as f64;
        assert!(density < 0.3, "density {density}");
        assert!(ds.features.data().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_panics() {
        Graph::from_undirected(2, &[(0, 5)]);
    }
}
