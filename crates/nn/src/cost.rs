//! Inference runtime models — the Table 8 comparison.
//!
//! * GPU path: framework overhead + the per-layer `index_add` kernel
//!   cost from `fpna-tensor`'s cost model. The deterministic kernel's
//!   sort-based aggregation makes deterministic inference slower
//!   (paper: 3.92 ms vs 2.17 ms on the H100).
//! * LPU path: an actual compiled `fpna-lpu-sim` program for the full
//!   two-layer GraphSAGE forward pass — the runtime is the compiled
//!   cycle count, a constant.

use fpna_core::Result;
use fpna_gpu_sim::profile::DeviceProfile;
use fpna_lpu_sim::program::{Program, TensorShape};
use fpna_lpu_sim::machine::{Lpu, Tensor2};
use fpna_lpu_sim::spec::LpuSpec;
use fpna_tensor::cost::{op_time_us, TimedOp};

use crate::graph::NodeClassification;
use crate::model::GraphSage;

/// Fixed framework overhead of a full GraphSAGE forward pass on the
/// GPU (dispatcher, Python glue, launch queue), in ms. Calibrated to
/// Table 8's H100 column.
const FRAMEWORK_OVERHEAD_MS: f64 = 2.0;

/// Estimated end-to-end GraphSAGE inference time on a GPU profile.
pub fn gpu_inference_time_ms(
    profile: &DeviceProfile,
    ds: &NodeClassification,
    hidden: usize,
    deterministic: bool,
) -> f64 {
    let edges = ds.graph.num_edges();
    let feat = ds.features.shape()[1];
    let l1 = op_time_us(profile, TimedOp::IndexAdd, edges * feat, deterministic)
        .expect("index_add has kernels in both modes");
    let l2 = op_time_us(profile, TimedOp::IndexAdd, edges * hidden, deterministic)
        .expect("index_add has kernels in both modes");
    // dense matmuls: bandwidth-dominated at these shapes
    let matmul_bytes =
        8.0 * (ds.graph.num_nodes * (feat + hidden)) as f64;
    let matmul_us = matmul_bytes / profile.effective_bandwidth_gbps / 1e3;
    FRAMEWORK_OVERHEAD_MS + (l1 + l2 + matmul_us) / 1e3
}

/// Compile the two-layer GraphSAGE forward pass as a static LPU
/// program, run it, and return `(probabilities, fixed time in µs)`.
///
/// The gather/scatter index sets are compile-time constants — exactly
/// how a statically scheduled accelerator ingests a fixed graph — so
/// the runtime is known before execution and carries no error bar.
pub fn lpu_inference(ds: &NodeClassification, model: &GraphSage) -> Result<(Vec<f64>, f64)> {
    let n = ds.graph.num_nodes;
    let feat = ds.features.shape()[1];
    let hidden = model.layer1.w_self.shape()[1];
    let classes = model.layer2.w_self.shape()[1];

    let mut p = Program::new();
    let x = p.input(TensorShape::new(n, feat));
    let w_self1 = p.input(TensorShape::new(feat, hidden));
    let w_neigh1 = p.input(TensorShape::new(feat, hidden));
    let b1 = p.input(TensorShape::new(1, hidden));
    let w_self2 = p.input(TensorShape::new(hidden, classes));
    let w_neigh2 = p.input(TensorShape::new(hidden, classes));
    let b2 = p.input(TensorShape::new(1, classes));

    let layer = |p: &mut Program, h, w_self, w_neigh, bias, relu: bool| {
        let gathered = p.gather_rows(h, ds.graph.edge_src.clone());
        let summed = p.scatter_add_rows(gathered, ds.graph.edge_dst.clone(), n);
        let agg = p.div_row_counts(summed, ds.graph.degree.clone());
        let own = p.matmul(h, w_self);
        let nb = p.matmul(agg, w_neigh);
        let sum = p.add(own, nb);
        let biased = p.add_row_broadcast(sum, bias);
        if relu {
            p.relu(biased)
        } else {
            biased
        }
    };
    let h1 = layer(&mut p, x, w_self1, w_neigh1, b1, true);
    let logits = layer(&mut p, h1, w_self2, w_neigh2, b2, false);
    let probs = p.softmax_rows(logits);
    p.output(probs);

    let lpu = Lpu::new(LpuSpec::groq_like());
    let compiled = lpu.compile(p)?;
    let time_us = compiled.time_us();

    let as_t2 = |t: &fpna_tensor::Tensor| {
        Tensor2::new(t.shape()[0], t.shape()[1], t.data().to_vec())
    };
    let bias_t2 = |b: &[f64]| Tensor2::new(1, b.len(), b.to_vec());
    let outputs = compiled.run(&[
        as_t2(&ds.features),
        as_t2(&model.layer1.w_self),
        as_t2(&model.layer1.w_neigh),
        bias_t2(&model.layer1.bias),
        as_t2(&model.layer2.w_self),
        as_t2(&model.layer2.w_neigh),
        bias_t2(&model.layer2.bias),
    ])?;
    Ok((outputs[0].data.clone(), time_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{synthetic_cora, CoraParams};
    use crate::model::{train_model, TrainConfig};
    use crate::sage::Aggregation;
    use fpna_gpu_sim::profile::GpuModel;
    use fpna_tensor::context::GpuContext;

    fn tiny() -> NodeClassification {
        synthetic_cora(CoraParams::tiny(), 5)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            hidden: 8,
            lr: 0.5,
            epochs: 3,
            init_seed: 1,
            aggregation: Aggregation::Mean,
        }
    }

    #[test]
    fn table8_shape_on_h100() {
        let ds = synthetic_cora(CoraParams::cora(), 2);
        let h100 = DeviceProfile::new(GpuModel::H100);
        let det = gpu_inference_time_ms(&h100, &ds, 16, true);
        let nd = gpu_inference_time_ms(&h100, &ds, 16, false);
        assert!(det > nd, "deterministic inference slower: {det} vs {nd}");
        // paper: 3.92 and 2.17 ms — we match the scale
        assert!((nd - 2.17).abs() < 0.6, "nd {nd}");
        assert!((det - 3.92).abs() < 1.2, "det {det}");
    }

    #[test]
    fn lpu_inference_matches_deterministic_gpu_inference() {
        let ds = tiny();
        let ctx = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
        let (model, _) = train_model(&ds, &cfg(), &ctx).unwrap();
        let gpu_probs = model.predict(&ctx, &ds).unwrap();
        let (lpu_probs, time_us) = lpu_inference(&ds, &model).unwrap();
        assert!(time_us > 0.0);
        assert_eq!(lpu_probs.len(), gpu_probs.numel());
        for (a, b) in gpu_probs.data().iter().zip(&lpu_probs) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn lpu_inference_is_bitwise_deterministic_with_fixed_time() {
        let ds = tiny();
        let ctx = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
        let (model, _) = train_model(&ds, &cfg(), &ctx).unwrap();
        let (a, t1) = lpu_inference(&ds, &model).unwrap();
        let (b, t2) = lpu_inference(&ds, &model).unwrap();
        assert_eq!(t1, t2, "LPU runtime is a constant");
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lpu_is_far_faster_than_gpu_framework_path() {
        // Mid-size graph: big enough for a meaningful cost comparison,
        // small enough for a debug-mode test. The full-Cora numbers are
        // produced by the `table8` bench binary in release mode.
        let mut p = CoraParams::tiny();
        p.nodes = 500;
        p.features = 128;
        p.links = 1_500;
        let ds = synthetic_cora(p, 3);
        let h100 = DeviceProfile::new(GpuModel::H100);
        let nd_ms = gpu_inference_time_ms(&h100, &ds, 8, false);
        let model =
            crate::model::GraphSage::new(ds.features.shape()[1], 8, ds.num_classes, &cfg());
        let (_, lpu_us) = lpu_inference(&ds, &model).unwrap();
        assert!(
            lpu_us / 1e3 < nd_ms / 2.0,
            "LPU ({lpu_us} us) should be several times faster than GPU ND ({nd_ms} ms)"
        );
    }
}
