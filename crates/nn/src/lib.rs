//! # fpna-nn
//!
//! The §V substrate of the paper: a GraphSAGE graph neural network
//! trained and evaluated on a synthetic Cora, with deterministic and
//! non-deterministic training/inference pipelines.
//!
//! The network is built directly on `fpna-tensor`'s kernels, and — as
//! in the paper's implementation — **the only non-deterministic
//! operation in the model is `index_add`**, used by the mean
//! aggregation of each SAGE layer in both the forward and the backward
//! pass. Flipping the kernel choice therefore isolates exactly the
//! effect the paper studies: identical inputs, identical initial
//! weights, identical hyperparameters, different atomic commit orders.
//!
//! * [`graph`] — graph representation + the synthetic Cora generator
//!   (2708 nodes, 1433 features, 7 classes, 5429 undirected edges);
//! * [`linalg`] — small deterministic dense kernels (matmul, softmax);
//! * [`sage`] — the SAGEConv layer with manual forward/backward;
//! * [`model`] — the two-layer GraphSAGE classifier, cross-entropy and
//!   SGD;
//! * [`train`] — the paper's experiment protocols: weight-divergence
//!   tracking (§V-B), the D/ND training × inference matrix (Table 7);
//! * [`cost`] — inference runtime models for the H100 and the LPU
//!   (Table 8), the latter via an actual compiled `fpna-lpu-sim`
//!   program.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod graph;
pub mod linalg;
pub mod model;
pub mod sage;
pub mod train;

pub use graph::{Graph, NodeClassification};
pub use model::{GraphSage, TrainConfig};
pub use sage::SageConv;
