//! The two-layer GraphSAGE node classifier of §V, with cross-entropy
//! loss and SGD — the paper's experimental model (two `SAGEConv`
//! layers, trained 10 epochs on Cora).

use fpna_core::Result;
use fpna_tensor::context::GpuContext;
use fpna_tensor::Tensor;

use crate::graph::NodeClassification;
use crate::linalg::softmax_rows;
use crate::sage::{Aggregation, SageConv};

/// Hyperparameters of the training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hidden width of the first SAGE layer.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f64,
    /// Number of full-batch epochs (the paper uses 10).
    pub epochs: usize,
    /// Weight-initialisation seed — *identical across runs*, so the
    /// only run-to-run difference is the kernel commit order.
    pub init_seed: u64,
    /// Aggregation used by both layers.
    pub aggregation: Aggregation,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden: 16,
            lr: 0.5,
            epochs: 10,
            init_seed: 0xC0FFEE,
            aggregation: Aggregation::Mean,
        }
    }
}

/// The two-layer GraphSAGE model.
#[derive(Debug, Clone)]
pub struct GraphSage {
    /// First layer (ReLU).
    pub layer1: SageConv,
    /// Second layer (logits).
    pub layer2: SageConv,
}

impl GraphSage {
    /// Initialise for a dataset's dimensions.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, cfg: &TrainConfig) -> Self {
        GraphSage {
            layer1: SageConv::new(in_dim, hidden, cfg.aggregation, true, cfg.init_seed),
            layer2: SageConv::new(hidden, classes, cfg.aggregation, false, cfg.init_seed ^ 0xBEEF),
        }
    }

    /// Forward pass to logits.
    pub fn forward(&self, ctx: &GpuContext, ds: &NodeClassification) -> Result<Tensor> {
        let (h1, _) = self.layer1.forward(ctx, &ds.graph, &ds.features)?;
        let (logits, _) = self.layer2.forward(ctx, &ds.graph, &h1)?;
        Ok(logits)
    }

    /// Class predictions (softmax probabilities) — the "inference
    /// output" compared in Table 7.
    pub fn predict(&self, ctx: &GpuContext, ds: &NodeClassification) -> Result<Tensor> {
        Ok(softmax_rows(&self.forward(ctx, ds)?))
    }

    /// One full-batch training epoch; returns the masked cross-entropy
    /// loss *before* the update.
    pub fn train_epoch(&mut self, ctx: &GpuContext, ds: &NodeClassification, lr: f64) -> Result<f64> {
        let (h1, cache1) = self.layer1.forward(ctx, &ds.graph, &ds.features)?;
        let (logits, cache2) = self.layer2.forward(ctx, &ds.graph, &h1)?;
        let probs = softmax_rows(&logits);
        let n_train = ds.train_mask.iter().filter(|&&m| m).count().max(1);
        let classes = ds.num_classes;

        // Masked cross-entropy and its gradient wrt logits:
        // (softmax − one-hot) / n_train on masked rows, 0 elsewhere.
        let mut loss = 0.0f64;
        let mut dlogits = Tensor::zeros(vec![ds.graph.num_nodes, classes]);
        for v in 0..ds.graph.num_nodes {
            if !ds.train_mask[v] {
                continue;
            }
            let label = ds.labels[v] as usize;
            let p = probs.row(v);
            loss -= p[label].max(1e-300).ln();
            let drow = &mut dlogits.data_mut()[v * classes..(v + 1) * classes];
            for c in 0..classes {
                drow[c] = (p[c] - if c == label { 1.0 } else { 0.0 }) / n_train as f64;
            }
        }
        loss /= n_train as f64;

        let (grads2, dh1) = self.layer2.backward(ctx, &ds.graph, &cache2, &dlogits)?;
        let (grads1, _) = self.layer1.backward(ctx, &ds.graph, &cache1, &dh1)?;
        self.layer2.apply_grads(&grads2, lr);
        self.layer1.apply_grads(&grads1, lr);
        Ok(loss)
    }

    /// Fraction of correctly classified nodes (all nodes).
    pub fn accuracy(&self, ctx: &GpuContext, ds: &NodeClassification) -> Result<f64> {
        let logits = self.forward(ctx, ds)?;
        let classes = ds.num_classes;
        let mut correct = 0usize;
        for v in 0..ds.graph.num_nodes {
            let row = logits.row(v);
            let pred = (0..classes)
                .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                .unwrap();
            if pred == ds.labels[v] as usize {
                correct += 1;
            }
        }
        Ok(correct as f64 / ds.graph.num_nodes as f64)
    }

    /// All parameters flattened — the weight vector whose run-to-run
    /// divergence §V-B tracks.
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = self.layer1.flat_params();
        out.extend(self.layer2.flat_params());
        out
    }
}

/// Train a fresh model for `cfg.epochs` epochs under the given context
/// (deterministic or not). Per-epoch losses are returned alongside.
pub fn train_model(
    ds: &NodeClassification,
    cfg: &TrainConfig,
    ctx: &GpuContext,
) -> Result<(GraphSage, Vec<f64>)> {
    let mut model = GraphSage::new(ds.features.shape()[1], cfg.hidden, ds.num_classes, cfg);
    let mut losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // each epoch is a fresh "launch": re-key the schedule
        let epoch_ctx = ctx.for_run(epoch as u64);
        losses.push(model.train_epoch(&epoch_ctx, ds, cfg.lr)?);
    }
    Ok((model, losses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{synthetic_cora, CoraParams};
    use fpna_gpu_sim::GpuModel;

    fn ctx_det() -> GpuContext {
        GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
    }

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    fn tiny() -> NodeClassification {
        synthetic_cora(CoraParams::tiny(), 42)
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            hidden: 8,
            lr: 0.5,
            epochs: 10,
            init_seed: 7,
            aggregation: Aggregation::Mean,
        }
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let ds = tiny();
        let (model, losses) = train_model(&ds, &tiny_cfg(), &ctx_det()).unwrap();
        assert_eq!(losses.len(), 10);
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss {:?} should decrease",
            losses
        );
        let acc = model.accuracy(&ctx_det(), &ds).unwrap();
        assert!(acc > 1.5 / 4.0, "accuracy {acc} should beat chance");
    }

    #[test]
    fn deterministic_training_is_bitwise_reproducible() {
        let ds = tiny();
        let cfg = tiny_cfg();
        let (a, _) = train_model(&ds, &cfg, &ctx_det()).unwrap();
        let (b, _) = train_model(&ds, &cfg, &ctx_det()).unwrap();
        assert_eq!(
            a.flat_params()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            b.flat_params()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn nd_training_produces_unique_models() {
        // The §V-B headline: identical inputs, identical init, unique
        // weights per run.
        let ds = tiny();
        let cfg = tiny_cfg();
        let mut fingerprints = std::collections::HashSet::new();
        for run in 0..4 {
            let ctx = ctx_nd(100 + run);
            let (model, _) = train_model(&ds, &cfg, &ctx).unwrap();
            let fp: Vec<u64> = model.flat_params().iter().map(|x| x.to_bits()).collect();
            fingerprints.insert(fp);
        }
        assert!(
            fingerprints.len() >= 2,
            "ND training should diverge across runs (got {} unique)",
            fingerprints.len()
        );
    }

    #[test]
    fn predictions_are_probabilities() {
        let ds = tiny();
        let (model, _) = train_model(&ds, &tiny_cfg(), &ctx_det()).unwrap();
        let p = model.predict(&ctx_det(), &ds).unwrap();
        for v in 0..ds.graph.num_nodes {
            let row_sum: f64 = p.row(v).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn losses_converge_similarly_despite_nd() {
        // §V-B: "Despite this variability all models converge to
        // similar loss values."
        let ds = tiny();
        let cfg = tiny_cfg();
        let (_, det_losses) = train_model(&ds, &cfg, &ctx_det()).unwrap();
        let (_, nd_losses) = train_model(&ds, &cfg, &ctx_nd(5)).unwrap();
        let final_det = det_losses.last().unwrap();
        let final_nd = nd_losses.last().unwrap();
        assert!(
            (final_det - final_nd).abs() < 0.2 * final_det.abs().max(0.1),
            "det {final_det} vs nd {final_nd}"
        );
    }
}
