//! The §V experiment protocols.
//!
//! * [`weight_divergence_experiment`] — train N models with
//!   non-deterministic kernels from identical inputs and initial
//!   weights; per epoch, measure `Vermv` of the weight vector against
//!   the deterministically trained reference. Reproduces the §V-B
//!   findings: mean `Vermv` grows with epochs, and every ND-trained
//!   model ends up with a unique weight set (`Vc → 1`).
//! * [`train_inference_matrix`] — the four D/ND training × inference
//!   combinations of Table 7, measured on the inference predictions
//!   against the D/D reference.

use fpna_core::executor::RunExecutor;
use fpna_core::harness::RunSummary;
use fpna_core::metrics::ArrayComparison;
use fpna_core::Result;
use fpna_gpu_sim::GpuModel;
use fpna_tensor::context::GpuContext;

use crate::graph::NodeClassification;
use crate::model::{GraphSage, TrainConfig};

/// Result of the weight-divergence experiment.
#[derive(Debug, Clone)]
pub struct WeightDivergence {
    /// Per-epoch summary of weight `Vermv` across the ND runs.
    pub per_epoch_vermv: Vec<RunSummary>,
    /// Per-epoch summary of weight `Vc` across the ND runs.
    pub per_epoch_vc: Vec<RunSummary>,
    /// `Vc` of the final weights across runs (fraction of weights
    /// differing from the deterministic reference).
    pub final_vc: RunSummary,
    /// Number of distinct final weight vectors among the ND runs.
    pub unique_models: usize,
    /// Number of ND training runs.
    pub runs: usize,
    /// Final losses of the ND runs (they should cluster despite the
    /// bitwise divergence — "all models converge to similar loss").
    pub final_losses: Vec<f64>,
}

/// Per-run record of one ND training trajectory, produced on a worker
/// and folded into the experiment summaries in run-index order.
struct NdTrajectory {
    per_epoch: Vec<(f64, f64)>, // (vermv, vc) vs the reference, per epoch
    final_weights_bits: Vec<u64>,
    final_loss: f64,
}

/// Train `runs` ND models and track weight divergence per epoch against
/// a deterministic reference training run. The ND runs are independent
/// (each is seeded from `(seed, run_index)`), so they fan out through
/// `executor` with bitwise-identical summaries at any thread count.
pub fn weight_divergence_experiment(
    ds: &NodeClassification,
    cfg: &TrainConfig,
    gpu: GpuModel,
    runs: usize,
    seed: u64,
    executor: &RunExecutor,
) -> Result<WeightDivergence> {
    // Reference: deterministic training, weights captured per epoch.
    let det_ctx = GpuContext::new(gpu, seed).with_determinism(Some(true));
    let mut reference = GraphSage::new(ds.features.shape()[1], cfg.hidden, ds.num_classes, cfg);
    let mut ref_weights: Vec<Vec<f64>> = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        reference.train_epoch(&det_ctx.for_run(epoch as u64), ds, cfg.lr)?;
        ref_weights.push(reference.flat_params());
    }

    let trajectories: Result<Vec<NdTrajectory>> = executor
        .map_runs(runs, |r| -> Result<NdTrajectory> {
            let nd_ctx = GpuContext::new(gpu, fpna_core::rng::derive_seed(seed, 1 + r as u64))
                .with_determinism(Some(false));
            let mut model =
                GraphSage::new(ds.features.shape()[1], cfg.hidden, ds.num_classes, cfg);
            let mut per_epoch = Vec::with_capacity(cfg.epochs);
            let mut final_weights_bits = Vec::new();
            let mut final_loss = f64::NAN;
            for (epoch, ref_w) in ref_weights.iter().enumerate() {
                final_loss = model.train_epoch(&nd_ctx.for_run(epoch as u64), ds, cfg.lr)?;
                let w = model.flat_params();
                let cmp = ArrayComparison::compare(ref_w, &w);
                per_epoch.push((cmp.vermv, cmp.vc));
                if epoch + 1 == cfg.epochs {
                    final_weights_bits = w.iter().map(|x| x.to_bits()).collect();
                }
            }
            Ok(NdTrajectory {
                per_epoch,
                final_weights_bits,
                final_loss,
            })
        })
        .into_iter()
        .collect();
    let trajectories = trajectories?;

    let mut per_epoch: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); cfg.epochs];
    let mut per_epoch_vc: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); cfg.epochs];
    let mut final_vc = Vec::with_capacity(runs);
    let mut final_losses = Vec::with_capacity(runs);
    let mut fingerprints = std::collections::HashSet::new();
    for t in trajectories {
        for (epoch, &(vermv, vc)) in t.per_epoch.iter().enumerate() {
            per_epoch[epoch].push(vermv);
            per_epoch_vc[epoch].push(vc);
            if epoch + 1 == cfg.epochs {
                final_vc.push(vc);
            }
        }
        fingerprints.insert(t.final_weights_bits);
        final_losses.push(t.final_loss);
    }
    Ok(WeightDivergence {
        per_epoch_vermv: per_epoch.iter().map(|v| RunSummary::from_values(v)).collect(),
        per_epoch_vc: per_epoch_vc.iter().map(|v| RunSummary::from_values(v)).collect(),
        final_vc: RunSummary::from_values(&final_vc),
        unique_models: fingerprints.len(),
        runs,
        final_losses,
    })
}

/// D or ND pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Deterministic kernels.
    D,
    /// Non-deterministic kernels.
    Nd,
}

impl Mode {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::D => "D",
            Mode::Nd => "ND",
        }
    }
}

/// One row of Table 7.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Training mode.
    pub train: Mode,
    /// Inference mode.
    pub infer: Mode,
    /// `Vermv` of the predictions vs the D/D reference, across models.
    pub vermv: RunSummary,
    /// `Vc` of the predictions vs the D/D reference, across models.
    pub vc: RunSummary,
}

/// The four D/ND training × inference conditions of Table 7, in the
/// paper's row order.
pub const MATRIX_CONDITIONS: [(Mode, Mode); 4] = [
    (Mode::D, Mode::D),
    (Mode::D, Mode::Nd),
    (Mode::Nd, Mode::D),
    (Mode::Nd, Mode::Nd),
];

/// The shardable core of [`train_inference_matrix`]: per-model
/// prediction comparisons against the D/D reference, computed for the
/// global model indices in `range` only. Every comparison is a pure
/// function of `(seed, condition, model_index)` — the D/D reference is
/// recomputed per process (one deterministic training run, cheap next
/// to the sweep) and run seeds are keyed by the *global* index — so
/// any partition of `0..models` concatenates back to the full matrix
/// bit for bit. Returns one `Vec<ArrayComparison>` per condition of
/// [`MATRIX_CONDITIONS`], in `range` index order.
pub fn train_inference_comparisons(
    ds: &NodeClassification,
    cfg: &TrainConfig,
    gpu: GpuModel,
    models: usize,
    seed: u64,
    range: std::ops::Range<usize>,
    executor: &RunExecutor,
) -> Result<[Vec<ArrayComparison>; 4]> {
    assert!(range.end <= models, "model range {range:?} exceeds --models {models}");
    let det_ctx = GpuContext::new(gpu, seed).with_determinism(Some(true));
    let (ref_model, _) = crate::model::train_model(ds, cfg, &det_ctx)?;
    let reference = ref_model.predict(&det_ctx, ds)?.into_data();

    let mut out: [Vec<ArrayComparison>; 4] = Default::default();
    for (cond_idx, &(train, infer)) in MATRIX_CONDITIONS.iter().enumerate() {
        let comparisons: Result<Vec<ArrayComparison>> = executor
            .map_runs(range.len(), |i| -> Result<ArrayComparison> {
                let m = range.start + i;
                let run_seed =
                    fpna_core::rng::derive_seed(seed, (cond_idx * models + m + 1) as u64);
                let train_ctx =
                    GpuContext::new(gpu, run_seed).with_determinism(Some(train == Mode::D));
                let model = if train == Mode::D {
                    // deterministic training always reproduces the reference
                    ref_model.clone()
                } else {
                    crate::model::train_model(ds, cfg, &train_ctx)?.0
                };
                let infer_ctx = GpuContext::new(gpu, run_seed ^ 0xF00D)
                    .with_determinism(Some(infer == Mode::D));
                let pred = model.predict(&infer_ctx, ds)?.into_data();
                Ok(ArrayComparison::compare(&reference, &pred))
            })
            .into_iter()
            .collect();
        out[cond_idx] = comparisons?;
    }
    Ok(out)
}

/// The Table 7 experiment: predictions of `models` independently
/// produced pipelines per condition, compared against the
/// deterministic-train + deterministic-inference reference. Pipelines
/// within a condition fan out through `executor` (each is seeded from
/// `(seed, condition, model_index)`); the rows are bitwise identical
/// at any thread count.
pub fn train_inference_matrix(
    ds: &NodeClassification,
    cfg: &TrainConfig,
    gpu: GpuModel,
    models: usize,
    seed: u64,
    executor: &RunExecutor,
) -> Result<Vec<MatrixRow>> {
    let per_condition =
        train_inference_comparisons(ds, cfg, gpu, models, seed, 0..models, executor)?;
    let mut rows = Vec::with_capacity(4);
    for (&(train, infer), comparisons) in MATRIX_CONDITIONS.iter().zip(&per_condition) {
        let vermv: Vec<f64> = comparisons.iter().map(|c| c.vermv).collect();
        let vc: Vec<f64> = comparisons.iter().map(|c| c.vc).collect();
        rows.push(MatrixRow {
            train,
            infer,
            vermv: RunSummary::from_values(&vermv),
            vc: RunSummary::from_values(&vc),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{synthetic_cora, CoraParams};
    use crate::sage::Aggregation;

    fn tiny() -> NodeClassification {
        // Slightly denser than CoraParams::tiny so FPNA bites.
        let mut p = CoraParams::tiny();
        p.links = 500;
        synthetic_cora(p, 13)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            hidden: 8,
            lr: 0.5,
            epochs: 5,
            init_seed: 3,
            aggregation: Aggregation::Mean,
        }
    }

    #[test]
    fn weight_divergence_grows_and_models_are_unique() {
        let ds = tiny();
        let wd = weight_divergence_experiment(
            &ds,
            &cfg(),
            GpuModel::H100,
            4,
            17,
            &RunExecutor::serial(),
        )
        .unwrap();
        assert_eq!(wd.per_epoch_vermv.len(), 5);
        assert_eq!(wd.runs, 4);
        // §V-B: variability present and weights essentially all differ
        let last = wd.per_epoch_vermv.last().unwrap();
        assert!(last.mean > 0.0, "ND training should diverge");
        // On this tiny sparse graph only the touched weight rows can
        // diverge; the full-Cora bench (`table7`) shows Vc ≈ 1.
        assert!(wd.final_vc.mean > 0.05, "a solid fraction of weights should differ, got {}", wd.final_vc.mean);
        assert!(wd.unique_models >= 2);
        // losses cluster
        let min = wd.final_losses.iter().copied().fold(f64::INFINITY, f64::min);
        let max = wd
            .final_losses
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min < 0.5, "losses {:?}", wd.final_losses);
    }

    #[test]
    fn experiments_are_thread_count_invariant() {
        let ds = tiny();
        let serial =
            weight_divergence_experiment(&ds, &cfg(), GpuModel::H100, 4, 17, &RunExecutor::serial())
                .unwrap();
        for threads in [2usize, 7] {
            let parallel = weight_divergence_experiment(
                &ds,
                &cfg(),
                GpuModel::H100,
                4,
                17,
                &RunExecutor::new(threads),
            )
            .unwrap();
            assert_eq!(parallel.unique_models, serial.unique_models);
            for (a, b) in serial.final_losses.iter().zip(&parallel.final_losses) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
            for (a, b) in serial.per_epoch_vermv.iter().zip(&parallel.per_epoch_vermv) {
                assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "threads={threads}");
                assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits(), "threads={threads}");
            }
            assert_eq!(
                serial.final_vc.mean.to_bits(),
                parallel.final_vc.mean.to_bits()
            );
        }

        let m_serial =
            train_inference_matrix(&ds, &cfg(), GpuModel::H100, 3, 19, &RunExecutor::serial())
                .unwrap();
        let m_parallel =
            train_inference_matrix(&ds, &cfg(), GpuModel::H100, 3, 19, &RunExecutor::new(4))
                .unwrap();
        for (a, b) in m_serial.iter().zip(&m_parallel) {
            assert_eq!(a.vermv.mean.to_bits(), b.vermv.mean.to_bits());
            assert_eq!(a.vc.mean.to_bits(), b.vc.mean.to_bits());
            assert_eq!(a.vc.std_dev.to_bits(), b.vc.std_dev.to_bits());
        }
    }

    #[test]
    fn matrix_dd_row_is_exactly_zero() {
        let ds = tiny();
        let rows =
            train_inference_matrix(&ds, &cfg(), GpuModel::H100, 2, 19, &RunExecutor::serial())
                .unwrap();
        assert_eq!(rows.len(), 4);
        let dd = &rows[0];
        assert_eq!((dd.train, dd.infer), (Mode::D, Mode::D));
        assert_eq!(dd.vermv.mean, 0.0);
        assert_eq!(dd.vc.mean, 0.0);
        // ND conditions produce nonzero divergence
        let ndnd = &rows[3];
        assert!(ndnd.vermv.mean > 0.0);
        assert!(ndnd.vc.mean > 0.0);
    }

    #[test]
    fn nd_training_dominates_nd_inference() {
        // The paper: "training seems to incur more variability" —
        // ND-train/D-infer > D-train/ND-infer in Vermv.
        let ds = tiny();
        let rows =
            train_inference_matrix(&ds, &cfg(), GpuModel::H100, 3, 23, &RunExecutor::serial())
                .unwrap();
        let d_nd = rows[1].vermv.mean;
        let nd_d = rows[2].vermv.mean;
        assert!(
            nd_d > d_nd,
            "training variability ({nd_d}) should exceed inference variability ({d_nd})"
        );
    }

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::D.label(), "D");
        assert_eq!(Mode::Nd.label(), "ND");
    }
}
