//! The GraphSAGE convolution layer, with manual gradients.
//!
//! `h'_v = σ( W_self·h_v + W_neigh·AGG({h_u : u ∈ N(v)}) + b )`
//!
//! The aggregation `AGG` (mean, or sum for the ablation) is implemented
//! with `gather_rows` + `index_add` on the simulated GPU — the same
//! structure as PyTorch Geometric's SAGEConv, and the paper's single
//! source of non-determinism. `index_add` appears in **both** the
//! forward aggregation and the backward scatter of gradients to
//! neighbours, so non-deterministic training compounds the effect
//! across epochs (§V-B).

use fpna_core::Result;
use fpna_tensor::context::GpuContext;
use fpna_tensor::ops::index::{gather_rows, index_add};
use fpna_tensor::Tensor;

use crate::graph::Graph;
use crate::linalg::{add_bias_rows, matmul, matmul_nt, matmul_tn};

/// Scale each node's feature row by `1 / degree` (the mean-aggregation
/// divisor), skipping isolated nodes. Rows are independent, so the
/// loop is row-blocked across the intra-run thread budget with bits
/// identical to the serial pass.
fn scale_rows_by_inv_degree(t: &mut Tensor, degree: &[u32]) {
    let d = t.shape()[1];
    let scale = |nodes: std::ops::Range<usize>, region: &mut [f64]| {
        for (local, v) in nodes.enumerate() {
            let deg = degree[v];
            if deg > 0 {
                let inv = 1.0 / deg as f64;
                for val in &mut region[local * d..(local + 1) * d] {
                    *val *= inv;
                }
            }
        }
    };
    let n = t.numel();
    let rows = t.shape()[0];
    if n >= 1 << 16 {
        fpna_core::executor::par_fill(t.data_mut(), d, scale);
    } else {
        scale(0..rows, t.data_mut());
    }
}

/// Neighbour aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Mean over neighbours (GraphSAGE default, used in the paper).
    Mean,
    /// Sum over neighbours (ablation `ablation_sage_agg`).
    Sum,
}

/// One SAGE convolution layer.
#[derive(Debug, Clone)]
pub struct SageConv {
    /// Self weight, `[in, out]`.
    pub w_self: Tensor,
    /// Neighbour weight, `[in, out]`.
    pub w_neigh: Tensor,
    /// Bias, `[out]`.
    pub bias: Vec<f64>,
    /// Aggregation mode.
    pub aggregation: Aggregation,
    /// Apply ReLU after the affine map.
    pub relu: bool,
}

/// Forward-pass intermediates needed by the backward pass.
#[derive(Debug, Clone)]
pub struct SageCache {
    x: Tensor,
    agg: Tensor,
    pre_activation: Tensor,
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone)]
pub struct SageGrads {
    /// Gradient of `w_self`.
    pub dw_self: Tensor,
    /// Gradient of `w_neigh`.
    pub dw_neigh: Tensor,
    /// Gradient of `bias`.
    pub dbias: Vec<f64>,
}

impl SageConv {
    /// Glorot-uniform initialised layer, fully determined by the seed.
    pub fn new(in_dim: usize, out_dim: usize, aggregation: Aggregation, relu: bool, seed: u64) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let init = |s: u64| {
            Tensor::rand(vec![in_dim, out_dim], s).map(|u| (2.0 * u - 1.0) * limit)
        };
        SageConv {
            w_self: init(seed),
            w_neigh: init(seed ^ 0x5eed_cafe),
            bias: vec![0.0; out_dim],
            aggregation,
            relu,
        }
    }

    /// Mean/sum-aggregate neighbour features: `index_add` over the edge
    /// list — the non-deterministic heart of the layer.
    fn aggregate(&self, ctx: &GpuContext, graph: &Graph, x: &Tensor) -> Result<Tensor> {
        let d = x.shape()[1];
        let gathered = gather_rows(x, &graph.edge_src)?;
        let zeros = Tensor::zeros(vec![graph.num_nodes, d]);
        let mut summed = index_add(ctx, &zeros, &graph.edge_dst, &gathered)?;
        if self.aggregation == Aggregation::Mean {
            scale_rows_by_inv_degree(&mut summed, &graph.degree);
        }
        Ok(summed)
    }

    /// Forward pass. Returns the output and the cache for backward.
    pub fn forward(&self, ctx: &GpuContext, graph: &Graph, x: &Tensor) -> Result<(Tensor, SageCache)> {
        let agg = self.aggregate(ctx, graph, x)?;
        let mut pre = matmul(x, &self.w_self);
        let neigh = matmul(&agg, &self.w_neigh);
        for (p, &n) in pre.data_mut().iter_mut().zip(neigh.data()) {
            *p += n;
        }
        add_bias_rows(&mut pre, &self.bias);
        let out = if self.relu { pre.map(|v| v.max(0.0)) } else { pre.clone() };
        Ok((
            out,
            SageCache {
                x: x.clone(),
                agg,
                pre_activation: pre,
            },
        ))
    }

    /// Backward pass: given `dout = ∂L/∂output`, produce parameter
    /// gradients and `∂L/∂x`. The neighbour-gradient scatter uses
    /// `index_add` and is therefore non-deterministic in ND mode.
    pub fn backward(
        &self,
        ctx: &GpuContext,
        graph: &Graph,
        cache: &SageCache,
        dout: &Tensor,
    ) -> Result<(SageGrads, Tensor)> {
        let out_dim = self.w_self.shape()[1];
        // ReLU gate.
        let dpre = if self.relu {
            dout.zip(&cache.pre_activation, |g, p| if p > 0.0 { g } else { 0.0 })
        } else {
            dout.clone()
        };
        let dw_self = matmul_tn(&cache.x, &dpre);
        let dw_neigh = matmul_tn(&cache.agg, &dpre);
        let mut dbias = vec![0.0f64; out_dim];
        for row in dpre.data().chunks(out_dim) {
            for (b, &g) in dbias.iter_mut().zip(row) {
                *b += g;
            }
        }
        // Gradient through the aggregation.
        let mut dagg = matmul_nt(&dpre, &self.w_neigh); // [n, in]
        if self.aggregation == Aggregation::Mean {
            scale_rows_by_inv_degree(&mut dagg, &graph.degree);
        }
        // Scatter back to neighbours: dx[src] += dagg[dst] per edge.
        let dgathered = gather_rows(&dagg, &graph.edge_dst)?;
        let zeros = Tensor::zeros(vec![graph.num_nodes, dagg.shape()[1]]);
        let dx_agg = index_add(ctx, &zeros, &graph.edge_src, &dgathered)?;
        let mut dx = matmul_nt(&dpre, &self.w_self);
        for (a, &b) in dx.data_mut().iter_mut().zip(dx_agg.data()) {
            *a += b;
        }
        Ok((
            SageGrads {
                dw_self,
                dw_neigh,
                dbias,
            },
            dx,
        ))
    }

    /// SGD step.
    pub fn apply_grads(&mut self, grads: &SageGrads, lr: f64) {
        for (w, &g) in self.w_self.data_mut().iter_mut().zip(grads.dw_self.data()) {
            *w -= lr * g;
        }
        for (w, &g) in self
            .w_neigh
            .data_mut()
            .iter_mut()
            .zip(grads.dw_neigh.data())
        {
            *w -= lr * g;
        }
        for (b, &g) in self.bias.iter_mut().zip(&grads.dbias) {
            *b -= lr * g;
        }
    }

    /// Flatten all parameters (for weight-divergence metrics).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = self.w_self.data().to_vec();
        out.extend_from_slice(self.w_neigh.data());
        out.extend_from_slice(&self.bias);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use fpna_gpu_sim::GpuModel;

    fn ctx_det() -> GpuContext {
        GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
    }

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    fn line_graph() -> Graph {
        Graph::from_undirected(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn mean_aggregation_semantics() {
        let g = line_graph();
        let x = Tensor::from_vec(vec![3, 1], vec![1.0, 10.0, 100.0]);
        let layer = SageConv::new(1, 1, Aggregation::Mean, false, 1);
        let agg = layer.aggregate(&ctx_det(), &g, &x).unwrap();
        // node0 neighbours {1} -> 10; node1 {0,2} -> 50.5; node2 {1} -> 10
        assert_eq!(agg.data(), &[10.0, 50.5, 10.0]);
    }

    #[test]
    fn sum_aggregation_semantics() {
        let g = line_graph();
        let x = Tensor::from_vec(vec![3, 1], vec![1.0, 10.0, 100.0]);
        let layer = SageConv::new(1, 1, Aggregation::Sum, false, 1);
        let agg = layer.aggregate(&ctx_det(), &g, &x).unwrap();
        assert_eq!(agg.data(), &[10.0, 101.0, 10.0]);
    }

    #[test]
    fn forward_shapes() {
        let g = line_graph();
        let x = Tensor::randn(vec![3, 4], 2);
        let layer = SageConv::new(4, 2, Aggregation::Mean, true, 3);
        let (out, cache) = layer.forward(&ctx_det(), &g, &x).unwrap();
        assert_eq!(out.shape(), &[3, 2]);
        assert!(out.data().iter().all(|&v| v >= 0.0), "relu output");
        assert_eq!(cache.agg.shape(), &[3, 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let g = line_graph();
        let x = Tensor::randn(vec![3, 3], 4).map(|v| v * 0.5);
        let mut layer = SageConv::new(3, 2, Aggregation::Mean, true, 5);
        let ctx = ctx_det();
        // Loss = sum(out^2)/2 so dout = out.
        let loss_of = |l: &SageConv, xt: &Tensor| -> f64 {
            let (out, _) = l.forward(&ctx, &g, xt).unwrap();
            0.5 * out.data().iter().map(|v| v * v).sum::<f64>()
        };
        let (out, cache) = layer.forward(&ctx, &g, &x).unwrap();
        let (grads, dx) = layer.backward(&ctx, &g, &cache, &out).unwrap();
        let eps = 1e-6;

        // check dW_self[0,0]
        let base = loss_of(&layer, &x);
        layer.w_self.data_mut()[0] += eps;
        let bumped = loss_of(&layer, &x);
        layer.w_self.data_mut()[0] -= eps;
        let fd = (bumped - base) / eps;
        assert!(
            (fd - grads.dw_self.data()[0]).abs() < 1e-4 * fd.abs().max(1.0),
            "dw_self fd {fd} vs {}",
            grads.dw_self.data()[0]
        );

        // check dW_neigh[1,1]
        layer.w_neigh.data_mut()[3] += eps;
        let bumped = loss_of(&layer, &x);
        layer.w_neigh.data_mut()[3] -= eps;
        let fd = (bumped - base) / eps;
        assert!(
            (fd - grads.dw_neigh.data()[3]).abs() < 1e-4 * fd.abs().max(1.0),
            "dw_neigh fd {fd} vs {}",
            grads.dw_neigh.data()[3]
        );

        // check dbias[0]
        layer.bias[0] += eps;
        let bumped = loss_of(&layer, &x);
        layer.bias[0] -= eps;
        let fd = (bumped - base) / eps;
        assert!((fd - grads.dbias[0]).abs() < 1e-4 * fd.abs().max(1.0));

        // check dx[2]
        let mut x2 = x.clone();
        x2.data_mut()[2] += eps;
        let bumped = loss_of(&layer, &x2);
        let fd = (bumped - base) / eps;
        assert!(
            (fd - dx.data()[2]).abs() < 1e-4 * fd.abs().max(1.0),
            "dx fd {fd} vs {}",
            dx.data()[2]
        );
    }

    #[test]
    fn deterministic_forward_is_bitwise_stable() {
        let g = line_graph();
        let x = Tensor::randn(vec![3, 8], 6).map(|v| v * 1e4);
        let layer = SageConv::new(8, 4, Aggregation::Mean, true, 7);
        let (a, _) = layer.forward(&ctx_det().for_run(0), &g, &x).unwrap();
        let (b, _) = layer.forward(&ctx_det().for_run(1), &g, &x).unwrap();
        assert!(a.bitwise_eq(&b));
    }

    #[test]
    fn nd_forward_varies_on_dense_graph() {
        // A hub node with many neighbours makes the index_add
        // accumulation long enough for order effects to show.
        let links: Vec<(u32, u32)> = (1..3000u32).map(|i| (0, i)).collect();
        let g = Graph::from_undirected(3000, &links);
        let x = Tensor::randn(vec![3000, 2], 8).map(|v| v * 1e6);
        let layer = SageConv::new(2, 2, Aggregation::Mean, false, 9);
        let mut bits = std::collections::HashSet::new();
        for run in 0..10 {
            let (out, _) = layer.forward(&ctx_nd(10).for_run(run), &g, &x).unwrap();
            bits.insert(out.data()[0].to_bits());
        }
        assert!(bits.len() > 1, "hub aggregation should be order-sensitive");
    }

    #[test]
    fn sgd_reduces_loss() {
        let g = line_graph();
        let x = Tensor::randn(vec![3, 3], 11);
        let target = Tensor::randn(vec![3, 2], 12);
        let mut layer = SageConv::new(3, 2, Aggregation::Mean, false, 13);
        let ctx = ctx_det();
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            let (out, cache) = layer.forward(&ctx, &g, &x).unwrap();
            let dout = out.zip(&target, |o, t| o - t);
            let loss: f64 = dout.data().iter().map(|d| d * d).sum::<f64>() * 0.5;
            let (grads, _) = layer.backward(&ctx, &g, &cache, &dout).unwrap();
            layer.apply_grads(&grads, 0.05);
            assert!(loss <= last * 1.001, "loss should trend down");
            last = loss;
        }
        assert!(last < 0.5, "final loss {last}");
    }
}
