//! Allreduce algorithms over simulated ranks.
//!
//! The value semantics are exact: every variant returns the elementwise
//! sum of the per-rank vectors. The *bits* differ by combine order:
//!
//! | algorithm | combine order | deterministic? |
//! |---|---|---|
//! | ring | fixed rotation per segment | yes (always) |
//! | k-ary tree, rank order | children ascending | yes |
//! | k-ary tree, arrival order | seeded shuffle per node | **no** |
//! | recursive doubling | (lower, upper) pairs | yes |
//! | segmented ring / tree | as their unsegmented base | as their base (chunking is a timing knob) |
//! | hierarchical | per-group tree, then leader tree | as the tree (per ordering) |
//! | fabric ring | ring rotation over fabric order | yes (always) |
//! | double binary tree | two mirrored binary trees, half payload each | as the tree (per ordering) |
//! | any algorithm, reproducible | exact accumulators | yes, and identical across algorithms |
//!
//! Note the subtlety the tests pin down: ring and tree are each
//! internally deterministic but give **different bits from each
//! other** — real MPI libraries select algorithms at runtime by message
//! size and topology, so "deterministic per algorithm" still does not
//! give reproducible applications. Only the exact variant is stable
//! across all of it.

use fpna_core::rng::{shuffle, SplitMix64};
use fpna_summation::exact::ExactAccumulator;

/// Reduction topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Ring reduce-scatter + allgather.
    Ring,
    /// Reduction tree with the given fanout (≥ 2).
    KAryTree {
        /// Children per node.
        fanout: usize,
    },
    /// Recursive doubling (rank count must be a power of two).
    RecursiveDoubling,
    /// [`Algorithm::Ring`] with each rank-segment pipelined in
    /// `segments` chunks (NCCL-style overlap): on the network path
    /// chunk `i+1` serializes while chunk `i` propagates. Per element
    /// the combine order is exactly the ring rotation, so **values are
    /// bitwise identical to `Ring` at every segment count**; only the
    /// clock changes. The in-memory path therefore delegates to the
    /// plain ring.
    SegmentedRing {
        /// Pipeline chunk count (≥ 1; 1 means unsegmented).
        segments: usize,
    },
    /// [`Algorithm::KAryTree`] with the payload pipelined in
    /// `segments` chunks flowing up and down the tree back to back.
    /// Per element the fold order matches the unsegmented tree, so the
    /// in-memory path delegates to `KAryTree`; on the network path the
    /// levels overlap and (under arrival order) each chunk's fold
    /// order emerges from its own message timing.
    SegmentedTree {
        /// Children per node (≥ 2).
        fanout: usize,
        /// Pipeline chunk count (≥ 1; 1 means unsegmented).
        segments: usize,
    },
    /// Topology-aware hierarchical allreduce, NCCL/MPI-style: an
    /// `intra`-ary reduction tree *inside* each fabric group (node) to
    /// the group leader, an `inter`-ary allreduce among the leaders
    /// only, then an intra-group broadcast — so bulk traffic stays off
    /// the NIC/spine links and only leaders ever cross. The network
    /// path takes the grouping from the topology (fabric groups,
    /// `Topology::group_of`); the in-memory path, having no fabric,
    /// uses the trivial single-group partition (one intra tree over
    /// everyone, no inter phase).
    Hierarchical {
        /// Children per node of the within-group reduction tree (≥ 2).
        intra: usize,
        /// Children per node of the leader allreduce tree (≥ 2).
        inter: usize,
    },
    /// [`Algorithm::Ring`] with the rotation laid over the physical
    /// fabric order (`Topology::fabric_ring_order`) instead of rank
    /// ids, so consecutive ring neighbours share a fabric group
    /// everywhere except the unavoidable one-seam-per-group crossings.
    /// The combine order is still a fixed rotation — deterministic
    /// under every ordering. In memory (no fabric) the order is the
    /// identity, i.e. exactly [`Algorithm::Ring`].
    FabricRing,
    /// Double binary tree, NCCL-style: two complementary binary trees
    /// run concurrently, the first carrying the lower half of the
    /// payload over ranks in identity order, the second the upper half
    /// over ranks in *mirrored* order (`v ↔ p−1−v`), so each tree's
    /// bandwidth bottleneck sees only half the bytes.
    DoubleBinaryTree,
}

/// Combine-order policy at each reduction point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Contributions fold in simulated message-arrival order (seeded).
    ArrivalOrder {
        /// Seed standing in for "what the fabric did this run".
        seed: u64,
    },
    /// Contributions are buffered and folded in rank order —
    /// deterministic; the software-scheduled interconnect model.
    RankOrder,
    /// Exact accumulators travel with the messages; one final rounding.
    Reproducible,
}

/// Allreduce (sum) over `ranks[r]` vectors of equal length. Returns
/// the reduced vector (identical on every rank after the broadcast
/// phase, which involves no arithmetic).
///
/// # Panics
///
/// Panics on empty input, mismatched lengths, fanout < 2, or a
/// non-power-of-two rank count for recursive doubling.
pub fn allreduce(ranks: &[Vec<f64>], algorithm: Algorithm, ordering: Ordering) -> Vec<f64> {
    assert!(!ranks.is_empty(), "allreduce needs at least one rank");
    let m = ranks[0].len();
    assert!(
        ranks.iter().all(|v| v.len() == m),
        "all ranks must contribute equally-shaped vectors"
    );
    if let Ordering::Reproducible = ordering {
        return reproducible_sum(ranks, m);
    }
    let order_seed = |ordering: Ordering| match ordering {
        Ordering::ArrivalOrder { seed } => Some(seed),
        Ordering::RankOrder => None,
        Ordering::Reproducible => unreachable!(),
    };
    match algorithm {
        Algorithm::Ring => ring(ranks, m),
        Algorithm::SegmentedRing { segments } => {
            // Segmentation is a wire-level pipelining knob; the
            // per-element combine order is the ring rotation either
            // way, so the in-memory bits are the plain ring's.
            assert!(segments >= 1, "segment count must be positive");
            ring(ranks, m)
        }
        Algorithm::KAryTree { fanout } => {
            assert!(fanout >= 2, "tree fanout must be at least 2");
            tree(ranks, fanout, order_seed(ordering))
        }
        Algorithm::SegmentedTree { fanout, segments } => {
            assert!(fanout >= 2, "tree fanout must be at least 2");
            assert!(segments >= 1, "segment count must be positive");
            tree(ranks, fanout, order_seed(ordering))
        }
        Algorithm::RecursiveDoubling => {
            assert!(
                ranks.len().is_power_of_two(),
                "recursive doubling needs a power-of-two rank count"
            );
            recursive_doubling(ranks, m)
        }
        Algorithm::Hierarchical { intra, inter } => {
            assert!(intra >= 2 && inter >= 2, "tree fanout must be at least 2");
            // No fabric in memory: the trivial single-group partition
            // (every rank in one group, no inter phase).
            let everyone: Vec<usize> = (0..ranks.len()).collect();
            hierarchical_in_memory(ranks, &[everyone], intra, inter, order_seed(ordering))
        }
        Algorithm::FabricRing => {
            // No fabric in memory: fabric order is the identity, so
            // this is exactly the plain ring.
            let identity: Vec<usize> = (0..ranks.len()).collect();
            ring_in_order(ranks, m, &identity)
        }
        Algorithm::DoubleBinaryTree => {
            double_binary_tree_in_memory(ranks, order_seed(ordering))
        }
    }
}

/// Exact path: element-wise long accumulators, merged in any order —
/// the order provably cannot matter, so we just fold rank-major.
fn reproducible_sum(ranks: &[Vec<f64>], m: usize) -> Vec<f64> {
    let mut accs: Vec<ExactAccumulator> = (0..m).map(|_| ExactAccumulator::new()).collect();
    for r in ranks {
        for (acc, &v) in accs.iter_mut().zip(r) {
            acc.add(v);
        }
    }
    accs.iter().map(|a| a.round()).collect()
}

/// Ring: element block `s` accumulates around the ring starting at
/// rank `s + 1`; the rotation is part of the algorithm, so the bits
/// depend on the segment boundaries but never on timing.
fn ring(ranks: &[Vec<f64>], m: usize) -> Vec<f64> {
    let p = ranks.len();
    let seg_len = m.div_ceil(p);
    let mut out = vec![0.0f64; m];
    for s in 0..p {
        let lo = (s * seg_len).min(m);
        let hi = ((s + 1) * seg_len).min(m);
        for i in lo..hi {
            // accumulation starts at the segment owner and walks the ring
            let mut acc = ranks[s][i];
            for step in 1..p {
                acc += ranks[(s + step) % p][i];
            }
            out[i] = acc;
        }
    }
    out
}

/// K-ary reduction tree rooted at rank 0; children of `v` are
/// `f·v + 1 ..= f·v + f`. Each node folds its own buffer first (it is
/// resident), then child results — in rank order or in seeded arrival
/// order.
fn tree(ranks: &[Vec<f64>], fanout: usize, arrival_seed: Option<u64>) -> Vec<f64> {
    let m = ranks[0].len();
    tree_fold(ranks, |v| v, ranks.len(), 0, m, fanout, arrival_seed, 0)
}

/// Salts decorrelating the per-node arrival-order shuffles of the
/// topology-aware variants' distinct tree phases (salt 0 is the plain
/// k-ary tree's keying, kept bit-identical).
const HIER_INTRA_SALT: u64 = 0x48_0001;
const HIER_INTER_SALT: u64 = 0x48_FFFF;
const DBT_SALT_LOWER: u64 = 0xDB70;
const DBT_SALT_UPPER: u64 = 0xDB71;

/// The k-ary tree fold over `count` *virtual* nodes: virtual node `i`
/// reads columns `lo..hi` of `buffers[phys(i)]`, children of `i` are
/// `f·i + 1 ..= f·i + f` (clipped to `count`), and every node folds its
/// own buffer first, then children — ascending, or seeded-shuffled per
/// node under arrival order (`salt` keeps distinct tree instances'
/// shuffles decorrelated). This is the shared value semantics of the
/// plain tree (`phys` = identity), the hierarchical variant's two
/// phases, and each double-binary-tree half.
#[allow(clippy::too_many_arguments)]
fn tree_fold<F: Fn(usize) -> usize + Copy>(
    buffers: &[Vec<f64>],
    phys: F,
    count: usize,
    lo: usize,
    hi: usize,
    fanout: usize,
    arrival_seed: Option<u64>,
    salt: u64,
) -> Vec<f64> {
    #[allow(clippy::too_many_arguments)]
    fn reduce_node<F: Fn(usize) -> usize + Copy>(
        v: usize,
        buffers: &[Vec<f64>],
        phys: F,
        count: usize,
        lo: usize,
        hi: usize,
        fanout: usize,
        arrival_seed: Option<u64>,
        salt: u64,
    ) -> Vec<f64> {
        let mut children: Vec<usize> = (1..=fanout)
            .map(|k| fanout * v + k)
            .filter(|&c| c < count)
            .collect();
        let mut acc = buffers[phys(v)][lo..hi].to_vec();
        if children.is_empty() {
            return acc;
        }
        if let Some(seed) = arrival_seed {
            // arrival order: a per-node seeded shuffle
            let mut rng = SplitMix64::new(
                seed ^ salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                    ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            shuffle(&mut children, &mut rng);
        }
        for c in children {
            let child = reduce_node(c, buffers, phys, count, lo, hi, fanout, arrival_seed, salt);
            for (a, b) in acc.iter_mut().zip(&child) {
                *a += b;
            }
        }
        acc
    }
    reduce_node(0, buffers, phys, count, lo, hi, fanout, arrival_seed, salt)
}

/// Hierarchical fold over an explicit group partition: an `intra`-ary
/// tree inside each group (virtual node `i` = the group's `i`-th
/// member, so the group leader `members[0]` is each tree's root), then
/// an `inter`-ary tree over the leader accumulators in group order.
/// The network path's value semantics under `RankOrder` — netsim's
/// property tests diff its protocol against this function with the
/// topology's fabric groups; [`allreduce`] uses the trivial
/// single-group partition.
pub(crate) fn hierarchical_in_memory(
    ranks: &[Vec<f64>],
    groups: &[Vec<usize>],
    intra: usize,
    inter: usize,
    arrival_seed: Option<u64>,
) -> Vec<f64> {
    let m = ranks[0].len();
    let leader_accs: Vec<Vec<f64>> = groups
        .iter()
        .enumerate()
        .map(|(g, members)| {
            tree_fold(
                ranks,
                |i| members[i],
                members.len(),
                0,
                m,
                intra,
                arrival_seed,
                HIER_INTRA_SALT + g as u64,
            )
        })
        .collect();
    tree_fold(&leader_accs, |g| g, groups.len(), 0, m, inter, arrival_seed, HIER_INTER_SALT)
}

/// Ring fold over an explicit rank order: ring position `s` is rank
/// `order[s]`, segment `s` (the `s`-th element block) accumulates
/// around the permuted ring starting at its owner `order[s]`. With the
/// identity order this is bitwise [`ring`] — the netsim property tests
/// diff the network fabric-ring protocol against this function with
/// the topology's fabric order.
pub(crate) fn ring_in_order(ranks: &[Vec<f64>], m: usize, order: &[usize]) -> Vec<f64> {
    let p = ranks.len();
    let seg_len = m.div_ceil(p);
    let mut out = vec![0.0f64; m];
    for s in 0..p {
        let lo = (s * seg_len).min(m);
        let hi = ((s + 1) * seg_len).min(m);
        for i in lo..hi {
            let mut acc = ranks[order[s]][i];
            for step in 1..p {
                acc += ranks[order[(s + step) % p]][i];
            }
            out[i] = acc;
        }
    }
    out
}

/// Double binary tree: the lower half of the payload reduces over a
/// binary tree in identity rank order, the upper half over the
/// complementary tree in mirrored order (`v ↔ p−1−v`), so interior
/// ranks of one tree are leaves of the other and each tree carries
/// half the bytes.
pub(crate) fn double_binary_tree_in_memory(
    ranks: &[Vec<f64>],
    arrival_seed: Option<u64>,
) -> Vec<f64> {
    let p = ranks.len();
    let m = ranks[0].len();
    let h = m.div_ceil(2);
    let mut out = tree_fold(ranks, |v| v, p, 0, h, 2, arrival_seed, DBT_SALT_LOWER);
    out.extend(tree_fold(ranks, |v| p - 1 - v, p, h, m, 2, arrival_seed, DBT_SALT_UPPER));
    out
}

/// Recursive doubling: in round `d`, partners `r` and `r ^ d` exchange
/// and both compute `lower + upper` — symmetric, so every rank holds
/// identical bits at every round.
///
/// Double-buffered: round `d` reads generation `cur` and writes
/// generation `next`, then the two swap — no per-round clone of all
/// `p` rank buffers.
fn recursive_doubling(ranks: &[Vec<f64>], m: usize) -> Vec<f64> {
    let p = ranks.len();
    let mut cur: Vec<Vec<f64>> = ranks.to_vec();
    let mut next: Vec<Vec<f64>> = vec![vec![0.0; m]; p];
    let mut d = 1;
    while d < p {
        for (r, buffer) in next.iter_mut().enumerate() {
            let partner = r ^ d;
            let (lower, upper) = if r < partner { (r, partner) } else { (partner, r) };
            for i in 0..m {
                buffer[i] = cur[lower][i] + cur[upper][i];
            }
        }
        std::mem::swap(&mut cur, &mut next);
        d <<= 1;
    }
    cur.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;
    use fpna_summation::exact::exact_sum;

    fn make_ranks(p: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(seed);
        (0..p)
            .map(|_| (0..m).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
            .collect()
    }

    fn column_exact(ranks: &[Vec<f64>], i: usize) -> f64 {
        exact_sum(&ranks.iter().map(|r| r[i]).collect::<Vec<_>>())
    }

    #[test]
    fn all_variants_compute_the_sum() {
        let ranks = make_ranks(8, 64, 1);
        for (alg, ord) in [
            (Algorithm::Ring, Ordering::RankOrder),
            (Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder),
            (Algorithm::KAryTree { fanout: 4 }, Ordering::ArrivalOrder { seed: 3 }),
            (Algorithm::RecursiveDoubling, Ordering::RankOrder),
            (Algorithm::Ring, Ordering::Reproducible),
            (Algorithm::Hierarchical { intra: 2, inter: 2 }, Ordering::RankOrder),
            (Algorithm::Hierarchical { intra: 4, inter: 2 }, Ordering::ArrivalOrder { seed: 9 }),
            (Algorithm::FabricRing, Ordering::RankOrder),
            (Algorithm::DoubleBinaryTree, Ordering::RankOrder),
            (Algorithm::DoubleBinaryTree, Ordering::ArrivalOrder { seed: 11 }),
        ] {
            let out = allreduce(&ranks, alg, ord);
            for i in [0usize, 17, 63] {
                let want = column_exact(&ranks, i);
                assert!(
                    (out[i] - want).abs() < 1e-6,
                    "{alg:?}/{ord:?} at {i}: {} vs {want}",
                    out[i]
                );
            }
        }
    }

    #[test]
    fn arrival_order_varies_across_runs() {
        let ranks = make_ranks(64, 16, 2);
        let mut bits = std::collections::HashSet::new();
        for run in 0..10 {
            let out = allreduce(
                &ranks,
                Algorithm::KAryTree { fanout: 8 },
                Ordering::ArrivalOrder { seed: 100 + run },
            );
            bits.insert(out.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        }
        assert!(bits.len() > 1, "arrival order should leak into bits");
    }

    #[test]
    fn rank_order_and_ring_and_doubling_are_deterministic() {
        let ranks = make_ranks(16, 32, 3);
        for alg in [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 2 },
            Algorithm::RecursiveDoubling,
            Algorithm::Hierarchical { intra: 2, inter: 3 },
            Algorithm::FabricRing,
            Algorithm::DoubleBinaryTree,
        ] {
            let a = allreduce(&ranks, alg, Ordering::RankOrder);
            let b = allreduce(&ranks, alg, Ordering::RankOrder);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{alg:?}"
            );
        }
    }

    #[test]
    fn different_algorithms_give_different_bits() {
        // The MPI trap: each algorithm deterministic, mutually
        // inconsistent — runtime algorithm selection breaks
        // reproducibility even without timing nondeterminism.
        let ranks = make_ranks(16, 256, 4);
        let ring = allreduce(&ranks, Algorithm::Ring, Ordering::RankOrder);
        let tree = allreduce(&ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder);
        let rd = allreduce(&ranks, Algorithm::RecursiveDoubling, Ordering::RankOrder);
        let differs = |a: &[f64], b: &[f64]| {
            a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
        };
        assert!(differs(&ring, &tree) || differs(&ring, &rd) || differs(&tree, &rd));
    }

    #[test]
    fn reproducible_is_identical_across_everything() {
        let ranks = make_ranks(32, 64, 5);
        let reference = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible);
        for alg in [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 3 },
            Algorithm::RecursiveDoubling,
            Algorithm::Hierarchical { intra: 2, inter: 2 },
            Algorithm::FabricRing,
            Algorithm::DoubleBinaryTree,
        ] {
            let out = allreduce(&ranks, alg, Ordering::Reproducible);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{alg:?} must agree bitwise in reproducible mode"
            );
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let ranks = make_ranks(1, 8, 6);
        let out = allreduce(&ranks, Algorithm::Ring, Ordering::RankOrder);
        assert_eq!(out, ranks[0]);
        let out = allreduce(&ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder);
        assert_eq!(out, ranks[0]);
    }

    #[test]
    fn double_binary_tree_halves_agree_with_the_exact_sum() {
        // Odd length, so the halves are uneven (5 lower, 4 upper), and
        // an odd rank count, so one rank is a leaf in both trees.
        let ranks = make_ranks(9, 9, 8);
        for ord in [Ordering::RankOrder, Ordering::ArrivalOrder { seed: 21 }] {
            let out = allreduce(&ranks, Algorithm::DoubleBinaryTree, ord);
            for (i, &v) in out.iter().enumerate() {
                let want = column_exact(&ranks, i);
                assert!((v - want).abs() < 1e-6, "{ord:?} element {i}: {v} vs {want}");
            }
        }
    }

    #[test]
    fn double_binary_tree_mirrors_the_fold_between_halves() {
        // Under rank order the lower half folds over the identity tree
        // and the upper half over the mirrored one — with the same
        // value in every column of both halves, the bits can only
        // differ between halves if the mirrored fold really runs in
        // the mirrored order.
        let col = make_ranks(7, 1, 12);
        let ranks: Vec<Vec<f64>> = col.iter().map(|r| vec![r[0], r[0]]).collect();
        let out = allreduce(&ranks, Algorithm::DoubleBinaryTree, Ordering::RankOrder);
        let tree = allreduce(&ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder);
        assert_eq!(out[0].to_bits(), tree[0].to_bits(), "lower half is the identity tree");
        assert!((out[0] - out[1]).abs() < 1e-6);
    }

    #[test]
    fn hierarchical_groups_move_bits_but_not_the_sum() {
        let ranks = make_ranks(16, 32, 10);
        let trivial = allreduce(
            &ranks,
            Algorithm::Hierarchical { intra: 2, inter: 2 },
            Ordering::RankOrder,
        );
        let groups: Vec<Vec<usize>> = (0..4).map(|g| (4 * g..4 * g + 4).collect()).collect();
        let grouped = hierarchical_in_memory(&ranks, &groups, 2, 2, None);
        for i in 0..32 {
            let want = column_exact(&ranks, i);
            assert!((trivial[i] - want).abs() < 1e-6);
            assert!((grouped[i] - want).abs() < 1e-6);
        }
        assert!(
            trivial.iter().zip(&grouped).any(|(a, b)| a.to_bits() != b.to_bits()),
            "the group partition should reassociate the fold"
        );
    }

    #[test]
    fn ring_in_order_with_identity_is_the_plain_ring() {
        let ranks = make_ranks(12, 30, 11);
        let plain = allreduce(&ranks, Algorithm::Ring, Ordering::RankOrder);
        let fabric = allreduce(&ranks, Algorithm::FabricRing, Ordering::RankOrder);
        assert_eq!(
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fabric.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // A permuted order still sums every column, rotated start.
        let order: Vec<usize> = (0..12).map(|s| (5 * s) % 12).collect();
        let permuted = ring_in_order(&ranks, 30, &order);
        for (i, &got) in permuted.iter().enumerate() {
            let want = column_exact(&ranks, i);
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn recursive_doubling_needs_pow2() {
        let ranks = make_ranks(6, 4, 7);
        allreduce(&ranks, Algorithm::RecursiveDoubling, Ordering::RankOrder);
    }

    #[test]
    #[should_panic(expected = "equally-shaped")]
    fn mismatched_lengths_panic() {
        allreduce(
            &[vec![1.0], vec![1.0, 2.0]],
            Algorithm::Ring,
            Ordering::RankOrder,
        );
    }
}
