//! # fpna-collectives
//!
//! Simulated multi-node reduction collectives — the paper's concluding
//! future-work item: *"in HPC and distributed settings there will also
//! be inter-chip and inter-node communication, such as with MPI,
//! leading to more runtime variation. On the LPU architecture,
//! inter-chip communication can be software scheduled, removing such
//! communication variations."*
//!
//! An `MPI_Allreduce` combines per-rank vectors with floating-point
//! addition. Implementations differ in *where* and *in which order*
//! partial sums combine:
//!
//! * [`allreduce::Algorithm::Ring`], [`allreduce::Algorithm::KAryTree`]
//!   and [`allreduce::Algorithm::RecursiveDoubling`] — the classic
//!   topologies — plus the NCCL-style pipelined
//!   [`allreduce::Algorithm::SegmentedRing`] /
//!   [`allreduce::Algorithm::SegmentedTree`] variants, which cut the
//!   payload into chunks so serialization overlaps propagation on the
//!   simulated fabric without changing a single output bit relative to
//!   their unsegmented base. With
//!   [`allreduce::Ordering::ArrivalOrder`], each
//!   combine step folds incoming contributions in (simulated seeded)
//!   message-arrival order — the MPI reality on a busy fabric, and a
//!   source of run-to-run variability *on top of* the intra-node FPNA
//!   studied in the paper's main sections;
//! * [`allreduce::Ordering::RankOrder`] — arrivals are buffered and
//!   combined in rank order: deterministic for a fixed topology (the
//!   "software-scheduled interconnect" of the LPU multiprocessor);
//! * [`allreduce::Ordering::Reproducible`] — exact accumulators travel
//!   with the messages, so the result is bitwise identical across
//!   *every* algorithm, topology and schedule.
//!
//! Two execution paths provide those semantics:
//!
//! * [`allreduce()`](allreduce::allreduce) — the cheap in-memory fallback; `ArrivalOrder` is
//!   approximated by a per-node seeded shuffle (no network model);
//! * [`netsim::allreduce_on`] — the same algorithms run as
//!   event-driven protocols on an [`fpna_net`] fabric (flat switch,
//!   fat tree, or hierarchical node/NIC/switch), where arrival order
//!   *emerges from simulated message timing* and every run also
//!   reports its simulated cost. Zero jitter models the
//!   software-scheduled interconnect; the reproducible ordering ships
//!   exact accumulators and pays a modeled bandwidth overhead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allreduce;
pub mod netsim;

pub use allreduce::{allreduce, Algorithm, Ordering};
pub use netsim::{allreduce_on, NetAllreduce, NetConfig, MAX_SEGMENTS};
