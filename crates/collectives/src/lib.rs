//! # fpna-collectives
//!
//! Simulated multi-node reduction collectives — the paper's concluding
//! future-work item: *"in HPC and distributed settings there will also
//! be inter-chip and inter-node communication, such as with MPI,
//! leading to more runtime variation. On the LPU architecture,
//! inter-chip communication can be software scheduled, removing such
//! communication variations."*
//!
//! An `MPI_Allreduce` combines per-rank vectors with floating-point
//! addition. Implementations differ in *where* and *in which order*
//! partial sums combine:
//!
//! * [`allreduce::Algorithm::Ring`], [`allreduce::Algorithm::KAryTree`]
//!   and [`allreduce::Algorithm::RecursiveDoubling`] — the classic
//!   topologies. With [`allreduce::Ordering::ArrivalOrder`], each
//!   combine step folds incoming contributions in (simulated seeded)
//!   message-arrival order — the MPI reality on a busy fabric, and a
//!   source of run-to-run variability *on top of* the intra-node FPNA
//!   studied in the paper's main sections;
//! * [`allreduce::Ordering::RankOrder`] — arrivals are buffered and
//!   combined in rank order: deterministic for a fixed topology (the
//!   "software-scheduled interconnect" of the LPU multiprocessor);
//! * [`allreduce::Ordering::Reproducible`] — exact accumulators travel
//!   with the messages, so the result is bitwise identical across
//!   *every* algorithm, topology and schedule.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allreduce;

pub use allreduce::{allreduce, Algorithm, Ordering};
