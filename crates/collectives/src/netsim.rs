//! Timing-driven allreduce over a simulated interconnect.
//!
//! [`allreduce_on`] executes the same algorithms as
//! [`crate::allreduce()`](crate::allreduce::allreduce) — ring, k-ary tree, recursive doubling,
//! plus the segmented (pipelined) ring/tree variants — but as
//! *event-driven protocols* on an [`fpna_net`] fabric. Combine
//! order is no longer injected by a seeded shuffle; it **emerges from
//! message timing**:
//!
//! * [`Ordering::ArrivalOrder`] — links carry seeded jitter (the seed
//!   drives the [`fpna_net::JitterModel`]); each tree node folds child
//!   contributions in the order their messages actually land. This is
//!   MPI on a busy fabric. Ring and recursive doubling have a fixed
//!   combine order by construction, so only their *timing* varies —
//!   exactly the real-world split the paper describes.
//! * [`Ordering::RankOrder`] — the software-scheduled interconnect:
//!   zero jitter and rank-ordered folds. Bit-for-bit replayable,
//!   including every timestamp.
//! * [`Ordering::Reproducible`] — exact accumulators travel **in the
//!   messages** (span-encoded: [`ExactAccumulator::wire_len`] per
//!   element, bounded above by [`ExactAccumulator::WIRE_BYTES`] + 2,
//!   instead of 8), the fabric stays jittered, and one final rounding
//!   happens at the reduction root (tree/recursive doubling) or
//!   segment owner (ring). Bits are identical across every topology,
//!   algorithm, jitter seed **and segment count**; the bandwidth
//!   inflation is the network's "cost of reproducibility" — priced at
//!   the actual encoded payload.
//!
//! ## Segmentation (NCCL-style pipelining)
//!
//! [`Algorithm::SegmentedRing`] and [`Algorithm::SegmentedTree`] cut
//! the payload into `k` chunks that travel as independent messages, so
//! serialization of chunk `i+1` overlaps propagation of chunk `i` and
//! the bandwidth term pipelines across hops. Chunking never changes
//! *which* values combine in *which* order per element — each element
//! lives in exactly one chunk and follows the same ring rotation /
//! tree fold as the unsegmented protocol — so segmentation is a pure
//! timing knob: values are bitwise identical to the unsegmented
//! algorithm at every chunk count (the property tests pin this).
//!
//! ## Allocation discipline
//!
//! The hot path allocates only at protocol start-up: in-flight payload
//! buffers are *moved* into a dense message-id slab (never cloned —
//! the one genuine copy, recursive doubling's keep-and-send, goes
//! through a recycling buffer pool), a rank's own contribution is
//! folded straight from its input slice instead of materialising a
//! temporary buffer, and delivered buffers return to the pool.
//!
//! The cheap shuffle-based path in [`crate::allreduce()`](crate::allreduce::allreduce) remains as a
//! fallback for experiments that don't need a network model.

use crate::allreduce::{Algorithm, Ordering};
use fpna_net::{
    Background, Delivery, FabricConfig, JitterModel, LinkStats, NetSim, RouteSelect, RunStats,
    Topology,
};
use fpna_obs::counters::{self, Counter};
use fpna_obs::trace;
use fpna_summation::exact::ExactAccumulator;

/// Fabric-behaviour knobs shared by every ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-hop jitter amplitude as a fraction of the hop's
    /// deterministic service time — serialization plus latency
    /// (applies to `ArrivalOrder` and `Reproducible`; `RankOrder`
    /// always runs jitter-free).
    pub jitter_frac: f64,
    /// Jitter seed used when the ordering does not carry one
    /// (`Reproducible`): "what the fabric did this run".
    pub jitter_seed: u64,
    /// Deterministic injection skew: rank `r` enters the collective at
    /// `r · stagger_ns` — ranks never hit a collective simultaneously
    /// in practice (kernel-completion skew is typically sub-µs to µs
    /// scale). Arrival order flips only where accumulated path jitter
    /// beats this spacing, which is how variability comes to grow with
    /// fabric depth.
    pub stagger_ns: f64,
    /// Offered load of the seeded background tenants sharing the
    /// fabric ([`fpna_net::Background`]): `0.0` (the default) is a
    /// quiet fabric, bit-identical to the pre-contention engine.
    pub load: f64,
    /// Seed of the background tenants' schedule: "what the other jobs
    /// did this run". Applies to every ordering — contention reorders
    /// arrivals through link queueing, not through jitter.
    pub bg_seed: u64,
    /// Route selection among equal-cost paths
    /// ([`fpna_net::RouteSelect`]): `Fixed` (the default) or seeded
    /// ECMP on a multi-spine fabric.
    pub route: RouteSelect,
    /// Copy the engine's per-link contention counters into
    /// [`NetAllreduce::link_stats`] when the protocol finishes (one
    /// `LinkStats` per directed link id). Off by default: the copy is
    /// one allocation per collective, which the allocation-free
    /// discipline only pays when asked (`table9 --link-stats`).
    pub collect_link_stats: bool,
    /// NIC small-message coalescing threshold in bytes; `0` (the
    /// default) disables it. When set, logical sends at the same
    /// simulated instant from the same rank to the same destination
    /// whose payload is at or below the threshold share one wire
    /// message: one per-message latency α, summed serialization β.
    /// This is what real NICs/NCCL do to amortize per-message cost
    /// over heavily-segmented small chunks. Deterministic by
    /// construction — batching keys on exact `(time, from, to)` and
    /// sub-messages expand at delivery in injection order — and
    /// value-invisible wherever the combine order is: the ring and
    /// recursive doubling (order fixed by construction, every
    /// ordering), and the tree under `RankOrder`/`Reproducible`.
    /// The tree under `ArrivalOrder` folds in physical arrival order,
    /// which coalescing would perturb, so it ignores the threshold.
    pub coalesce_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            jitter_frac: 0.3,
            jitter_seed: 0,
            stagger_ns: 500.0,
            load: 0.0,
            bg_seed: 0,
            route: RouteSelect::Fixed,
            collect_link_stats: false,
            coalesce_bytes: 0,
        }
    }
}

impl NetConfig {
    /// This configuration with a different jitter seed — the per-run
    /// rekeying used by seed sweeps over `Reproducible`.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// This configuration with background tenants at offered load
    /// `load`, scheduled by `bg_seed`.
    pub fn with_load(mut self, load: f64, bg_seed: u64) -> Self {
        self.load = load;
        self.bg_seed = bg_seed;
        self
    }

    /// This configuration with a different route-selection policy.
    pub fn with_route(mut self, route: RouteSelect) -> Self {
        self.route = route;
        self
    }

    /// This configuration with per-link contention counters copied
    /// into [`NetAllreduce::link_stats`].
    pub fn with_link_stats(mut self, on: bool) -> Self {
        self.collect_link_stats = on;
        self
    }

    /// This configuration with NIC small-message coalescing at the
    /// given byte threshold (`0` disables).
    pub fn with_coalesce(mut self, threshold_bytes: u64) -> Self {
        self.coalesce_bytes = threshold_bytes;
        self
    }

    /// The [`FabricConfig`] this configuration induces.
    fn fabric(&self) -> FabricConfig {
        FabricConfig {
            route_select: self.route,
            background: if self.load > 0.0 {
                Background::with_load(self.load, self.bg_seed)
            } else {
                Background::off()
            },
        }
    }
}

/// Engine construction shared by every protocol leg: jitter from the
/// ordering, contention/routing from the config.
fn build_sim<'t>(topo: &'t Topology, jitter: JitterModel, config: &NetConfig) -> NetSim<'t> {
    NetSim::with_fabric(topo, jitter, config.fabric())
}

/// Result of one simulated allreduce.
#[derive(Debug, Clone)]
pub struct NetAllreduce {
    /// The reduced vector (identical on every rank).
    pub values: Vec<f64>,
    /// Simulated time until the last rank held the result, in ns.
    pub elapsed_ns: f64,
    /// Engine statistics (messages, bytes, hops, makespan).
    pub stats: RunStats,
    /// Per-directed-link contention counters, indexed by link id —
    /// populated only under [`NetConfig::collect_link_stats`]
    /// (`None` otherwise, including the trivial single-rank path).
    pub link_stats: Option<Vec<LinkStats>>,
}

/// Per-link counter copy for [`NetAllreduce::link_stats`]; `None`
/// unless the config asked for it.
fn collect_link_stats(sim: &NetSim<'_>, config: &NetConfig) -> Option<Vec<LinkStats>> {
    config
        .collect_link_stats
        .then(|| (0..sim.topology().num_links()).map(|l| sim.link_stats(l)).collect())
}

/// Reduction state: plain floats, or exact accumulators for the
/// reproducible ordering.
#[derive(Debug, Clone)]
enum Values {
    Plain(Vec<f64>),
    Exact(Vec<ExactAccumulator>),
}

impl Values {
    /// A placeholder carrying no buffer — what `take` leaves behind.
    fn empty() -> Self {
        Values::Plain(Vec::new())
    }

    /// Fold `rhs` into `self` as `self[i] = self[i] + rhs[i]` — the
    /// left operand is the accumulator that has been travelling.
    fn fold_in(&mut self, rhs: &Values) {
        match (self, rhs) {
            (Values::Plain(a), Values::Plain(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (Values::Exact(a), Values::Exact(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                    // Restore canonical wire form so the next hop's
                    // merge stays on the fast path.
                    x.normalize();
                }
            }
            _ => unreachable!("mixed plain/exact fold"),
        }
    }

    /// Fold a rank's resident contribution straight from its input
    /// slice: `self[i] = self[i] + xs[i]`, with no temporary buffer.
    /// Bitwise identical to folding a freshly built `Values` over
    /// `xs`: the exact accumulator's canonical form is a pure function
    /// of the accumulated value, so `add` + `normalize` lands in the
    /// same state as merging a one-element accumulator.
    fn fold_in_slice(&mut self, xs: &[f64]) {
        match self {
            Values::Plain(a) => {
                for (x, y) in a.iter_mut().zip(xs) {
                    *x += y;
                }
            }
            Values::Exact(a) => {
                for (x, &y) in a.iter_mut().zip(xs) {
                    x.add(y);
                    x.normalize();
                }
            }
        }
    }

    fn round(&self) -> Vec<f64> {
        match self {
            Values::Plain(v) => v.clone(),
            Values::Exact(a) => a.iter().map(|x| x.round()).collect(),
        }
    }

    /// On-wire size of a message carrying this state. Exact
    /// accumulators are span-encoded ([`ExactAccumulator::wire_len`]:
    /// a 2-byte `[lo, hi)` header plus the occupied limbs, per
    /// element), so narrow-dynamic-range payloads cost what they
    /// actually occupy instead of the dense
    /// [`ExactAccumulator::WIRE_BYTES`] upper bound. Every travelling
    /// accumulator is kept canonical (normalized at birth and after
    /// each fold), which keeps the spans — and therefore the priced
    /// bytes — tight.
    fn wire_bytes(&self) -> u64 {
        match self {
            Values::Plain(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            Values::Exact(a) => a.iter().map(|x| x.wire_len() as u64).sum(),
        }
    }
}

/// Recycles the backing buffers of retired [`Values`] so steady-state
/// protocol rounds stop hitting the allocator: a freed buffer keeps
/// its capacity and the next `from_slice`/`clone_values` reuses it.
#[derive(Debug, Default)]
struct BufferPool {
    plain: Vec<Vec<f64>>,
    exact: Vec<Vec<ExactAccumulator>>,
}

/// Pop a pooled buffer, tallying the recycle hit/miss counters (a
/// relaxed-load no-op when counters are disabled).
fn pooled<T>(stack: &mut Vec<Vec<T>>) -> Vec<T> {
    match stack.pop() {
        Some(b) => {
            counters::add(Counter::PoolHit, 1);
            b
        }
        None => {
            counters::add(Counter::PoolMiss, 1);
            Vec::new()
        }
    }
}

impl BufferPool {
    /// Build a `Values` over `xs` (exact accumulators canonical from
    /// birth, so every downstream merge takes the no-clone fast path),
    /// reusing a pooled buffer when one is free.
    fn values_of(&mut self, xs: &[f64], exact: bool) -> Values {
        if exact {
            let mut a = pooled(&mut self.exact);
            a.clear();
            a.extend(xs.iter().map(|&x| {
                let mut acc = ExactAccumulator::new();
                acc.add(x);
                acc.normalize();
                acc
            }));
            Values::Exact(a)
        } else {
            let mut v = pooled(&mut self.plain);
            v.clear();
            v.extend_from_slice(xs);
            Values::Plain(v)
        }
    }

    /// A copy of `src` in a pooled buffer — the keep-and-send case
    /// (recursive doubling), where both the resident state and the
    /// wire message need the bytes.
    fn clone_values(&mut self, src: &Values) -> Values {
        match src {
            Values::Plain(v) => {
                let mut out = pooled(&mut self.plain);
                out.clone_from(v);
                Values::Plain(out)
            }
            Values::Exact(a) => {
                let mut out = pooled(&mut self.exact);
                out.clone_from(a);
                Values::Exact(out)
            }
        }
    }

    /// Return a retired buffer to the pool.
    fn recycle(&mut self, v: Values) {
        match v {
            Values::Plain(p) => self.plain.push(p),
            Values::Exact(e) => self.exact.push(e),
        }
    }
}

/// In-flight payloads keyed by engine message id. Ids are dense and
/// injection-ordered, so an indexed slot per message replaces the old
/// per-message `HashMap` insert/remove (the hashing half of the
/// engine's former per-event overhead). The slots live in a sliding
/// window: taking a payload retires the dead prefix, so memory tracks
/// the in-flight span rather than every message the run ever injected
/// (which segmentation multiplies 8–32×).
#[derive(Debug, Default)]
struct Payloads {
    /// Id of the first slot in `slots`; every id below it has already
    /// been taken (or never carried a payload).
    base: u64,
    slots: std::collections::VecDeque<Option<Values>>,
}

impl Payloads {
    fn insert(&mut self, msg: u64, v: Values) {
        // Ids are injection-ordered, so a fresh insert is always at or
        // past `base`.
        let i = (msg - self.base) as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(v);
    }

    fn take(&mut self, msg: u64) -> Option<Values> {
        let i = msg.checked_sub(self.base)? as usize;
        let v = self.slots.get_mut(i).and_then(Option::take);
        // Retire the drained prefix (each slot is popped exactly once,
        // so this is amortized O(1) per message).
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        v
    }
}

/// Wire-message tag marking a coalesced batch. Real protocol tags
/// never reach this value (tree tags are small, ring tags stay below
/// `TAG_AG_BASE + 2^32`), and [`Nic::send_at`] asserts it.
const COALESCE_TAG: u64 = u64::MAX;

/// One logical send riding inside a coalesced wire message.
#[derive(Debug, Clone, Copy)]
struct SubMsg {
    /// Virtual (logical) message id — what the payload slab is keyed
    /// by and what the protocol sees at delivery.
    virt: u64,
    bytes: u64,
    tag: u64,
}

/// What a wire message id expands to at delivery.
#[derive(Debug)]
enum WireKind {
    /// An uncoalesced send: just remap the engine id to its virtual id.
    Direct(u64),
    /// A coalesced batch: expand into sub-deliveries in injection order.
    Batch(Vec<SubMsg>),
}

/// The simulated NIC's small-message coalescing stage.
///
/// Protocols route every send through [`Nic::send_at`] and expand
/// every delivery through [`Nic::expand`]. Logical sends at the same
/// simulated instant, from the same rank, to the same destination,
/// at or below the threshold, are merged into one wire message whose
/// payload is the byte sum — one per-message α, summed β — and whose
/// deliveries are replayed to the protocol in injection order at the
/// wire message's arrival time. Batches are flushed deterministically:
/// a send at a different instant, any send above the threshold, and
/// the end of every injection burst ([`Nic::flush`]) all drain the
/// open batches in first-send order, so the wire schedule is a pure
/// function of the logical send sequence.
///
/// Every send — coalesced or not — gets a dense injection-ordered
/// *virtual* id, so [`Payloads`]' sliding-window slab keeps working
/// unchanged on top. With a threshold of 0 the NIC is a strict
/// pass-through: virtual ids equal engine ids and no bookkeeping runs.
#[derive(Debug, Default)]
struct Nic {
    /// Coalescing threshold in bytes; 0 = pass-through.
    threshold: u64,
    /// Next virtual message id (dense, injection-ordered).
    next_virt: u64,
    /// Instant the open batches belong to (NaN when none are open, so
    /// the first send always misses the equality check and re-anchors).
    pend_time: f64,
    /// Open batches in first-send order: `(from, to, sub-messages)`.
    pend: Vec<(usize, usize, Vec<SubMsg>)>,
    /// Engine wire-message id → delivery expansion.
    wire: std::collections::HashMap<u64, WireKind>,
}

impl Nic {
    fn new(threshold: u64) -> Self {
        Nic {
            threshold,
            pend_time: f64::NAN,
            ..Nic::default()
        }
    }

    /// Send (or batch) one logical message; returns its virtual id.
    fn send_at(
        &mut self,
        sim: &mut NetSim<'_>,
        at: f64,
        from: usize,
        to: usize,
        bytes: u64,
        tag: u64,
    ) -> u64 {
        if self.threshold == 0 {
            return sim.send_at(at, from, to, bytes, tag);
        }
        assert!(tag != COALESCE_TAG, "protocol tag collides with the coalesce sentinel");
        if at != self.pend_time {
            self.flush(sim);
            self.pend_time = at;
        }
        let virt = self.next_virt;
        self.next_virt += 1;
        if bytes > self.threshold {
            // Large message: drain the open batches first so the wire
            // injection order tracks the logical send order, then send
            // it as its own wire message.
            self.flush(sim);
            self.pend_time = at;
            let w = sim.send_at(at, from, to, bytes, tag);
            self.wire.insert(w, WireKind::Direct(virt));
            return virt;
        }
        let sub = SubMsg { virt, bytes, tag };
        match self.pend.iter_mut().find(|(f, t, _)| *f == from && *t == to) {
            Some((_, _, subs)) => subs.push(sub),
            None => self.pend.push((from, to, vec![sub])),
        }
        virt
    }

    /// Drain every open batch onto the wire, in first-send order.
    /// Called at the end of each injection burst (and implicitly when
    /// a send can't join the open batches); must run before the engine
    /// advances past the batch instant.
    fn flush(&mut self, sim: &mut NetSim<'_>) {
        for (from, to, subs) in self.pend.drain(..) {
            if let [s] = subs[..] {
                let w = sim.send_at(self.pend_time, from, to, s.bytes, s.tag);
                self.wire.insert(w, WireKind::Direct(s.virt));
            } else {
                let bytes: u64 = subs.iter().map(|s| s.bytes).sum();
                counters::add(Counter::CoalescedMsgs, subs.len() as u64 - 1);
                counters::add(Counter::CoalescedBytesSaved, bytes - subs[0].bytes);
                let w = sim.send_at(self.pend_time, from, to, bytes, COALESCE_TAG);
                self.wire.insert(w, WireKind::Batch(subs));
            }
        }
    }

    /// Expand a wire delivery into its logical sub-deliveries, in
    /// injection order, all at the wire message's arrival time.
    fn expand(&mut self, d: &Delivery) -> SubDeliveries {
        if self.threshold == 0 {
            return SubDeliveries { base: *d, subs: None, i: 0 };
        }
        match self.wire.remove(&d.msg).expect("wire message with no NIC record") {
            WireKind::Direct(virt) => SubDeliveries {
                base: Delivery { msg: virt, ..*d },
                subs: None,
                i: 0,
            },
            WireKind::Batch(subs) => {
                debug_assert_eq!(d.tag, COALESCE_TAG);
                SubDeliveries { base: *d, subs: Some(subs), i: 0 }
            }
        }
    }
}

/// Owning iterator over the logical deliveries of one wire message —
/// owns its sub-message list so the [`Nic`] stays free for the sends
/// the protocol makes while handling each sub-delivery.
struct SubDeliveries {
    base: Delivery,
    subs: Option<Vec<SubMsg>>,
    i: usize,
}

impl Iterator for SubDeliveries {
    type Item = Delivery;

    fn next(&mut self) -> Option<Delivery> {
        match &self.subs {
            None => (self.i == 0).then(|| {
                self.i = 1;
                self.base
            }),
            Some(subs) => {
                let s = subs.get(self.i)?;
                self.i += 1;
                Some(Delivery {
                    msg: s.virt,
                    bytes: s.bytes,
                    tag: s.tag,
                    ..self.base
                })
            }
        }
    }
}

fn jitter_for(ordering: Ordering, config: &NetConfig) -> JitterModel {
    match ordering {
        Ordering::ArrivalOrder { seed } => JitterModel::uniform(config.jitter_frac, seed),
        Ordering::RankOrder => JitterModel::none(),
        Ordering::Reproducible => JitterModel::uniform(config.jitter_frac, config.jitter_seed),
    }
}

/// Largest supported segment (chunk) count — bounded by the ring's
/// tag packing (chunk id and step share the 32-bit tag space below
/// the allgather tag base).
pub const MAX_SEGMENTS: usize = 1 << 12;

/// Allreduce (sum) executed as an event-driven protocol on `topo`.
/// Returns the reduced vector plus simulated cost. The value
/// semantics match [`crate::allreduce()`](crate::allreduce::allreduce): with zero jitter and
/// rank-ordered folds the bits are identical to the in-memory path,
/// and the segmented variants are bitwise identical to their
/// unsegmented bases at every segment count.
///
/// # Panics
///
/// Panics on empty input, mismatched vector lengths, a rank count
/// different from `topo.ranks()`, fanout < 2, a segment count of 0 or
/// above [`MAX_SEGMENTS`], or a non-power-of-two rank count for
/// recursive doubling.
pub fn allreduce_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    algorithm: Algorithm,
    ordering: Ordering,
    config: &NetConfig,
) -> NetAllreduce {
    assert!(!ranks.is_empty(), "allreduce needs at least one rank");
    assert_eq!(
        topo.ranks(),
        ranks.len(),
        "topology has {} ranks but {} vectors were supplied",
        topo.ranks(),
        ranks.len()
    );
    let m = ranks[0].len();
    assert!(
        ranks.iter().all(|v| v.len() == m),
        "all ranks must contribute equally-shaped vectors"
    );
    let check_segments = |segments: usize| {
        assert!(
            (1..=MAX_SEGMENTS).contains(&segments),
            "segment count must be in 1..={MAX_SEGMENTS}, got {segments}"
        );
    };
    let jitter = jitter_for(ordering, config);
    let identity: Vec<usize> = (0..ranks.len()).collect();
    match algorithm {
        Algorithm::Ring => ring_on(topo, ranks, 1, ordering, config, jitter, &identity),
        Algorithm::SegmentedRing { segments } => {
            check_segments(segments);
            ring_on(topo, ranks, segments, ordering, config, jitter, &identity)
        }
        Algorithm::KAryTree { fanout } => {
            assert!(fanout >= 2, "tree fanout must be at least 2");
            tree_on(topo, ranks, fanout, 1, ordering, config, jitter)
        }
        Algorithm::SegmentedTree { fanout, segments } => {
            assert!(fanout >= 2, "tree fanout must be at least 2");
            check_segments(segments);
            tree_on(topo, ranks, fanout, segments, ordering, config, jitter)
        }
        Algorithm::RecursiveDoubling => {
            assert!(
                ranks.len().is_power_of_two(),
                "recursive doubling needs a power-of-two rank count"
            );
            recursive_doubling_on(topo, ranks, ordering, config, jitter)
        }
        Algorithm::Hierarchical { intra, inter } => {
            assert!(intra >= 2 && inter >= 2, "tree fanout must be at least 2");
            hierarchical_on(topo, ranks, intra, inter, ordering, config, jitter)
        }
        Algorithm::FabricRing => {
            let order = topo.fabric_ring_order();
            ring_on(topo, ranks, 1, ordering, config, jitter, &order)
        }
        Algorithm::DoubleBinaryTree => {
            double_binary_tree_on(topo, ranks, ordering, config, jitter)
        }
    }
}

/// Tree tags: `(chunk << 1) | direction`.
const TAG_UP: u64 = 0;
const TAG_DOWN: u64 = 1;
/// Ring reduce-scatter tags are `(chunk << RING_CHUNK_SHIFT) | step`;
/// allgather tags add [`TAG_AG_BASE`] and carry the segment owner in
/// the step bits.
const RING_CHUNK_SHIFT: u64 = 20;
const TAG_AG_BASE: u64 = 1 << 32;

/// Boundaries of chunk `c` (of `k`) inside the index range `lo..hi`.
fn chunk_bounds(lo: usize, hi: usize, k: usize, c: usize) -> (usize, usize) {
    let n = hi - lo;
    let per = n.div_ceil(k);
    (lo + (c * per).min(n), lo + ((c + 1) * per).min(n))
}

/// Wire size of a raw input slice without building a buffer — the
/// exact path prices the same canonical one-value accumulators the
/// receiver will fold.
fn raw_wire_bytes(xs: &[f64], exact: bool) -> u64 {
    if exact {
        xs.iter()
            .map(|&x| {
                let mut acc = ExactAccumulator::new();
                acc.add(x);
                acc.normalize();
                acc.wire_len() as u64
            })
            .sum()
    } else {
        std::mem::size_of_val(xs) as u64
    }
}

/// K-ary reduction tree rooted at rank 0 (children of `v` are
/// `f·v + 1 ..= f·v + f`), then a broadcast of the rounded result down
/// the same tree. Fold order at each node: own buffer first, then
/// children — in simulated-arrival order, or buffered into rank order.
///
/// With `segments > 1` the payload is cut into that many chunks, each
/// reduced and broadcast through the same tree as an independent
/// message stream; per element the fold order is unchanged, so values
/// are bitwise those of the unsegmented tree (per ordering), while
/// chunk `i+1` serializes behind chunk `i` and the levels pipeline.
fn tree_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    fanout: usize,
    segments: usize,
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let k = segments;
    let exact = matches!(ordering, Ordering::Reproducible);
    let rank_order = matches!(ordering, Ordering::RankOrder);
    let parent = |v: usize| (v - 1) / fanout;
    let children = |v: usize| (1..=fanout).map(move |c| fanout * v + c).filter(move |&c| c < p);

    let mut pool = BufferPool::default();
    let is_leaf = |v: usize| fanout * v + 1 >= p;
    // A leaf's up-message is exactly its input slice: the parent folds
    // straight from `ranks[leaf]`, so leaves never materialise a
    // buffer — only internal nodes (which accumulate) do.
    struct Node {
        /// Per-chunk accumulator state (internal nodes only).
        accs: Vec<Values>,
        /// Per-chunk count of children still owing a contribution.
        pending: Vec<usize>,
        /// Per-chunk buffered child contributions (rank-order mode):
        /// the child rank, plus its payload for internal children
        /// (`None` marks a leaf child, folded from its input slice).
        buffered: Vec<Vec<(usize, Option<Values>)>>,
    }
    let mut nodes: Vec<Node> = (0..p)
        .map(|v| Node {
            accs: if is_leaf(v) && v != 0 {
                Vec::new()
            } else {
                (0..k)
                    .map(|c| {
                        let (lo, hi) = chunk_bounds(0, m, k, c);
                        pool.values_of(&ranks[v][lo..hi], exact)
                    })
                    .collect()
            },
            pending: vec![children(v).count(); k],
            buffered: (0..k).map(|_| Vec::new()).collect(),
        })
        .collect();

    if p == 1 {
        let values = nodes[0]
            .accs
            .iter()
            .flat_map(|acc| acc.round())
            .collect();
        return NetAllreduce {
            values,
            elapsed_ns: 0.0,
            stats: RunStats::default(),
            link_stats: None,
        };
    }

    let mut sim = build_sim(topo, jitter, config);
    let mut payloads = Payloads::default();
    // The tree under `ArrivalOrder` folds children in physical arrival
    // order, which coalescing would perturb — it ignores the threshold
    // (see [`NetConfig::coalesce_bytes`]). `RankOrder` buffers into a
    // deterministic order and `Reproducible` is order-blind, so both
    // coalesce freely.
    let mut nic = Nic::new(if matches!(ordering, Ordering::ArrivalOrder { .. }) {
        0
    } else {
        config.coalesce_bytes
    });
    let tracing = trace::enabled();
    let pid = trace::current_pid();
    // Per-chunk protocol spans: B when the protocol opens the chunk
    // (t = 0), E once its broadcast has reached every non-root rank —
    // so pipelining across chunks is visible as overlapping spans.
    let mut chunk_down_pending: Vec<usize> = Vec::new();
    if tracing {
        chunk_down_pending = vec![p - 1; k];
        for c in 0..k {
            let lane = trace::CHUNK_TID_BASE + c as u64;
            trace::name_thread(pid, lane, format!("chunk {c}"));
            trace::begin(pid, lane, 0.0, format!("chunk{c}"), "coll");
        }
    }
    // Leaves inject their contribution at their staggered start time,
    // chunks back to back (equal timestamps resolve by injection
    // order, so chunk 0 hits the first link first and the rest
    // pipeline behind it — or, under coalescing, share one wire
    // message per leaf).
    for (v, own) in ranks.iter().enumerate().skip(1) {
        if is_leaf(v) {
            for c in 0..k {
                let (lo, hi) = chunk_bounds(0, m, k, c);
                let bytes = raw_wire_bytes(&own[lo..hi], exact);
                let tag = ((c as u64) << 1) | TAG_UP;
                nic.send_at(&mut sim, config.stagger_ns * v as f64, v, parent(v), bytes, tag);
            }
        }
    }
    nic.flush(&mut sim);

    let mut result = vec![0.0f64; m];
    let mut root_chunks_done = 0usize;
    let mut elapsed = 0.0f64;
    let stats = sim.run(|sim, wire| {
        for d in nic.expand(&wire) {
        let c = (d.tag >> 1) as usize;
        match d.tag & 1 {
            TAG_UP => {
                let v = d.to;
                let (lo, hi) = chunk_bounds(0, m, k, c);
                let payload = if is_leaf(d.from) {
                    None
                } else {
                    Some(payloads.take(d.msg).expect("up message lost its payload"))
                };
                if rank_order {
                    nodes[v].buffered[c].push((d.from, payload));
                } else {
                    if tracing {
                        trace::instant(
                            pid,
                            trace::RANK_TID_BASE + v as u64,
                            d.time,
                            "combine",
                            "coll",
                            vec![("chunk", c.into()), ("child", d.from.into())],
                        );
                    }
                    match payload {
                        Some(b) => {
                            nodes[v].accs[c].fold_in(&b);
                            pool.recycle(b);
                        }
                        None => nodes[v].accs[c].fold_in_slice(&ranks[d.from][lo..hi]),
                    }
                }
                nodes[v].pending[c] -= 1;
                if nodes[v].pending[c] == 0 {
                    if rank_order {
                        let mut buffered = std::mem::take(&mut nodes[v].buffered[c]);
                        buffered.sort_by_key(|&(child, _)| child);
                        for (child, b) in buffered {
                            if tracing {
                                trace::instant(
                                    pid,
                                    trace::RANK_TID_BASE + v as u64,
                                    d.time,
                                    "combine",
                                    "coll",
                                    vec![("chunk", c.into()), ("child", child.into())],
                                );
                            }
                            match b {
                                Some(b) => {
                                    nodes[v].accs[c].fold_in(&b);
                                    pool.recycle(b);
                                }
                                None => nodes[v].accs[c].fold_in_slice(&ranks[child][lo..hi]),
                            }
                        }
                    }
                    if v == 0 {
                        // Root: one final rounding of this chunk, then
                        // broadcast its f64s.
                        result[lo..hi].copy_from_slice(&nodes[0].accs[c].round());
                        root_chunks_done += 1;
                        elapsed = elapsed.max(d.time);
                        for child in children(0) {
                            let tag = ((c as u64) << 1) | TAG_DOWN;
                            nic.send_at(sim, d.time, 0, child, ((hi - lo) * 8) as u64, tag);
                        }
                    } else {
                        let acc = std::mem::replace(&mut nodes[v].accs[c], Values::empty());
                        let bytes = acc.wire_bytes();
                        let tag = ((c as u64) << 1) | TAG_UP;
                        let msg = nic.send_at(sim, d.time, v, parent(v), bytes, tag);
                        payloads.insert(msg, acc);
                    }
                }
            }
            _ => {
                let v = d.to;
                elapsed = elapsed.max(d.time);
                if tracing {
                    chunk_down_pending[c] -= 1;
                    if chunk_down_pending[c] == 0 {
                        let lane = trace::CHUNK_TID_BASE + c as u64;
                        trace::end(pid, lane, d.time, format!("chunk{c}"), "coll");
                    }
                }
                for child in children(v) {
                    nic.send_at(sim, d.time, v, child, d.bytes, d.tag);
                }
            }
        }
        }
        nic.flush(sim);
    });

    assert_eq!(root_chunks_done, k, "tree reduction never completed");
    NetAllreduce {
        values: result,
        elapsed_ns: elapsed,
        stats,
        link_stats: collect_link_stats(&sim, config),
    }
}

/// Ring reduce-scatter + allgather. Segment `s` starts at its owner
/// rank `s` and walks the ring; each hop computes
/// `incoming + own_contribution`, so the combine order is fixed by the
/// rotation and timing only moves the clock, never the bits. The
/// fully-reduced segment is rounded once (at rank `s − 1 mod p`) and
/// allgathered as plain `f64`s.
///
/// With `segments > 1` each rank-segment is further cut into that many
/// chunks walking the ring as independent messages — same rotation,
/// same per-element combine order, so values are bitwise identical to
/// the unsegmented ring while serialization pipelines across hops.
///
/// `order` permutes the ring onto the ranks: ring position `s` is rank
/// `order[s]`, segment `s` starts at its owner `order[s]` and hops to
/// `order[(s + 1) % p]`. The identity order is the classic
/// rank-numbered ring; [`Topology::fabric_ring_order`] keeps
/// consecutive positions inside the same fabric group so the rotation
/// crosses the NIC/spine only once per group.
fn ring_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    segments: usize,
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
    order: &[usize],
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let k = segments;
    let exact = matches!(ordering, Ordering::Reproducible);
    assert!(p < (1 << RING_CHUNK_SHIFT), "ring tag packing supports < 2^20 ranks");
    assert_eq!(order.len(), p, "ring order must cover every rank");
    let pos_of = {
        let mut pos = vec![0usize; p];
        for (s, &r) in order.iter().enumerate() {
            pos[r] = s;
        }
        pos
    };
    let seg_len = m.div_ceil(p);
    let bounds = |s: usize| ((s * seg_len).min(m), ((s + 1) * seg_len).min(m));
    let chunk_of = |s: usize, c: usize| {
        let (lo, hi) = bounds(s);
        chunk_bounds(lo, hi, k, c)
    };

    let mut pool = BufferPool::default();
    let mut out = vec![0.0f64; m];
    if p == 1 {
        return NetAllreduce {
            values: pool.values_of(&ranks[0], exact).round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
            link_stats: None,
        };
    }

    let mut sim = build_sim(topo, jitter, config);
    let mut payloads = Payloads::default();
    // The ring's combine order is fixed by the rotation, so coalescing
    // is value-invisible under every ordering.
    let mut nic = Nic::new(config.coalesce_bytes);
    let tracing = trace::enabled();
    let pid = trace::current_pid();
    // Step 0: every rank sends its own copy of its own segment, chunk
    // by chunk (empty chunks still circulate as 0-byte messages so the
    // protocol shape is uniform at every segment count).
    for (s, &r) in order.iter().enumerate() {
        for c in 0..k {
            let (lo, hi) = chunk_of(s, c);
            let seg = pool.values_of(&ranks[r][lo..hi], exact);
            let bytes = seg.wire_bytes();
            let tag = (c as u64) << RING_CHUNK_SHIFT;
            let msg =
                nic.send_at(&mut sim, config.stagger_ns * r as f64, r, order[(s + 1) % p], bytes, tag);
            payloads.insert(msg, seg);
            if tracing {
                // Span per travelling chunk: B at injection, E at its
                // single rounding (reduce-scatter complete).
                let lane = trace::CHUNK_TID_BASE + (s * k + c) as u64;
                trace::name_thread(pid, lane, format!("seg {s} chunk {c}"));
                trace::begin(pid, lane, config.stagger_ns * r as f64, format!("seg{s}.chunk{c}"), "coll");
            }
        }
    }

    nic.flush(&mut sim);

    let step_mask = (1u64 << RING_CHUNK_SHIFT) - 1;
    let mut elapsed = 0.0f64;
    let stats = sim.run(|sim, wire| {
        for d in nic.expand(&wire) {
        elapsed = elapsed.max(d.time);
        if d.tag < TAG_AG_BASE {
            // Reduce-scatter step `s`: fold our contribution under the
            // travelling partial for chunk c of segment
            // (pos(from) − s) mod p.
            let s = (d.tag & step_mask) as usize;
            let c = (d.tag >> RING_CHUNK_SHIFT) as usize;
            let r = d.to;
            let z = (pos_of[d.from] + p - s) % p;
            let (lo, hi) = chunk_of(z, c);
            let mut acc = payloads.take(d.msg).expect("ring partial lost");
            acc.fold_in_slice(&ranks[r][lo..hi]);
            if tracing {
                trace::instant(
                    pid,
                    trace::RANK_TID_BASE + r as u64,
                    d.time,
                    "combine",
                    "coll",
                    vec![("seg", z.into()), ("chunk", c.into()), ("step", s.into())],
                );
            }
            if s + 1 < p - 1 {
                let bytes = acc.wire_bytes();
                let tag = ((c as u64) << RING_CHUNK_SHIFT) | (s as u64 + 1);
                let msg = nic.send_at(sim, d.time, r, order[(pos_of[r] + 1) % p], bytes, tag);
                payloads.insert(msg, acc);
            } else {
                // Chunk complete: single rounding, then allgather.
                if tracing {
                    let lane = trace::CHUNK_TID_BASE + (z * k + c) as u64;
                    trace::end(pid, lane, d.time, format!("seg{z}.chunk{c}"), "coll");
                }
                let rounded = acc.round();
                pool.recycle(acc);
                out[lo..hi].copy_from_slice(&rounded);
                let bytes = (rounded.len() * 8) as u64;
                let tag = TAG_AG_BASE + (((c as u64) << RING_CHUNK_SHIFT) | z as u64);
                let msg = nic.send_at(sim, d.time, r, order[(pos_of[r] + 1) % p], bytes, tag);
                payloads.insert(msg, Values::Plain(rounded));
            }
        } else {
            // Allgather: forward the finished chunk around the ring
            // until it is one position short of its finisher.
            let z = ((d.tag - TAG_AG_BASE) & step_mask) as usize;
            let finisher = (z + p - 1) % p;
            let t = d.to;
            let acc = payloads.take(d.msg).expect("allgather segment lost");
            if (pos_of[t] + 1) % p != finisher {
                let bytes = acc.wire_bytes();
                let msg = nic.send_at(sim, d.time, t, order[(pos_of[t] + 1) % p], bytes, d.tag);
                payloads.insert(msg, acc);
            } else {
                pool.recycle(acc);
            }
        }
        }
        nic.flush(sim);
    });

    NetAllreduce {
        values: out,
        elapsed_ns: elapsed,
        stats,
        link_stats: collect_link_stats(&sim, config),
    }
}

/// Hierarchical phase tags (single chunk, so the whole tag is the
/// phase id).
const H_INTRA_UP: u64 = 0;
const H_INTER_UP: u64 = 1;
const H_INTER_DOWN: u64 = 2;
const H_INTRA_DOWN: u64 = 3;

/// Topology-aware hierarchical allreduce: an `intra`-ary reduction
/// tree inside every fabric group (rooted at the group leader, the
/// group's smallest rank), an `inter`-ary tree over the leaders in
/// group order, then the rounded result broadcast back down both
/// levels. Only the inter phase crosses fabric groups, so the
/// NIC/spine links carry one payload per group instead of one per
/// rank. Value semantics match
/// [`hierarchical_in_memory`](crate::allreduce::hierarchical_in_memory)
/// over the fabric groups (per ordering); under `Reproducible` the
/// travelling exact accumulators make the bits identical to every
/// oblivious baseline.
fn hierarchical_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    intra: usize,
    inter: usize,
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let exact = matches!(ordering, Ordering::Reproducible);
    let rank_order = matches!(ordering, Ordering::RankOrder);
    let num_groups = topo.num_groups();

    let mut pool = BufferPool::default();
    if p == 1 {
        return NetAllreduce {
            values: pool.values_of(&ranks[0], exact).round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
            link_stats: None,
        };
    }

    // Virtual coordinates: the member index inside the group (leader =
    // member 0) for the intra trees, the group id for the inter tree.
    // Members and group leaders are both rank-ascending, so sorting
    // buffered children by physical rank is sorting by virtual index.
    let group_of: Vec<usize> = (0..p).map(|r| topo.group_of(r)).collect();
    let member_idx: Vec<usize> = (0..p)
        .map(|r| {
            topo.group_ranks(group_of[r])
                .iter()
                .position(|&x| x == r)
                .expect("rank missing from its own fabric group")
        })
        .collect();
    let leader = |g: usize| topo.group_ranks(g)[0];
    let is_leader = |r: usize| member_idx[r] == 0;
    let intra_children = |r: usize| {
        let members = topo.group_ranks(group_of[r]);
        let i = member_idx[r];
        (1..=intra)
            .map(move |c| intra * i + c)
            .filter(move |&c| c < members.len())
            .map(move |c| members[c])
    };
    let inter_children = |g: usize| {
        (1..=inter)
            .map(move |c| inter * g + c)
            .filter(move |&c| c < num_groups)
            .map(leader)
    };
    // Where a finished accumulator goes: leaders climb the inter tree
    // (the root, leader of group 0 = rank 0, keeps it), everyone else
    // climbs their group's intra tree.
    let up_target = |r: usize| -> Option<(usize, u64)> {
        if is_leader(r) {
            let g = group_of[r];
            (g != 0).then(|| (leader((g - 1) / inter), H_INTER_UP))
        } else {
            let members = topo.group_ranks(group_of[r]);
            Some((members[(member_idx[r] - 1) / intra], H_INTRA_UP))
        }
    };

    // A rank with nothing to wait for ships its input slice directly
    // (never materialising an accumulator): intra leaves, and
    // singleton-group leaders that are also inter leaves.
    let mut pending: Vec<usize> = (0..p)
        .map(|r| {
            intra_children(r).count()
                + if is_leader(r) { inter_children(group_of[r]).count() } else { 0 }
        })
        .collect();
    let sends_raw: Vec<bool> = (0..p).map(|r| pending[r] == 0).collect();
    let mut accs: Vec<Values> = (0..p)
        .map(|r| {
            if sends_raw[r] {
                Values::empty()
            } else {
                pool.values_of(&ranks[r], exact)
            }
        })
        .collect();
    // Rank-order mode buffers every contribution and folds once all
    // are in, keyed `(phase, child rank)` — intra children ascending,
    // then inter children ascending, matching the in-memory fold.
    let mut buffered: Vec<Vec<(u64, usize, Option<Values>)>> =
        (0..p).map(|_| Vec::new()).collect();

    let mut sim = build_sim(topo, jitter, config);
    let mut payloads = Payloads::default();
    // Same coalescing rule as the k-ary tree: arrival order folds in
    // physical arrival order, which coalescing would perturb.
    let mut nic = Nic::new(if matches!(ordering, Ordering::ArrivalOrder { .. }) {
        0
    } else {
        config.coalesce_bytes
    });
    for r in 1..p {
        if sends_raw[r] {
            let (to, tag) = up_target(r).expect("non-root raw sender has an up target");
            let bytes = raw_wire_bytes(&ranks[r], exact);
            nic.send_at(&mut sim, config.stagger_ns * r as f64, r, to, bytes, tag);
        }
    }
    nic.flush(&mut sim);

    let mut result = vec![0.0f64; m];
    let mut root_done = false;
    let mut down_seen = 0usize;
    let mut elapsed = 0.0f64;
    let stats = sim.run(|sim, wire| {
        for d in nic.expand(&wire) {
            match d.tag {
                H_INTRA_UP | H_INTER_UP => {
                    let v = d.to;
                    let payload = if sends_raw[d.from] {
                        None
                    } else {
                        Some(payloads.take(d.msg).expect("up message lost its payload"))
                    };
                    if rank_order {
                        buffered[v].push((d.tag, d.from, payload));
                    } else {
                        match payload {
                            Some(b) => {
                                accs[v].fold_in(&b);
                                pool.recycle(b);
                            }
                            None => accs[v].fold_in_slice(&ranks[d.from]),
                        }
                    }
                    pending[v] -= 1;
                    if pending[v] == 0 {
                        if rank_order {
                            let mut b = std::mem::take(&mut buffered[v]);
                            b.sort_by_key(|&(tag, from, _)| (tag, from));
                            for (_, from, payload) in b {
                                match payload {
                                    Some(x) => {
                                        accs[v].fold_in(&x);
                                        pool.recycle(x);
                                    }
                                    None => accs[v].fold_in_slice(&ranks[from]),
                                }
                            }
                        }
                        match up_target(v) {
                            Some((to, tag)) => {
                                let acc = std::mem::replace(&mut accs[v], Values::empty());
                                let bytes = acc.wire_bytes();
                                let msg = nic.send_at(sim, d.time, v, to, bytes, tag);
                                payloads.insert(msg, acc);
                            }
                            None => {
                                // Root: the single rounding, then the
                                // two-level broadcast.
                                result.copy_from_slice(&accs[0].round());
                                root_done = true;
                                elapsed = elapsed.max(d.time);
                                let bytes = (m * 8) as u64;
                                for child in inter_children(0) {
                                    nic.send_at(sim, d.time, 0, child, bytes, H_INTER_DOWN);
                                }
                                for child in intra_children(0) {
                                    nic.send_at(sim, d.time, 0, child, bytes, H_INTRA_DOWN);
                                }
                            }
                        }
                    }
                }
                _ => {
                    let v = d.to;
                    elapsed = elapsed.max(d.time);
                    down_seen += 1;
                    if d.tag == H_INTER_DOWN {
                        for child in inter_children(group_of[v]) {
                            nic.send_at(sim, d.time, v, child, d.bytes, H_INTER_DOWN);
                        }
                    }
                    for child in intra_children(v) {
                        nic.send_at(sim, d.time, v, child, d.bytes, H_INTRA_DOWN);
                    }
                }
            }
        }
        nic.flush(sim);
    });

    assert!(root_done, "hierarchical reduction never completed");
    assert_eq!(down_seen, p - 1, "hierarchical broadcast never completed");
    NetAllreduce {
        values: result,
        elapsed_ns: elapsed,
        stats,
        link_stats: collect_link_stats(&sim, config),
    }
}

/// Double binary tree, NCCL-style: two complementary binary trees run
/// in the same simulation, tree 0 over virtual ids `v = rank` reducing
/// the lower half of the payload, tree 1 over the mirrored ids
/// `v = p − 1 − rank` reducing the upper half — interior ranks of one
/// tree are leaves of the other, so each link carries roughly half the
/// bytes of a single tree. Tags are `(tree << 1) | direction`. Value
/// semantics match
/// [`double_binary_tree_in_memory`](crate::allreduce::double_binary_tree_in_memory)
/// (per ordering); under `Reproducible` each half folds exactly and
/// rounds once, bitwise those of every oblivious baseline.
fn double_binary_tree_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let exact = matches!(ordering, Ordering::Reproducible);
    let rank_order = matches!(ordering, Ordering::RankOrder);
    let h = m.div_ceil(2);
    let range = |t: usize| if t == 0 { (0, h) } else { (h, m) };
    // An involution: virtual id of a rank in tree `t`, and equally the
    // physical rank of a virtual id.
    let virt = |t: usize, r: usize| if t == 0 { r } else { p - 1 - r };
    let vchildren = |v: usize| (1..=2).map(move |c| 2 * v + c).filter(move |&c| c < p);
    let is_vleaf = |v: usize| 2 * v + 1 >= p;

    let mut pool = BufferPool::default();
    if p == 1 {
        return NetAllreduce {
            values: pool.values_of(&ranks[0], exact).round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
            link_stats: None,
        };
    }

    // State for rank `r` in tree `t` lives at index `t·p + r`. Leaves
    // ship their input slice directly and never materialise a buffer.
    let mut accs: Vec<Values> = Vec::with_capacity(2 * p);
    let mut pending = vec![0usize; 2 * p];
    for t in 0..2 {
        let (lo, hi) = range(t);
        for r in 0..p {
            let v = virt(t, r);
            accs.push(if is_vleaf(v) && v != 0 {
                Values::empty()
            } else {
                pool.values_of(&ranks[r][lo..hi], exact)
            });
            pending[t * p + r] = vchildren(v).count();
        }
    }
    // Rank-order buffers sort by *virtual* child id — in tree 1 that
    // is descending physical rank, matching the in-memory fold.
    let mut buffered: Vec<Vec<(usize, Option<Values>)>> =
        (0..2 * p).map(|_| Vec::new()).collect();

    let mut sim = build_sim(topo, jitter, config);
    let mut payloads = Payloads::default();
    let mut nic = Nic::new(if matches!(ordering, Ordering::ArrivalOrder { .. }) {
        0
    } else {
        config.coalesce_bytes
    });
    for t in 0..2 {
        let (lo, hi) = range(t);
        for (r, own) in ranks.iter().enumerate() {
            let v = virt(t, r);
            if is_vleaf(v) && v != 0 {
                let bytes = raw_wire_bytes(&own[lo..hi], exact);
                let tag = ((t as u64) << 1) | TAG_UP;
                nic.send_at(&mut sim, config.stagger_ns * r as f64, r, virt(t, (v - 1) / 2), bytes, tag);
            }
        }
    }
    nic.flush(&mut sim);

    let mut result = vec![0.0f64; m];
    let mut roots_done = 0usize;
    let mut elapsed = 0.0f64;
    let stats = sim.run(|sim, wire| {
        for d in nic.expand(&wire) {
            let t = (d.tag >> 1) as usize;
            let (lo, hi) = range(t);
            match d.tag & 1 {
                TAG_UP => {
                    let r = d.to;
                    let i = t * p + r;
                    let payload = if is_vleaf(virt(t, d.from)) {
                        None
                    } else {
                        Some(payloads.take(d.msg).expect("up message lost its payload"))
                    };
                    if rank_order {
                        buffered[i].push((virt(t, d.from), payload));
                    } else {
                        match payload {
                            Some(b) => {
                                accs[i].fold_in(&b);
                                pool.recycle(b);
                            }
                            None => accs[i].fold_in_slice(&ranks[d.from][lo..hi]),
                        }
                    }
                    pending[i] -= 1;
                    if pending[i] == 0 {
                        let v = virt(t, r);
                        if rank_order {
                            let mut b = std::mem::take(&mut buffered[i]);
                            b.sort_by_key(|&(vc, _)| vc);
                            for (vc, payload) in b {
                                match payload {
                                    Some(x) => {
                                        accs[i].fold_in(&x);
                                        pool.recycle(x);
                                    }
                                    None => {
                                        accs[i].fold_in_slice(&ranks[virt(t, vc)][lo..hi])
                                    }
                                }
                            }
                        }
                        if v == 0 {
                            // This tree's root: round its half, then
                            // broadcast it down the same tree.
                            result[lo..hi].copy_from_slice(&accs[i].round());
                            roots_done += 1;
                            elapsed = elapsed.max(d.time);
                            for vc in vchildren(0) {
                                let tag = ((t as u64) << 1) | TAG_DOWN;
                                nic.send_at(sim, d.time, r, virt(t, vc), ((hi - lo) * 8) as u64, tag);
                            }
                        } else {
                            let acc = std::mem::replace(&mut accs[i], Values::empty());
                            let bytes = acc.wire_bytes();
                            let tag = ((t as u64) << 1) | TAG_UP;
                            let msg = nic.send_at(sim, d.time, r, virt(t, (v - 1) / 2), bytes, tag);
                            payloads.insert(msg, acc);
                        }
                    }
                }
                _ => {
                    let r = d.to;
                    elapsed = elapsed.max(d.time);
                    for vc in vchildren(virt(t, r)) {
                        nic.send_at(sim, d.time, r, virt(t, vc), d.bytes, d.tag);
                    }
                }
            }
        }
        nic.flush(sim);
    });

    assert_eq!(roots_done, 2, "double binary tree never completed");
    NetAllreduce {
        values: result,
        elapsed_ns: elapsed,
        stats,
        link_stats: collect_link_stats(&sim, config),
    }
}

/// Recursive doubling: `log₂ p` rounds of symmetric pairwise
/// exchanges; both partners compute `lower + upper`, so every rank
/// holds identical bits after every round and timing never leaks into
/// the values. Messages from a future round are buffered until the
/// receiving rank finishes the rounds before it.
///
/// Because the combine order is fixed by construction, the plain-f64
/// orderings split the work: the values are computed once as the
/// balanced `(lower, upper)` block fold (bitwise identical to what
/// every rank's in-protocol folding would produce), and the message
/// exchange is simulated payload-free — every plain message is `m·8`
/// bytes regardless of content, so timing needs no value state at
/// all. `Reproducible` keeps values in the protocol: its wire sizes
/// depend on the travelling accumulators.
fn recursive_doubling_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    if matches!(ordering, Ordering::Reproducible) {
        recursive_doubling_exact_on(topo, ranks, config, jitter)
    } else {
        recursive_doubling_plain_on(topo, ranks, config, jitter)
    }
}

/// Balanced block fold `sum(block) = sum(lower half) + sum(upper
/// half)` — the exact value (and bits) rank 0 ends the plain
/// recursive-doubling protocol with.
fn block_fold(ranks: &[Vec<f64>], lo: usize, len: usize) -> Vec<f64> {
    if len == 1 {
        return ranks[lo].clone();
    }
    let half = len / 2;
    let mut lower = block_fold(ranks, lo, half);
    if half == 1 {
        for (a, b) in lower.iter_mut().zip(&ranks[lo + 1]) {
            *a += b;
        }
    } else {
        let upper = block_fold(ranks, lo + half, half);
        for (a, b) in lower.iter_mut().zip(&upper) {
            *a += b;
        }
    }
    lower
}

/// The plain-f64 leg: values from [`block_fold`], timing from a
/// payload-free replay of the exchange schedule (constant `m·8`-byte
/// messages).
fn recursive_doubling_plain_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let rounds = p.trailing_zeros() as usize;
    let values = block_fold(ranks, 0, p);
    if p == 1 {
        return NetAllreduce {
            values,
            elapsed_ns: 0.0,
            stats: RunStats::default(),
            link_stats: None,
        };
    }

    struct RankState {
        round: usize,
        ready: f64,
        /// Arrival time of the partner message for each round.
        pending: Vec<Option<f64>>,
    }
    let mut states: Vec<RankState> = (0..p)
        .map(|r| RankState {
            round: 0,
            ready: config.stagger_ns * r as f64,
            pending: vec![None; rounds],
        })
        .collect();

    let bytes = (m * std::mem::size_of::<f64>()) as u64;
    let mut sim = build_sim(topo, jitter, config);
    for (r, state) in states.iter().enumerate() {
        sim.send_at(state.ready, r, r ^ 1, bytes, 0);
    }

    let mut final_time = vec![0.0f64; p];
    let stats = sim.run(|sim, d| {
        let r = d.to;
        states[r].pending[d.tag as usize] = Some(d.time);
        loop {
            let current = states[r].round;
            let Some(arrived) = states[r].pending.get_mut(current).and_then(Option::take)
            else {
                break;
            };
            let now = states[r].ready.max(arrived);
            states[r].round = current + 1;
            states[r].ready = now;
            if current + 1 < rounds {
                sim.send_at(now, r, r ^ (1 << (current + 1)), bytes, (current + 1) as u64);
            } else {
                final_time[r] = now;
            }
        }
    });

    let elapsed = final_time.iter().copied().fold(0.0f64, f64::max);
    NetAllreduce {
        values,
        elapsed_ns: elapsed,
        stats,
        link_stats: collect_link_stats(&sim, config),
    }
}

/// The reproducible leg: exact accumulators travel in the messages,
/// so wire sizes (and therefore timing) depend on the values and the
/// protocol carries them.
fn recursive_doubling_exact_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let exact = true;
    let rounds = p.trailing_zeros() as usize;

    let mut pool = BufferPool::default();
    struct RankState {
        buf: Values,
        round: usize,
        ready: f64,
        /// Buffered partner payloads indexed by round: `(arrival, payload)`.
        pending: Vec<Option<(f64, Values)>>,
    }
    let mut states: Vec<RankState> = (0..p)
        .map(|r| RankState {
            buf: pool.values_of(&ranks[r], exact),
            round: 0,
            ready: config.stagger_ns * r as f64,
            pending: (0..rounds.max(1)).map(|_| None).collect(),
        })
        .collect();

    if p == 1 {
        return NetAllreduce {
            values: states[0].buf.round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
            link_stats: None,
        };
    }

    let mut sim = build_sim(topo, jitter, config);
    let mut payloads = Payloads::default();
    let tracing = trace::enabled();
    let pid = trace::current_pid();
    for (r, state) in states.iter().enumerate() {
        let bytes = state.buf.wire_bytes();
        let msg = sim.send_at(state.ready, r, r ^ 1, bytes, 0);
        payloads.insert(msg, pool.clone_values(&state.buf));
    }

    let mut final_time = vec![0.0f64; p];
    let stats = sim.run(|sim, d| {
        let r = d.to;
        let payload = payloads.take(d.msg).expect("doubling payload lost");
        states[r].pending[d.tag as usize] = Some((d.time, payload));
        // Drain every round that is now unblocked, in round order.
        loop {
            let current = states[r].round;
            let Some((arrived, payload)) = states[r]
                .pending
                .get_mut(current)
                .and_then(Option::take)
            else {
                break;
            };
            let round = states[r].round;
            let now = states[r].ready.max(arrived);
            let partner = r ^ (1 << round);
            if tracing {
                trace::instant(
                    pid,
                    trace::RANK_TID_BASE + r as u64,
                    now,
                    "combine",
                    "coll",
                    vec![("round", round.into()), ("partner", partner.into())],
                );
            }
            // `lower + upper` without cloning either side: fold the
            // payload into the resident buffer (or the buffer into the
            // payload) depending on which operand is "lower".
            if r < partner {
                states[r].buf.fold_in(&payload);
                pool.recycle(payload);
            } else {
                let mut merged = payload;
                merged.fold_in(&states[r].buf);
                let retired = std::mem::replace(&mut states[r].buf, merged);
                pool.recycle(retired);
            }
            states[r].round = round + 1;
            states[r].ready = now;
            if round + 1 < rounds {
                let bytes = states[r].buf.wire_bytes();
                let msg = sim.send_at(now, r, r ^ (1 << (round + 1)), bytes, (round + 1) as u64);
                payloads.insert(msg, pool.clone_values(&states[r].buf));
            } else {
                final_time[r] = now;
            }
        }
    });

    let elapsed = final_time.iter().copied().fold(0.0f64, f64::max);
    NetAllreduce {
        values: states.swap_remove(0).buf.round(),
        elapsed_ns: elapsed,
        stats,
        link_stats: collect_link_stats(&sim, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::allreduce;
    use fpna_core::rng::SplitMix64;
    use fpna_net::LinkSpec;

    fn make_ranks(p: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(seed);
        (0..p)
            .map(|_| (0..m).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn flat(p: usize) -> Topology {
        Topology::flat_switch(p, LinkSpec::new(500.0, 25.0))
    }

    fn hier(nodes: usize, rpn: usize) -> Topology {
        Topology::hierarchical(
            nodes,
            rpn,
            LinkSpec::new(200.0, 100.0),
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(5_000.0, 25.0),
        )
    }

    #[test]
    fn zero_jitter_rank_order_matches_in_memory_bits() {
        let ranks = make_ranks(16, 64, 1);
        let topo = flat(16);
        let cfg = NetConfig::default();
        for alg in [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 3 },
            Algorithm::RecursiveDoubling,
            Algorithm::SegmentedRing { segments: 4 },
            Algorithm::SegmentedTree { fanout: 3, segments: 4 },
            // The flat switch is one fabric group, so the aware
            // variants degenerate to their in-memory references.
            Algorithm::Hierarchical { intra: 2, inter: 2 },
            Algorithm::FabricRing,
            Algorithm::DoubleBinaryTree,
        ] {
            let sim = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &cfg);
            let mem = allreduce(&ranks, alg, Ordering::RankOrder);
            assert_eq!(bits(&sim.values), bits(&mem), "{alg:?}");
            assert!(sim.elapsed_ns > 0.0);
        }
    }

    #[test]
    fn rank_order_is_replayable_to_the_timestamp() {
        let ranks = make_ranks(8, 32, 2);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        let a = allreduce_on(&topo, &ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder, &cfg);
        let b = allreduce_on(&topo, &ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder, &cfg);
        assert_eq!(bits(&a.values), bits(&b.values));
        assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits());
    }

    #[test]
    fn jittered_tree_varies_across_seeds() {
        let ranks = make_ranks(16, 64, 3);
        let topo = hier(4, 4);
        let cfg = NetConfig::default();
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..8 {
            let out = allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout: 8 },
                Ordering::ArrivalOrder { seed },
                &cfg,
            );
            distinct.insert(bits(&out.values));
        }
        assert!(distinct.len() > 1, "timing jitter should leak into the bits");
    }

    #[test]
    fn ring_and_doubling_bits_are_timing_invariant() {
        // Fixed combine order: jitter moves the clock, not the bits.
        let ranks = make_ranks(8, 48, 4);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        for alg in [
            Algorithm::Ring,
            Algorithm::RecursiveDoubling,
            Algorithm::SegmentedRing { segments: 3 },
        ] {
            let a = allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 1 }, &cfg);
            let b = allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 99 }, &cfg);
            assert_eq!(bits(&a.values), bits(&b.values), "{alg:?}");
            assert_ne!(
                a.elapsed_ns.to_bits(),
                b.elapsed_ns.to_bits(),
                "{alg:?}: jitter should still move the clock"
            );
        }
    }

    #[test]
    fn segmented_values_match_unsegmented_for_every_ordering() {
        // Chunking is a pure timing knob: per-element combine order is
        // unchanged, so the *values* (not the clock) are bitwise those
        // of the unsegmented algorithm — for the order-fixed ring under
        // every ordering, and for the tree wherever the fold order is
        // deterministic.
        let ranks = make_ranks(8, 52, 11);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        for k in [2usize, 7, 16] {
            for ord in [
                Ordering::RankOrder,
                Ordering::ArrivalOrder { seed: 5 },
                Ordering::Reproducible,
            ] {
                let seg = allreduce_on(
                    &topo,
                    &ranks,
                    Algorithm::SegmentedRing { segments: k },
                    ord,
                    &cfg,
                );
                let base = allreduce_on(&topo, &ranks, Algorithm::Ring, ord, &cfg);
                assert_eq!(bits(&seg.values), bits(&base.values), "ring k={k} {ord:?}");
            }
            let seg = allreduce_on(
                &topo,
                &ranks,
                Algorithm::SegmentedTree { fanout: 3, segments: k },
                Ordering::RankOrder,
                &cfg,
            );
            let base = allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout: 3 },
                Ordering::RankOrder,
                &cfg,
            );
            assert_eq!(bits(&seg.values), bits(&base.values), "tree k={k}");
        }
    }

    #[test]
    fn segmentation_pipelines_the_clock() {
        // A bandwidth-heavy payload on a deep fabric: cutting it into
        // chunks must strictly reduce the simulated completion time
        // (that is the whole point of overlap).
        let ranks = make_ranks(8, 4096, 12);
        let topo = hier(2, 4);
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let base = allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::RankOrder, &cfg);
        let seg = allreduce_on(
            &topo,
            &ranks,
            Algorithm::SegmentedRing { segments: 8 },
            Ordering::RankOrder,
            &cfg,
        );
        assert!(
            seg.elapsed_ns < base.elapsed_ns,
            "segmented {} vs unsegmented {}",
            seg.elapsed_ns,
            base.elapsed_ns
        );
        let tbase = allreduce_on(
            &topo,
            &ranks,
            Algorithm::KAryTree { fanout: 4 },
            Ordering::RankOrder,
            &cfg,
        );
        let tseg = allreduce_on(
            &topo,
            &ranks,
            Algorithm::SegmentedTree { fanout: 4, segments: 8 },
            Ordering::RankOrder,
            &cfg,
        );
        assert!(
            tseg.elapsed_ns < tbase.elapsed_ns,
            "segmented tree {} vs unsegmented {}",
            tseg.elapsed_ns,
            tbase.elapsed_ns
        );
    }

    #[test]
    fn reproducible_is_bitwise_stable_across_everything() {
        let ranks = make_ranks(16, 32, 5);
        let reference = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible);
        let cfg = NetConfig::default();
        for topo in [flat(16), hier(4, 4)] {
            for alg in [
                Algorithm::Ring,
                Algorithm::KAryTree { fanout: 4 },
                Algorithm::RecursiveDoubling,
                Algorithm::SegmentedRing { segments: 7 },
                Algorithm::SegmentedTree { fanout: 4, segments: 16 },
                Algorithm::Hierarchical { intra: 2, inter: 2 },
                Algorithm::FabricRing,
                Algorithm::DoubleBinaryTree,
            ] {
                for seed in [0u64, 7, 1234] {
                    let out = allreduce_on(
                        &topo,
                        &ranks,
                        alg,
                        Ordering::Reproducible,
                        &cfg.with_jitter_seed(seed),
                    );
                    assert_eq!(
                        bits(&out.values),
                        bits(&reference),
                        "{alg:?} on {} seed {seed}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reproducible_pays_a_bandwidth_overhead() {
        let ranks = make_ranks(8, 256, 6);
        let topo = flat(8);
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let plain = allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::RankOrder, &cfg);
        let exact = allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::Reproducible, &cfg);
        assert!(
            exact.elapsed_ns > plain.elapsed_ns,
            "exact payloads must cost wall-clock: {} vs {}",
            exact.elapsed_ns,
            plain.elapsed_ns
        );
        assert!(exact.stats.bytes_delivered > plain.stats.bytes_delivered);
    }

    #[test]
    fn all_net_variants_compute_the_sum() {
        use fpna_summation::exact::exact_sum;
        let ranks = make_ranks(8, 40, 7);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        for (alg, ord) in [
            (Algorithm::Ring, Ordering::RankOrder),
            (Algorithm::KAryTree { fanout: 2 }, Ordering::ArrivalOrder { seed: 3 }),
            (Algorithm::RecursiveDoubling, Ordering::ArrivalOrder { seed: 9 }),
            (Algorithm::KAryTree { fanout: 5 }, Ordering::Reproducible),
            (Algorithm::SegmentedRing { segments: 16 }, Ordering::ArrivalOrder { seed: 4 }),
            (Algorithm::SegmentedTree { fanout: 2, segments: 5 }, Ordering::RankOrder),
            (Algorithm::Hierarchical { intra: 2, inter: 2 }, Ordering::ArrivalOrder { seed: 6 }),
            (Algorithm::FabricRing, Ordering::ArrivalOrder { seed: 8 }),
            (Algorithm::DoubleBinaryTree, Ordering::Reproducible),
        ] {
            let out = allreduce_on(&topo, &ranks, alg, ord, &cfg);
            for i in [0usize, 17, 39] {
                let want = exact_sum(&ranks.iter().map(|r| r[i]).collect::<Vec<_>>());
                assert!(
                    (out.values[i] - want).abs() <= 1e-6,
                    "{alg:?}/{ord:?} at {i}: {} vs {want}",
                    out.values[i]
                );
            }
        }
    }

    #[test]
    fn single_rank_is_identity_on_net() {
        let ranks = make_ranks(1, 8, 8);
        let topo = flat(1);
        let cfg = NetConfig::default();
        for alg in [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 2 },
            Algorithm::RecursiveDoubling,
            Algorithm::SegmentedRing { segments: 3 },
            Algorithm::SegmentedTree { fanout: 2, segments: 3 },
            Algorithm::Hierarchical { intra: 2, inter: 2 },
            Algorithm::FabricRing,
            Algorithm::DoubleBinaryTree,
        ] {
            let out = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &cfg);
            assert_eq!(bits(&out.values), bits(&ranks[0]), "{alg:?}");
            assert_eq!(out.elapsed_ns, 0.0);
        }
    }

    #[test]
    fn more_segments_than_elements_still_works() {
        // Chunks beyond the element count are empty but still
        // circulate; values must stay exact.
        let ranks = make_ranks(4, 6, 13);
        let topo = flat(4);
        let cfg = NetConfig::default();
        let seg = allreduce_on(
            &topo,
            &ranks,
            Algorithm::SegmentedRing { segments: 16 },
            Ordering::RankOrder,
            &cfg,
        );
        let base = allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::RankOrder, &cfg);
        assert_eq!(bits(&seg.values), bits(&base.values));
    }

    fn spined(p: usize, radix: usize, spines: usize) -> Topology {
        Topology::fat_tree_spines(
            p,
            radix,
            spines,
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(1_000.0, 25.0),
        )
    }

    #[test]
    fn reproducible_is_bitwise_stable_under_any_load_route_and_topology() {
        // The acceptance contract: exact accumulators on the wire are
        // immune to *everything* the fabric does — jitter, background
        // tenants at any offered load, and adaptive route choice.
        let ranks = make_ranks(16, 24, 21);
        let reference = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible);
        for topo in [flat(16), spined(16, 4, 4), hier(4, 4)] {
            for load in [0.0, 0.5, 0.8] {
                for route in [RouteSelect::Fixed, RouteSelect::SeededEcmp { seed: 5 }] {
                    for alg in [
                        Algorithm::Ring,
                        Algorithm::KAryTree { fanout: 4 },
                        Algorithm::Hierarchical { intra: 2, inter: 2 },
                        Algorithm::FabricRing,
                        Algorithm::DoubleBinaryTree,
                    ] {
                        let cfg = NetConfig::default()
                            .with_load(load, 0xB0B)
                            .with_route(route)
                            .with_jitter_seed(load.to_bits());
                        let out = allreduce_on(&topo, &ranks, alg, Ordering::Reproducible, &cfg);
                        assert_eq!(
                            bits(&out.values),
                            bits(&reference),
                            "{alg:?} on {} load {load} route {route:?}",
                            topo.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rank_order_values_are_load_and_route_invariant() {
        // RankOrder buffers into a deterministic fold order, so
        // contention moves the clock but never the bits.
        let ranks = make_ranks(16, 32, 22);
        let topo = spined(16, 4, 4);
        let quiet = allreduce_on(
            &topo,
            &ranks,
            Algorithm::KAryTree { fanout: 3 },
            Ordering::RankOrder,
            &NetConfig::default(),
        );
        for load in [0.3, 0.8] {
            for route in [RouteSelect::Fixed, RouteSelect::SeededEcmp { seed: 2 }] {
                let cfg = NetConfig::default().with_load(load, 77).with_route(route);
                let out = allreduce_on(
                    &topo,
                    &ranks,
                    Algorithm::KAryTree { fanout: 3 },
                    Ordering::RankOrder,
                    &cfg,
                );
                assert_eq!(bits(&out.values), bits(&quiet.values), "load {load} {route:?}");
            }
        }
    }

    #[test]
    fn contention_alone_reorders_arrival_order_folds() {
        // Zero jitter: the *only* nondeterminism source left is the
        // background tenants' link queueing. Different tenant schedules
        // must flip some fold order — contention, not jitter, is doing
        // the reordering (and each schedule must replay bitwise).
        let ranks = make_ranks(16, 48, 23);
        let topo = spined(16, 4, 4);
        let run = |bg_seed: u64| {
            let cfg = NetConfig {
                jitter_frac: 0.0,
                ..NetConfig::default()
            }
            .with_load(0.7, bg_seed);
            allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout: 8 },
                Ordering::ArrivalOrder { seed: 0 },
                &cfg,
            )
        };
        let mut distinct = std::collections::HashSet::new();
        for bg_seed in 0..8 {
            let a = run(bg_seed);
            let b = run(bg_seed);
            assert_eq!(bits(&a.values), bits(&b.values), "bg_seed {bg_seed} must replay");
            assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits());
            distinct.insert(bits(&a.values));
        }
        assert!(
            distinct.len() > 1,
            "contention should leak into arrival-order bits"
        );
    }

    #[test]
    fn fixed_order_algorithms_are_bit_stable_under_contention_and_ecmp() {
        // Ring and recursive doubling have a construction-fixed combine
        // order: tenants and route choice may move the clock only.
        let ranks = make_ranks(16, 40, 24);
        let topo = spined(16, 4, 2);
        let quiet = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let busy = quiet
            .with_load(0.8, 99)
            .with_route(RouteSelect::SeededEcmp { seed: 4 });
        for alg in [Algorithm::Ring, Algorithm::RecursiveDoubling] {
            let a = allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 1 }, &quiet);
            let b = allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 1 }, &busy);
            assert_eq!(bits(&a.values), bits(&b.values), "{alg:?}");
            assert!(
                b.stats.bg_deliveries > 0,
                "{alg:?}: tenants should actually run"
            );
        }
    }

    #[test]
    fn coalescing_never_changes_values() {
        // Coalescing is a wire-schedule transform: wherever it is
        // allowed to act, the reduced bits must match the uncoalesced
        // run exactly — for the order-fixed ring under every ordering,
        // and for the tree under its deterministic fold orders
        // (`ArrivalOrder` is gated off internally, so it trivially
        // matches too — with identical timing).
        let ranks = make_ranks(8, 64, 31);
        let topo = hier(2, 4);
        let base_cfg = NetConfig::default();
        let coal_cfg = base_cfg.with_coalesce(256);
        for k in [1usize, 4, 16] {
            for ord in [
                Ordering::RankOrder,
                Ordering::ArrivalOrder { seed: 3 },
                Ordering::Reproducible,
            ] {
                for alg in [
                    Algorithm::SegmentedRing { segments: k },
                    Algorithm::SegmentedTree { fanout: 3, segments: k },
                ] {
                    let base = allreduce_on(&topo, &ranks, alg, ord, &base_cfg);
                    let coal = allreduce_on(&topo, &ranks, alg, ord, &coal_cfg);
                    assert_eq!(bits(&coal.values), bits(&base.values), "{alg:?} {ord:?} k={k}");
                }
            }
        }
        // The gate: a coalesce-configured arrival-order tree must be
        // byte-for-byte the uncoalesced run, timing included.
        let ord = Ordering::ArrivalOrder { seed: 9 };
        let alg = Algorithm::SegmentedTree { fanout: 2, segments: 8 };
        let a = allreduce_on(&topo, &ranks, alg, ord, &base_cfg);
        let b = allreduce_on(&topo, &ranks, alg, ord, &coal_cfg);
        assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn coalescing_collapses_wire_messages() {
        // Many tiny chunks to the same next hop: coalescing merges
        // them into a handful of wire messages, collapsing the
        // engine's event count (the host-time win) while leaving the
        // simulated clock essentially untouched — link occupancy is
        // serialization, which sums to the same bytes either way, so
        // the batch arrives when its last chunk would have.
        let ranks = make_ranks(8, 64, 32);
        let topo = flat(8);
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let alg = Algorithm::SegmentedRing { segments: 64 };
        let base = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &cfg);
        let coal = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &cfg.with_coalesce(4096));
        assert!(
            coal.stats.deliveries * 4 <= base.stats.deliveries,
            "coalescing should collapse wire messages: {} vs {}",
            coal.stats.deliveries,
            base.stats.deliveries
        );
        assert!(coal.stats.hops_traversed < base.stats.hops_traversed);
        // Same payload bytes moved end to end, whatever the envelope.
        assert_eq!(coal.stats.bytes_delivered, base.stats.bytes_delivered);
        assert!(
            (coal.elapsed_ns - base.elapsed_ns).abs() <= 0.02 * base.elapsed_ns,
            "coalescing is a near-noop on the simulated clock: {} vs {}",
            coal.elapsed_ns,
            base.elapsed_ns
        );
        assert_eq!(bits(&coal.values), bits(&base.values));
    }

    #[test]
    fn coalescing_replays_bitwise() {
        // The batching rule is a pure function of the logical send
        // sequence: same run twice → same bits, same clock, same stats.
        let ranks = make_ranks(8, 48, 33);
        let topo = hier(2, 4);
        let cfg = NetConfig::default().with_coalesce(512);
        for (alg, ord) in [
            (Algorithm::SegmentedRing { segments: 16 }, Ordering::ArrivalOrder { seed: 5 }),
            (Algorithm::SegmentedTree { fanout: 3, segments: 8 }, Ordering::Reproducible),
        ] {
            let a = allreduce_on(&topo, &ranks, alg, ord, &cfg);
            let b = allreduce_on(&topo, &ranks, alg, ord, &cfg);
            assert_eq!(bits(&a.values), bits(&b.values), "{alg:?}");
            assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits(), "{alg:?}");
            assert_eq!(a.stats, b.stats, "{alg:?}");
        }
    }

    fn cyclic(nodes: usize, rpn: usize) -> Topology {
        Topology::hierarchical_cyclic(
            nodes,
            rpn,
            LinkSpec::new(200.0, 100.0),
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(5_000.0, 25.0),
        )
    }

    fn fabric_groups(topo: &Topology) -> Vec<Vec<usize>> {
        (0..topo.num_groups()).map(|g| topo.group_ranks(g).to_vec()).collect()
    }

    #[test]
    fn aware_variants_match_their_group_parameterized_references() {
        // Zero-jitter rank order on fabrics with real group structure:
        // the protocols must reproduce the in-memory folds
        // parameterized by the topology's own groups / fabric order.
        use crate::allreduce::{
            double_binary_tree_in_memory, hierarchical_in_memory, ring_in_order,
        };
        let ranks = make_ranks(16, 40, 41);
        let cfg = NetConfig::default();
        for topo in [hier(4, 4), cyclic(4, 4), spined(16, 4, 2)] {
            let h = allreduce_on(
                &topo,
                &ranks,
                Algorithm::Hierarchical { intra: 2, inter: 2 },
                Ordering::RankOrder,
                &cfg,
            );
            let h_ref = hierarchical_in_memory(&ranks, &fabric_groups(&topo), 2, 2, None);
            assert_eq!(bits(&h.values), bits(&h_ref), "hierarchical on {}", topo.name());

            let fr = allreduce_on(&topo, &ranks, Algorithm::FabricRing, Ordering::RankOrder, &cfg);
            let fr_ref = ring_in_order(&ranks, 40, &topo.fabric_ring_order());
            assert_eq!(bits(&fr.values), bits(&fr_ref), "fabric ring on {}", topo.name());

            let dbt = allreduce_on(
                &topo,
                &ranks,
                Algorithm::DoubleBinaryTree,
                Ordering::RankOrder,
                &cfg,
            );
            let dbt_ref = double_binary_tree_in_memory(&ranks, None);
            assert_eq!(bits(&dbt.values), bits(&dbt_ref), "dbt on {}", topo.name());
        }
    }

    #[test]
    fn aware_placement_cuts_nic_crossing_bytes() {
        // The point of the exercise: hierarchical placement sends one
        // payload per node across the NIC instead of one per rank, and
        // the fabric ring (on a scrambled placement) crosses groups
        // once per group instead of nearly every hop.
        let ranks = make_ranks(16, 64, 42);
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let topo = hier(4, 4);
        let oblivious = allreduce_on(
            &topo,
            &ranks,
            Algorithm::KAryTree { fanout: 2 },
            Ordering::RankOrder,
            &cfg,
        );
        let aware = allreduce_on(
            &topo,
            &ranks,
            Algorithm::Hierarchical { intra: 2, inter: 2 },
            Ordering::RankOrder,
            &cfg,
        );
        assert!(
            aware.stats.nic_bytes < oblivious.stats.nic_bytes,
            "hierarchical should cross the NIC less: {} vs {}",
            aware.stats.nic_bytes,
            oblivious.stats.nic_bytes
        );
        assert!(aware.stats.nic_hops < oblivious.stats.nic_hops);

        let scrambled = cyclic(4, 4);
        let ring = allreduce_on(&scrambled, &ranks, Algorithm::Ring, Ordering::RankOrder, &cfg);
        let fabric =
            allreduce_on(&scrambled, &ranks, Algorithm::FabricRing, Ordering::RankOrder, &cfg);
        assert!(
            fabric.stats.nic_bytes < ring.stats.nic_bytes,
            "fabric ring should cross the NIC less: {} vs {}",
            fabric.stats.nic_bytes,
            ring.stats.nic_bytes
        );
        // On a node-major layout the fabric order *is* the identity:
        // the fabric ring must be the plain ring, crossings included.
        let node_major_ring =
            allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::RankOrder, &cfg);
        let node_major_fabric =
            allreduce_on(&topo, &ranks, Algorithm::FabricRing, Ordering::RankOrder, &cfg);
        assert_eq!(node_major_fabric.stats, node_major_ring.stats);
        assert_eq!(bits(&node_major_fabric.values), bits(&node_major_ring.values));
    }

    #[test]
    fn double_binary_tree_balances_bytes_across_trees() {
        // Each half-payload tree should carry roughly half the bytes a
        // single full-payload binary tree moves on the same fabric.
        let ranks = make_ranks(16, 256, 43);
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let topo = flat(16);
        let single = allreduce_on(
            &topo,
            &ranks,
            Algorithm::KAryTree { fanout: 2 },
            Ordering::RankOrder,
            &cfg,
        );
        let dbt = allreduce_on(&topo, &ranks, Algorithm::DoubleBinaryTree, Ordering::RankOrder, &cfg);
        // Two trees × half payload ≈ the same total bytes...
        let lo = single.stats.bytes_delivered * 9 / 10;
        let hi = single.stats.bytes_delivered * 11 / 10;
        assert!(
            (lo..=hi).contains(&dbt.stats.bytes_delivered),
            "dbt bytes {} vs single-tree {}",
            dbt.stats.bytes_delivered,
            single.stats.bytes_delivered
        );
        // ...but the serialized chain at any one link is halved, so the
        // clock should come in under the single tree.
        assert!(
            dbt.elapsed_ns < single.elapsed_ns,
            "dbt {} vs single tree {}",
            dbt.elapsed_ns,
            single.elapsed_ns
        );
    }

    #[test]
    #[should_panic(expected = "segment count")]
    fn zero_segments_panics() {
        let ranks = make_ranks(4, 8, 14);
        allreduce_on(
            &flat(4),
            &ranks,
            Algorithm::SegmentedRing { segments: 0 },
            Ordering::RankOrder,
            &NetConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "topology has")]
    fn rank_count_mismatch_panics() {
        let ranks = make_ranks(4, 8, 9);
        allreduce_on(
            &flat(8),
            &ranks,
            Algorithm::Ring,
            Ordering::RankOrder,
            &NetConfig::default(),
        );
    }
}
