//! Timing-driven allreduce over a simulated interconnect.
//!
//! [`allreduce_on`] executes the same three algorithms as
//! [`crate::allreduce()`](crate::allreduce::allreduce) — ring, k-ary tree, recursive doubling — but
//! as *event-driven protocols* on an [`fpna_net`] fabric. Combine
//! order is no longer injected by a seeded shuffle; it **emerges from
//! message timing**:
//!
//! * [`Ordering::ArrivalOrder`] — links carry seeded jitter (the seed
//!   drives the [`fpna_net::JitterModel`]); each tree node folds child
//!   contributions in the order their messages actually land. This is
//!   MPI on a busy fabric. Ring and recursive doubling have a fixed
//!   combine order by construction, so only their *timing* varies —
//!   exactly the real-world split the paper describes.
//! * [`Ordering::RankOrder`] — the software-scheduled interconnect:
//!   zero jitter and rank-ordered folds. Bit-for-bit replayable,
//!   including every timestamp.
//! * [`Ordering::Reproducible`] — exact accumulators travel **in the
//!   messages** (span-encoded: [`ExactAccumulator::wire_len`] per
//!   element, bounded above by [`ExactAccumulator::WIRE_BYTES`] + 2,
//!   instead of 8), the fabric stays jittered, and one final rounding
//!   happens at the reduction root (tree/recursive doubling) or
//!   segment owner (ring). Bits are identical across every topology,
//!   algorithm and jitter seed; the bandwidth inflation is the
//!   network's "cost of reproducibility" — now priced at the actual
//!   encoded payload.
//!
//! The cheap shuffle-based path in [`crate::allreduce()`](crate::allreduce::allreduce) remains as a
//! fallback for experiments that don't need a network model.

use crate::allreduce::{Algorithm, Ordering};
use fpna_net::{JitterModel, NetSim, RunStats, Topology};
use fpna_summation::exact::ExactAccumulator;
use std::collections::HashMap;

/// Fabric-behaviour knobs shared by every ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-hop jitter amplitude as a fraction of the hop's
    /// deterministic service time — serialization plus latency
    /// (applies to `ArrivalOrder` and `Reproducible`; `RankOrder`
    /// always runs jitter-free).
    pub jitter_frac: f64,
    /// Jitter seed used when the ordering does not carry one
    /// (`Reproducible`): "what the fabric did this run".
    pub jitter_seed: u64,
    /// Deterministic injection skew: rank `r` enters the collective at
    /// `r · stagger_ns` — ranks never hit a collective simultaneously
    /// in practice (kernel-completion skew is typically sub-µs to µs
    /// scale). Arrival order flips only where accumulated path jitter
    /// beats this spacing, which is how variability comes to grow with
    /// fabric depth.
    pub stagger_ns: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            jitter_frac: 0.3,
            jitter_seed: 0,
            stagger_ns: 500.0,
        }
    }
}

impl NetConfig {
    /// This configuration with a different jitter seed — the per-run
    /// rekeying used by seed sweeps over `Reproducible`.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// Result of one simulated allreduce.
#[derive(Debug, Clone)]
pub struct NetAllreduce {
    /// The reduced vector (identical on every rank).
    pub values: Vec<f64>,
    /// Simulated time until the last rank held the result, in ns.
    pub elapsed_ns: f64,
    /// Engine statistics (messages, bytes, hops, makespan).
    pub stats: RunStats,
}

/// Reduction state: plain floats, or exact accumulators for the
/// reproducible ordering.
#[derive(Debug, Clone)]
enum Values {
    Plain(Vec<f64>),
    Exact(Vec<ExactAccumulator>),
}

impl Values {
    fn from_slice(xs: &[f64], exact: bool) -> Self {
        if exact {
            Values::Exact(
                xs.iter()
                    .map(|&x| {
                        let mut a = ExactAccumulator::new();
                        a.add(x);
                        // Canonical from birth: every accumulator that
                        // travels (or is folded into) is in normalized
                        // wire form, so each per-message merge takes
                        // the no-clone fast path.
                        a.normalize();
                        a
                    })
                    .collect(),
            )
        } else {
            Values::Plain(xs.to_vec())
        }
    }

    /// Fold `rhs` into `self` as `self[i] = self[i] + rhs[i]` — the
    /// left operand is the accumulator that has been travelling.
    fn fold_in(&mut self, rhs: &Values) {
        match (self, rhs) {
            (Values::Plain(a), Values::Plain(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (Values::Exact(a), Values::Exact(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                    // Restore canonical wire form so the next hop's
                    // merge stays on the fast path.
                    x.normalize();
                }
            }
            _ => unreachable!("mixed plain/exact fold"),
        }
    }

    /// `lower[i] + upper[i]` without mutating either operand.
    fn combine(lower: &Values, upper: &Values) -> Values {
        let mut out = lower.clone();
        out.fold_in(upper);
        out
    }

    fn round(&self) -> Vec<f64> {
        match self {
            Values::Plain(v) => v.clone(),
            Values::Exact(a) => a.iter().map(|x| x.round()).collect(),
        }
    }

    /// On-wire size of a message carrying this state. Exact
    /// accumulators are span-encoded ([`ExactAccumulator::wire_len`]:
    /// a 2-byte `[lo, hi)` header plus the occupied limbs, per
    /// element), so narrow-dynamic-range payloads cost what they
    /// actually occupy instead of the dense
    /// [`ExactAccumulator::WIRE_BYTES`] upper bound. Every travelling
    /// accumulator is kept canonical (normalized at birth and after
    /// each fold), which keeps the spans — and therefore the priced
    /// bytes — tight.
    fn wire_bytes(&self) -> u64 {
        match self {
            Values::Plain(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            Values::Exact(a) => a.iter().map(|x| x.wire_len() as u64).sum(),
        }
    }
}

fn jitter_for(ordering: Ordering, config: &NetConfig) -> JitterModel {
    match ordering {
        Ordering::ArrivalOrder { seed } => JitterModel::uniform(config.jitter_frac, seed),
        Ordering::RankOrder => JitterModel::none(),
        Ordering::Reproducible => JitterModel::uniform(config.jitter_frac, config.jitter_seed),
    }
}

/// Allreduce (sum) executed as an event-driven protocol on `topo`.
/// Returns the reduced vector plus simulated cost. The value
/// semantics match [`crate::allreduce()`](crate::allreduce::allreduce): with zero jitter and
/// rank-ordered folds the bits are identical to the in-memory path.
///
/// # Panics
///
/// Panics on empty input, mismatched vector lengths, a rank count
/// different from `topo.ranks()`, fanout < 2, or a non-power-of-two
/// rank count for recursive doubling.
pub fn allreduce_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    algorithm: Algorithm,
    ordering: Ordering,
    config: &NetConfig,
) -> NetAllreduce {
    assert!(!ranks.is_empty(), "allreduce needs at least one rank");
    assert_eq!(
        topo.ranks(),
        ranks.len(),
        "topology has {} ranks but {} vectors were supplied",
        topo.ranks(),
        ranks.len()
    );
    let m = ranks[0].len();
    assert!(
        ranks.iter().all(|v| v.len() == m),
        "all ranks must contribute equally-shaped vectors"
    );
    let jitter = jitter_for(ordering, config);
    match algorithm {
        Algorithm::Ring => ring_on(topo, ranks, ordering, config, jitter),
        Algorithm::KAryTree { fanout } => {
            assert!(fanout >= 2, "tree fanout must be at least 2");
            tree_on(topo, ranks, fanout, ordering, config, jitter)
        }
        Algorithm::RecursiveDoubling => {
            assert!(
                ranks.len().is_power_of_two(),
                "recursive doubling needs a power-of-two rank count"
            );
            recursive_doubling_on(topo, ranks, ordering, config, jitter)
        }
    }
}

const TAG_UP: u64 = 0;
const TAG_DOWN: u64 = 1;
/// Ring allgather tags are `TAG_AG_BASE + segment`.
const TAG_AG_BASE: u64 = 1 << 32;

/// K-ary reduction tree rooted at rank 0 (children of `v` are
/// `f·v + 1 ..= f·v + f`), then a broadcast of the rounded result down
/// the same tree. Fold order at each node: own buffer first, then
/// children — in simulated-arrival order, or buffered into rank order.
fn tree_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    fanout: usize,
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let exact = matches!(ordering, Ordering::Reproducible);
    let rank_order = matches!(ordering, Ordering::RankOrder);
    let parent = |v: usize| (v - 1) / fanout;
    let children = |v: usize| (1..=fanout).map(move |k| fanout * v + k).filter(move |&c| c < p);

    struct Node {
        acc: Values,
        pending: usize,
        buffered: Vec<(usize, Values)>,
    }
    let mut nodes: Vec<Node> = (0..p)
        .map(|v| Node {
            acc: Values::from_slice(&ranks[v], exact),
            pending: children(v).count(),
            buffered: Vec::new(),
        })
        .collect();

    if p == 1 {
        return NetAllreduce {
            values: nodes.remove(0).acc.round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
        };
    }

    let mut sim = NetSim::new(topo, jitter);
    let mut payloads: HashMap<u64, Values> = HashMap::new();
    // Leaves inject their contribution at their staggered start time.
    for (v, node) in nodes.iter().enumerate().skip(1) {
        if node.pending == 0 {
            let bytes = node.acc.wire_bytes();
            let msg = sim.send_at(config.stagger_ns * v as f64, v, parent(v), bytes, TAG_UP);
            payloads.insert(msg, node.acc.clone());
        }
    }

    let mut result: Option<Vec<f64>> = None;
    let mut elapsed = 0.0f64;
    let stats = sim.run(|sim, d| match d.tag {
        TAG_UP => {
            let v = d.to;
            let payload = payloads.remove(&d.msg).expect("up message lost its payload");
            if rank_order {
                nodes[v].buffered.push((d.from, payload));
            } else {
                nodes[v].acc.fold_in(&payload);
            }
            nodes[v].pending -= 1;
            if nodes[v].pending == 0 {
                if rank_order {
                    let mut buffered = std::mem::take(&mut nodes[v].buffered);
                    buffered.sort_by_key(|&(c, _)| c);
                    for (_, b) in &buffered {
                        nodes[v].acc.fold_in(b);
                    }
                }
                if v == 0 {
                    // Root: one final rounding, then broadcast f64s.
                    result = Some(nodes[0].acc.round());
                    elapsed = elapsed.max(d.time);
                    for c in children(0) {
                        sim.send_at(d.time, 0, c, (m * 8) as u64, TAG_DOWN);
                    }
                } else {
                    let bytes = nodes[v].acc.wire_bytes();
                    let msg = sim.send_at(d.time, v, parent(v), bytes, TAG_UP);
                    payloads.insert(msg, nodes[v].acc.clone());
                }
            }
        }
        TAG_DOWN => {
            let v = d.to;
            elapsed = elapsed.max(d.time);
            for c in children(v) {
                sim.send_at(d.time, v, c, (m * 8) as u64, TAG_DOWN);
            }
        }
        _ => unreachable!("unknown tree tag"),
    });

    NetAllreduce {
        values: result.expect("tree reduction never completed"),
        elapsed_ns: elapsed,
        stats,
    }
}

/// Ring reduce-scatter + allgather. Segment `s` starts at its owner
/// rank `s` and walks the ring; each hop computes
/// `incoming + own_contribution`, so the combine order is fixed by the
/// rotation and timing only moves the clock, never the bits. The
/// fully-reduced segment is rounded once (at rank `s − 1 mod p`) and
/// allgathered as plain `f64`s.
fn ring_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let m = ranks[0].len();
    let exact = matches!(ordering, Ordering::Reproducible);
    let seg_len = m.div_ceil(p);
    let bounds = |s: usize| ((s * seg_len).min(m), ((s + 1) * seg_len).min(m));

    let mut out = vec![0.0f64; m];
    if p == 1 {
        let own = Values::from_slice(&ranks[0], exact);
        return NetAllreduce {
            values: own.round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
        };
    }

    let mut sim = NetSim::new(topo, jitter);
    let mut payloads: HashMap<u64, Values> = HashMap::new();
    // Step 0: every rank sends its own copy of its own segment.
    for (r, own) in ranks.iter().enumerate() {
        let (lo, hi) = bounds(r);
        let seg = Values::from_slice(&own[lo..hi], exact);
        let bytes = seg.wire_bytes();
        let msg = sim.send_at(config.stagger_ns * r as f64, r, (r + 1) % p, bytes, 0);
        payloads.insert(msg, seg);
    }

    let mut elapsed = 0.0f64;
    let stats = sim.run(|sim, d| {
        elapsed = elapsed.max(d.time);
        if d.tag < TAG_AG_BASE {
            // Reduce-scatter step `s`: fold our contribution under the
            // travelling partial for segment (from − s) mod p.
            let s = d.tag as usize;
            let r = d.to;
            let z = (d.from + p - s) % p;
            let (lo, hi) = bounds(z);
            let mut acc = payloads.remove(&d.msg).expect("ring partial lost");
            let own = Values::from_slice(&ranks[r][lo..hi], exact);
            acc.fold_in(&own);
            if s + 1 < p - 1 {
                let bytes = acc.wire_bytes();
                let msg = sim.send_at(d.time, r, (r + 1) % p, bytes, (s + 1) as u64);
                payloads.insert(msg, acc);
            } else {
                // Segment complete: single rounding, then allgather.
                let rounded = acc.round();
                out[lo..hi].copy_from_slice(&rounded);
                let bytes = (rounded.len() * 8) as u64;
                let msg = sim.send_at(d.time, r, (r + 1) % p, bytes, TAG_AG_BASE + z as u64);
                payloads.insert(msg, Values::Plain(rounded));
            }
        } else {
            // Allgather: forward the finished segment around the ring
            // until it is one rank short of its finisher.
            let z = (d.tag - TAG_AG_BASE) as usize;
            let finisher = (z + p - 1) % p;
            let t = d.to;
            let acc = payloads.remove(&d.msg).expect("allgather segment lost");
            if (t + 1) % p != finisher {
                let bytes = acc.wire_bytes();
                let msg = sim.send_at(d.time, t, (t + 1) % p, bytes, d.tag);
                payloads.insert(msg, acc);
            }
        }
    });

    NetAllreduce {
        values: out,
        elapsed_ns: elapsed,
        stats,
    }
}

/// Recursive doubling: `log₂ p` rounds of symmetric pairwise
/// exchanges; both partners compute `lower + upper`, so every rank
/// holds identical bits after every round and timing never leaks into
/// the values. Messages from a future round are buffered until the
/// receiving rank finishes the rounds before it.
fn recursive_doubling_on(
    topo: &Topology,
    ranks: &[Vec<f64>],
    ordering: Ordering,
    config: &NetConfig,
    jitter: JitterModel,
) -> NetAllreduce {
    let p = ranks.len();
    let exact = matches!(ordering, Ordering::Reproducible);
    let rounds = p.trailing_zeros() as usize;

    struct RankState {
        buf: Values,
        round: usize,
        ready: f64,
        /// Buffered partner payloads by round: `(arrival, payload)`.
        pending: HashMap<usize, (f64, Values)>,
    }
    let mut states: Vec<RankState> = (0..p)
        .map(|r| RankState {
            buf: Values::from_slice(&ranks[r], exact),
            round: 0,
            ready: config.stagger_ns * r as f64,
            pending: HashMap::new(),
        })
        .collect();

    if p == 1 {
        return NetAllreduce {
            values: states.remove(0).buf.round(),
            elapsed_ns: 0.0,
            stats: RunStats::default(),
        };
    }

    let mut sim = NetSim::new(topo, jitter);
    let mut payloads: HashMap<u64, Values> = HashMap::new();
    for (r, state) in states.iter().enumerate() {
        let bytes = state.buf.wire_bytes();
        let msg = sim.send_at(state.ready, r, r ^ 1, bytes, 0);
        payloads.insert(msg, state.buf.clone());
    }

    let mut final_time = vec![0.0f64; p];
    let stats = sim.run(|sim, d| {
        let r = d.to;
        let payload = payloads.remove(&d.msg).expect("doubling payload lost");
        states[r].pending.insert(d.tag as usize, (d.time, payload));
        // Drain every round that is now unblocked, in round order.
        loop {
            let current = states[r].round;
            let Some((arrived, payload)) = states[r].pending.remove(&current) else {
                break;
            };
            let k = states[r].round;
            let now = states[r].ready.max(arrived);
            let partner = r ^ (1 << k);
            states[r].buf = if r < partner {
                Values::combine(&states[r].buf, &payload)
            } else {
                Values::combine(&payload, &states[r].buf)
            };
            states[r].round = k + 1;
            states[r].ready = now;
            if k + 1 < rounds {
                let bytes = states[r].buf.wire_bytes();
                let msg = sim.send_at(now, r, r ^ (1 << (k + 1)), bytes, (k + 1) as u64);
                payloads.insert(msg, states[r].buf.clone());
            } else {
                final_time[r] = now;
            }
        }
    });

    let elapsed = final_time.iter().copied().fold(0.0f64, f64::max);
    NetAllreduce {
        values: states.remove(0).buf.round(),
        elapsed_ns: elapsed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::allreduce;
    use fpna_core::rng::SplitMix64;
    use fpna_net::LinkSpec;

    fn make_ranks(p: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(seed);
        (0..p)
            .map(|_| (0..m).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn flat(p: usize) -> Topology {
        Topology::flat_switch(p, LinkSpec::new(500.0, 25.0))
    }

    fn hier(nodes: usize, rpn: usize) -> Topology {
        Topology::hierarchical(
            nodes,
            rpn,
            LinkSpec::new(200.0, 100.0),
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(5_000.0, 25.0),
        )
    }

    #[test]
    fn zero_jitter_rank_order_matches_in_memory_bits() {
        let ranks = make_ranks(16, 64, 1);
        let topo = flat(16);
        let cfg = NetConfig::default();
        for alg in [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 3 },
            Algorithm::RecursiveDoubling,
        ] {
            let sim = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &cfg);
            let mem = allreduce(&ranks, alg, Ordering::RankOrder);
            assert_eq!(bits(&sim.values), bits(&mem), "{alg:?}");
            assert!(sim.elapsed_ns > 0.0);
        }
    }

    #[test]
    fn rank_order_is_replayable_to_the_timestamp() {
        let ranks = make_ranks(8, 32, 2);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        let a = allreduce_on(&topo, &ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder, &cfg);
        let b = allreduce_on(&topo, &ranks, Algorithm::KAryTree { fanout: 2 }, Ordering::RankOrder, &cfg);
        assert_eq!(bits(&a.values), bits(&b.values));
        assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits());
    }

    #[test]
    fn jittered_tree_varies_across_seeds() {
        let ranks = make_ranks(16, 64, 3);
        let topo = hier(4, 4);
        let cfg = NetConfig::default();
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..8 {
            let out = allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout: 8 },
                Ordering::ArrivalOrder { seed },
                &cfg,
            );
            distinct.insert(bits(&out.values));
        }
        assert!(distinct.len() > 1, "timing jitter should leak into the bits");
    }

    #[test]
    fn ring_and_doubling_bits_are_timing_invariant() {
        // Fixed combine order: jitter moves the clock, not the bits.
        let ranks = make_ranks(8, 48, 4);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        for alg in [Algorithm::Ring, Algorithm::RecursiveDoubling] {
            let a = allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 1 }, &cfg);
            let b = allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 99 }, &cfg);
            assert_eq!(bits(&a.values), bits(&b.values), "{alg:?}");
            assert_ne!(
                a.elapsed_ns.to_bits(),
                b.elapsed_ns.to_bits(),
                "{alg:?}: jitter should still move the clock"
            );
        }
    }

    #[test]
    fn reproducible_is_bitwise_stable_across_everything() {
        let ranks = make_ranks(16, 32, 5);
        let reference = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible);
        let cfg = NetConfig::default();
        for topo in [flat(16), hier(4, 4)] {
            for alg in [
                Algorithm::Ring,
                Algorithm::KAryTree { fanout: 4 },
                Algorithm::RecursiveDoubling,
            ] {
                for seed in [0u64, 7, 1234] {
                    let out = allreduce_on(
                        &topo,
                        &ranks,
                        alg,
                        Ordering::Reproducible,
                        &cfg.with_jitter_seed(seed),
                    );
                    assert_eq!(
                        bits(&out.values),
                        bits(&reference),
                        "{alg:?} on {} seed {seed}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reproducible_pays_a_bandwidth_overhead() {
        let ranks = make_ranks(8, 256, 6);
        let topo = flat(8);
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let plain = allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::RankOrder, &cfg);
        let exact = allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::Reproducible, &cfg);
        assert!(
            exact.elapsed_ns > plain.elapsed_ns,
            "exact payloads must cost wall-clock: {} vs {}",
            exact.elapsed_ns,
            plain.elapsed_ns
        );
        assert!(exact.stats.bytes_delivered > plain.stats.bytes_delivered);
    }

    #[test]
    fn all_net_variants_compute_the_sum() {
        use fpna_summation::exact::exact_sum;
        let ranks = make_ranks(8, 40, 7);
        let topo = hier(2, 4);
        let cfg = NetConfig::default();
        for (alg, ord) in [
            (Algorithm::Ring, Ordering::RankOrder),
            (Algorithm::KAryTree { fanout: 2 }, Ordering::ArrivalOrder { seed: 3 }),
            (Algorithm::RecursiveDoubling, Ordering::ArrivalOrder { seed: 9 }),
            (Algorithm::KAryTree { fanout: 5 }, Ordering::Reproducible),
        ] {
            let out = allreduce_on(&topo, &ranks, alg, ord, &cfg);
            for i in [0usize, 17, 39] {
                let want = exact_sum(&ranks.iter().map(|r| r[i]).collect::<Vec<_>>());
                assert!(
                    (out.values[i] - want).abs() <= 1e-6,
                    "{alg:?}/{ord:?} at {i}: {} vs {want}",
                    out.values[i]
                );
            }
        }
    }

    #[test]
    fn single_rank_is_identity_on_net() {
        let ranks = make_ranks(1, 8, 8);
        let topo = flat(1);
        let cfg = NetConfig::default();
        for alg in [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 2 },
            Algorithm::RecursiveDoubling,
        ] {
            let out = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &cfg);
            assert_eq!(bits(&out.values), bits(&ranks[0]), "{alg:?}");
            assert_eq!(out.elapsed_ns, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "topology has")]
    fn rank_count_mismatch_panics() {
        let ranks = make_ranks(4, 8, 9);
        allreduce_on(
            &flat(8),
            &ranks,
            Algorithm::Ring,
            Ordering::RankOrder,
            &NetConfig::default(),
        );
    }
}
