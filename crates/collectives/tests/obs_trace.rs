//! Observability integration tests: the hard guarantee that turning
//! the `fpna-obs` layer on changes **nothing** about the simulation —
//! collective outputs, simulated elapsed times, and engine stats stay
//! bitwise identical — plus trace-format tests (a golden snapshot and
//! a schema-shape check) and counter/profile sanity.
//!
//! Every test here toggles process-global observability state, so they
//! all serialize on one mutex and restore the disabled state before
//! returning.

use fpna_collectives::{allreduce_on, Algorithm, NetConfig, Ordering};
use fpna_core::executor::RunExecutor;
use fpna_core::rng::{derive_seed, SplitMix64};
use fpna_net::{LinkSpec, RouteSelect, Topology};
use fpna_obs::{counters, profile, trace};
use std::sync::Mutex;

/// Serializes the obs-toggling tests (the enable flags, trace buffers,
/// counters and phase map are process-global).
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Everything off, everything empty — called on entry and exit of each
/// test so a failure in one cannot poison the next.
fn reset_obs() {
    trace::stop();
    trace::clear();
    counters::set_enabled(false);
    counters::reset();
    profile::set_enabled(false);
    profile::reset();
}

fn topologies(p: usize) -> Vec<Topology> {
    vec![
        Topology::flat_switch(p, LinkSpec::new(500.0, 25.0)),
        Topology::fat_tree_spines(p, 4, 2, LinkSpec::new(500.0, 25.0), LinkSpec::new(1_500.0, 50.0)),
        Topology::hierarchical(
            2,
            p / 2,
            LinkSpec::new(200.0, 100.0),
            LinkSpec::new(500.0, 50.0),
            LinkSpec::new(5_000.0, 25.0),
        ),
    ]
}

fn inputs(p: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..p)
        .map(|_| (0..len).map(|_| rng.next_f64() * 1e8 - 5e7).collect())
        .collect()
}

/// A run's complete observable outcome, bit-exact: value bits,
/// simulated-elapsed bits, and the full engine stats (which include
/// delivery/byte/hop counts and contention tallies, i.e. a fingerprint
/// of the delivery schedule itself).
#[derive(PartialEq, Debug)]
struct Fingerprint {
    value_bits: Vec<u64>,
    elapsed_bits: u64,
    stats: fpna_net::RunStats,
}

fn run_grid(threads: usize) -> Vec<Fingerprint> {
    const P: usize = 8;
    const LEN: usize = 48;
    const RUNS: usize = 3;
    let ranks = inputs(P, LEN, 11);
    let executor = RunExecutor::new(threads);
    let mut out = Vec::new();
    for topo in topologies(P) {
        for load in [0.0, 0.5] {
            for route in [RouteSelect::Fixed, RouteSelect::SeededEcmp { seed: 0xEC }] {
                for alg in [Algorithm::KAryTree { fanout: 2 }, Algorithm::Ring] {
                    let fps = executor.map_runs(RUNS, |i| {
                        let cfg = NetConfig::default()
                            .with_load(load, derive_seed(7, i as u64))
                            .with_route(route);
                        let r = allreduce_on(
                            &topo,
                            &ranks,
                            alg,
                            Ordering::ArrivalOrder { seed: derive_seed(3, i as u64) },
                            &cfg,
                        );
                        Fingerprint {
                            value_bits: r.values.iter().map(|v| v.to_bits()).collect(),
                            elapsed_bits: r.elapsed_ns.to_bits(),
                            stats: r.stats,
                        }
                    });
                    out.extend(fps);
                }
            }
        }
    }
    // One reproducible-ordering cell: exact accumulators must be just
    // as observability-blind as the timing-driven folds.
    let repro = allreduce_on(
        &topologies(P)[1],
        &ranks,
        Algorithm::KAryTree { fanout: 2 },
        Ordering::Reproducible,
        &NetConfig::default().with_load(0.5, 99),
    );
    out.push(Fingerprint {
        value_bits: repro.values.iter().map(|v| v.to_bits()).collect(),
        elapsed_bits: repro.elapsed_ns.to_bits(),
        stats: repro.stats,
    });
    out
}

/// The tentpole guarantee: the full grid of topologies × offered loads
/// {0, 0.5} × route modes × thread counts {1, 4} produces bitwise
/// identical collective outputs, elapsed times, and stats fingerprints
/// whether observability is off or fully on (trace + counters +
/// profile).
#[test]
fn observability_never_changes_results() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let baseline = run_grid(1);
    for threads in [1usize, 4] {
        // Off (the threads=1 pass re-checks pure determinism).
        assert_eq!(run_grid(threads), baseline, "obs off, threads={threads}");
        // Fully on.
        trace::start();
        counters::reset();
        counters::set_enabled(true);
        profile::reset();
        profile::set_enabled(true);
        let traced = run_grid(threads);
        assert!(trace::event_count() > 0, "the grid must actually emit events");
        reset_obs();
        assert_eq!(traced, baseline, "obs on, threads={threads}");
    }
    reset_obs();
}

/// A tiny fixed-seed contended allreduce whose exported trace is
/// byte-for-byte stable. Bless with
/// `FPNA_BLESS=1 cargo test -p fpna-collectives --test obs_trace`.
#[test]
fn golden_trace_snapshot() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let topo = Topology::flat_switch(4, LinkSpec::new(500.0, 25.0));
    let ranks = inputs(4, 6, 5);
    trace::start();
    let out = allreduce_on(
        &topo,
        &ranks,
        Algorithm::KAryTree { fanout: 2 },
        Ordering::ArrivalOrder { seed: 5 },
        &NetConfig::default().with_load(0.5, 21),
    );
    assert!(out.elapsed_ns > 0.0);
    let json = trace::export_json();
    reset_obs();

    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_allreduce.json");
    if std::env::var_os("FPNA_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden).parent().unwrap()).unwrap();
        std::fs::write(golden, &json).unwrap();
        eprintln!("blessed {golden}");
        return;
    }
    let want = std::fs::read_to_string(golden)
        .expect("golden trace missing — bless it with FPNA_BLESS=1");
    assert!(
        json == want,
        "exported trace differs from the golden snapshot; if the event \
         schema changed intentionally, re-bless with FPNA_BLESS=1"
    );
}

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (no external deps) for the schema test.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        self.bytes[self.pos]
    }

    fn eat(&mut self, c: u8) {
        assert_eq!(self.peek(), c, "expected {:?} at byte {}", c as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.skip_ws();
        assert_eq!(&self.bytes[self.pos..self.pos + word.len()], word.as_bytes());
        self.pos += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = self.string();
            self.eat(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                c => panic!("bad object separator {:?}", c as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                c => panic!("bad array separator {:?}", c as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5]).unwrap();
                            out.push(char::from_u32(u32::from_str_radix(hex, 16).unwrap()).unwrap());
                            self.pos += 4;
                        }
                        c => panic!("bad escape \\{}", c as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(s.parse().unwrap_or_else(|_| panic!("bad number {s:?}")))
    }

    fn parse_document(mut self) -> Json {
        let v = self.value();
        self.skip_ws();
        assert_eq!(self.pos, self.bytes.len(), "trailing bytes after JSON document");
        v
    }
}

/// Schema-shape test on a busier trace (fat tree, ECMP, contention,
/// ring + tree protocols): the export must parse as a single JSON
/// document, timestamps must be monotone within every `(pid, tid)`
/// track, and `B`/`E` events must pair up per track like a stack.
#[test]
fn trace_schema_is_well_formed() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let topo =
        Topology::fat_tree_spines(8, 4, 2, LinkSpec::new(500.0, 25.0), LinkSpec::new(1_500.0, 50.0));
    let ranks = inputs(8, 32, 17);
    trace::start();
    for alg in [Algorithm::Ring, Algorithm::SegmentedTree { fanout: 2, segments: 4 }] {
        let cfg = NetConfig::default()
            .with_load(0.5, 33)
            .with_route(RouteSelect::SeededEcmp { seed: 0xEC });
        allreduce_on(&topo, &ranks, alg, Ordering::ArrivalOrder { seed: 2 }, &cfg);
    }
    let json = trace::export_json();
    reset_obs();

    let doc = Parser::new(&json).parse_document();
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ns"));
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(events.len() > 100, "a contended 8-rank trace should be busy, got {}", events.len());

    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut depth: std::collections::BTreeMap<(u64, u64), Vec<String>> = Default::default();
    let mut spans = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("every event has ph");
        let name = ev.get("name").and_then(Json::as_str).expect("every event has a name");
        if ph == "M" {
            assert!(
                matches!(name, "process_name" | "thread_name"),
                "unknown metadata record {name}"
            );
            continue;
        }
        let pid = ev.get("pid").and_then(Json::as_num).expect("pid") as u64;
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
        assert!(ts >= 0.0, "simulated timestamps are non-negative");
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            assert!(ts >= prev, "ts must be monotone on track {track:?}: {prev} then {ts}");
        }
        last_ts.insert(track, ts);
        match ph {
            "X" => {
                let dur = ev.get("dur").and_then(Json::as_num).expect("X events carry dur");
                assert!(dur >= 0.0);
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
            }
            "B" => {
                depth.entry(track).or_default().push(name.to_string());
                spans += 1;
            }
            "E" => {
                let open = depth.get_mut(&track).and_then(Vec::pop);
                assert_eq!(open.as_deref(), Some(name), "E must close the innermost B on {track:?}");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(spans > 0, "the segmented protocols must open chunk spans");
    for (track, open) in depth {
        assert!(open.is_empty(), "unclosed spans {open:?} on track {track:?}");
    }
}

/// Counter bookkeeping must balance: every heap push is popped by the
/// time a collective returns, the pool sees misses (cold) and then
/// hits (recycled), and byte/lookup tallies are live.
#[test]
fn counters_balance_over_a_collective() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let topo = Topology::flat_switch(8, LinkSpec::new(500.0, 25.0));
    let ranks = inputs(8, 64, 23);
    counters::reset();
    counters::set_enabled(true);
    for run in 0..2u64 {
        // Exact recursive doubling clones a send buffer every round
        // and recycles folded partner payloads, so its later rounds
        // pop recycled buffers — both pool counters go live. (The
        // plain-f64 legs simulate timing payload-free and never touch
        // the pool.)
        allreduce_on(
            &topo,
            &ranks,
            Algorithm::RecursiveDoubling,
            Ordering::Reproducible,
            &NetConfig::default().with_load(0.5, run).with_jitter_seed(run),
        );
    }
    let snap = counters::snapshot();
    reset_obs();

    assert!(snap.heap_push > 0);
    assert_eq!(snap.heap_push, snap.heap_pop, "a finished run drains its event heap");
    assert!(snap.heap_peak > 0 && snap.heap_peak <= snap.heap_push);
    assert!(snap.wire_bytes > 0);
    assert!(snap.route_lookups > 0);
    assert!(snap.pool_miss > 0, "first-touch buffers are pool misses");
    assert!(snap.pool_hit > 0, "later rounds must recycle pooled buffers");
}

/// NIC coalescing tallies: sub-messages absorbed into shared wire
/// messages and the payload bytes they carried — zero with the
/// feature off, live with it on, without perturbing the result.
#[test]
fn coalesce_counters_tally_absorbed_messages() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let topo = Topology::flat_switch(8, LinkSpec::new(500.0, 25.0));
    let ranks = inputs(8, 64, 27);
    let alg = Algorithm::SegmentedRing { segments: 32 };
    let off = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &NetConfig::default());

    counters::reset();
    counters::set_enabled(true);
    let quiet = allreduce_on(&topo, &ranks, alg, Ordering::RankOrder, &NetConfig::default());
    let snap_off = counters::snapshot();
    assert_eq!(snap_off.coalesced_msgs, 0, "feature off ⇒ no absorbed messages");
    assert_eq!(snap_off.coalesced_bytes_saved, 0);

    counters::reset();
    let coal = allreduce_on(
        &topo,
        &ranks,
        alg,
        Ordering::RankOrder,
        &NetConfig::default().with_coalesce(4096),
    );
    let snap_on = counters::snapshot();
    reset_obs();

    assert!(snap_on.coalesced_msgs > 0, "batched chunks must be tallied");
    assert!(snap_on.coalesced_bytes_saved > 0, "absorbed payload bytes must be tallied");
    let value_bits = |r: &fpna_collectives::NetAllreduce| {
        r.values.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    };
    assert_eq!(value_bits(&coal), value_bits(&off));
    assert_eq!(value_bits(&quiet), value_bits(&off));
}

/// The NIC-crossing counter mirrors the per-run `RunStats::nic_bytes`
/// tally (foreground payload over cross-group links): zero on a flat
/// switch (one fabric group), live and aggregated across runs on a
/// hierarchical fabric, and smaller for a topology-aware placement
/// than for the oblivious tree it replaces.
#[test]
fn nic_cross_counter_mirrors_run_stats() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let ranks = inputs(8, 64, 31);
    let flat = Topology::flat_switch(8, LinkSpec::new(500.0, 25.0));
    let hier = Topology::hierarchical(
        2,
        4,
        LinkSpec::new(200.0, 100.0),
        LinkSpec::new(500.0, 50.0),
        LinkSpec::new(5_000.0, 25.0),
    );
    let run = |topo: &Topology, alg: Algorithm| {
        allreduce_on(topo, &ranks, alg, Ordering::RankOrder, &NetConfig::default())
    };

    counters::reset();
    counters::set_enabled(true);
    run(&flat, Algorithm::KAryTree { fanout: 2 });
    assert_eq!(counters::snapshot().nic_cross_bytes, 0, "flat switch has no crossings");

    counters::reset();
    let obl = run(&hier, Algorithm::KAryTree { fanout: 2 });
    assert_eq!(counters::snapshot().nic_cross_bytes, obl.stats.nic_bytes);
    let again = run(&hier, Algorithm::KAryTree { fanout: 2 });
    assert_eq!(
        counters::snapshot().nic_cross_bytes,
        obl.stats.nic_bytes + again.stats.nic_bytes,
        "the global counter aggregates across runs"
    );

    counters::reset();
    let aware = run(&hier, Algorithm::Hierarchical { intra: 2, inter: 2 });
    let snap = counters::snapshot();
    reset_obs();
    assert_eq!(snap.nic_cross_bytes, aware.stats.nic_bytes);
    assert!(
        aware.stats.nic_bytes < obl.stats.nic_bytes,
        "aware placement must cross the fabric seam with fewer bytes"
    );
}

/// The profile report answers the ROADMAP's calendar-queue question:
/// one `net.heap_pop@load=…,queue=…` histogram per offered-load level
/// and queue implementation, plus the executor phase and the counter
/// snapshot with the pop-time share.
#[test]
fn profile_report_keys_pop_histograms_by_load() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_obs();

    let topo = Topology::flat_switch(8, LinkSpec::new(500.0, 25.0));
    let ranks = inputs(8, 64, 29);
    counters::reset();
    counters::set_enabled(true);
    profile::reset();
    profile::set_enabled(true);
    RunExecutor::new(2).map_runs(2, |i| {
        for load in [0.0, 0.5] {
            allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout: 2 },
                Ordering::ArrivalOrder { seed: i as u64 },
                &NetConfig::default().with_load(load, 1),
            );
        }
    });
    let report = profile::report_json();
    reset_obs();

    let doc = Parser::new(&report).parse_document();
    let phases = doc.get("phases").expect("report has phases");
    for key in [
        "net.heap_pop@load=0.00,queue=calendar",
        "net.heap_pop@load=0.50,queue=calendar",
        "net.run",
        "executor.run",
    ] {
        let phase = phases
            .get(key)
            .unwrap_or_else(|| panic!("report must contain phase {key:?}:\n{report}"));
        assert!(phase.get("count").and_then(Json::as_num).unwrap() > 0.0);
        let Some(Json::Arr(hist)) = phase.get("hist") else {
            panic!("phase {key:?} must carry a histogram");
        };
        assert!(!hist.is_empty(), "phase {key:?} histogram must have occupied buckets");
    }
    let c = doc.get("counters").expect("report has counters");
    assert!(c.get("heap_pop").and_then(Json::as_num).unwrap() > 0.0);
    let share = c
        .get("heap_pop_wall_share")
        .and_then(Json::as_num)
        .expect("pop share available when both wall totals were measured");
    assert!((0.0..=1.0).contains(&share), "share {share} must be a fraction");
}
