//! Property tests for the collectives — the two invariants the ISSUE
//! pins down:
//!
//! 1. every algorithm × ordering × execution path (in-memory shuffle
//!    fallback and event-driven network simulation) agrees with the
//!    exact column sums to a conditioning-aware tolerance, for
//!    arbitrary rank counts, vector lengths and fanouts;
//! 2. the `Reproducible` ordering is **bitwise** identical across all
//!    algorithms *and* all net-sim jitter seeds and topologies;
//! 3. segmentation is a pure timing knob: the segmented ring/tree are
//!    bitwise equal to their unsegmented bases — under `Reproducible`
//!    at every segment count (the ISSUE's {1, 2, 7, 16}), and for the
//!    order-fixed ring under every ordering.

use proptest::prelude::*;

use fpna_collectives::{allreduce, allreduce_on, Algorithm, NetConfig, Ordering};
use fpna_core::rng::SplitMix64;
use fpna_core::RunExecutor;
use fpna_net::{LinkSpec, RouteSelect, Topology};
use fpna_summation::exact::exact_sum;

fn make_ranks(p: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..p)
        .map(|_| (0..m).map(|_| rng.next_f64() * 2e6 - 1e6).collect())
        .collect()
}

fn column_exact(ranks: &[Vec<f64>], i: usize) -> f64 {
    exact_sum(&ranks.iter().map(|r| r[i]).collect::<Vec<_>>())
}

/// |out[i] − exact[i]| must stay within a tolerance scaled by the
/// column's absolute mass (non-associativity moves low bits, not
/// magnitudes).
fn assert_close(
    out: &[f64],
    ranks: &[Vec<f64>],
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    for i in 0..out.len() {
        let want = column_exact(ranks, i);
        let scale: f64 = ranks.iter().map(|r| r[i].abs()).sum::<f64>().max(1.0);
        prop_assert!(
            (out[i] - want).abs() <= 1e-12 * scale,
            "{label} at column {i}: {} vs exact {want}",
            out[i]
        );
    }
    Ok(())
}

/// Hierarchical topology shaped to hold exactly `p` ranks.
fn hier_for(p: usize) -> Topology {
    // Split p into nodes × ranks-per-node with the largest power-of-two
    // node count ≤ 4 that divides p.
    let nodes = [4usize, 2, 1].into_iter().find(|&n| p.is_multiple_of(n)).unwrap();
    Topology::hierarchical(
        nodes,
        p / nodes,
        LinkSpec::new(200.0, 100.0),
        LinkSpec::new(500.0, 50.0),
        LinkSpec::new(5_000.0, 25.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1, in-memory path: arbitrary p, m, fanout.
    #[test]
    fn every_algorithm_agrees_with_exact_sum(
        p in 1usize..24,
        m in 1usize..48,
        fanout in 2usize..6,
        seed in any::<u64>(),
    ) {
        let ranks = make_ranks(p, m, seed);
        let orderings = [
            Ordering::RankOrder,
            Ordering::ArrivalOrder { seed: seed ^ 0x5A },
            Ordering::Reproducible,
        ];
        for ord in orderings {
            for alg in [Algorithm::Ring, Algorithm::KAryTree { fanout }] {
                let out = allreduce(&ranks, alg, ord);
                assert_close(&out, &ranks, &format!("{alg:?}/{ord:?}"))?;
            }
        }
        // recursive doubling needs a power-of-two rank count
        let p2 = p.next_power_of_two();
        let ranks2 = make_ranks(p2, m, seed ^ 1);
        for ord in orderings {
            let out = allreduce(&ranks2, Algorithm::RecursiveDoubling, ord);
            assert_close(&out, &ranks2, &format!("RecursiveDoubling/{ord:?}"))?;
        }
    }

    /// Invariant 1, network path: the event-driven protocols compute
    /// the same sums on flat and hierarchical fabrics under jitter.
    #[test]
    fn net_sim_agrees_with_exact_sum(
        p in 1usize..12,
        m in 1usize..32,
        fanout in 2usize..6,
        seed in any::<u64>(),
    ) {
        let p = p.next_power_of_two(); // admit recursive doubling too
        let ranks = make_ranks(p, m, seed);
        let cfg = NetConfig::default();
        for topo in [Topology::flat_switch(p, LinkSpec::new(500.0, 25.0)), hier_for(p)] {
            for alg in [
                Algorithm::Ring,
                Algorithm::KAryTree { fanout },
                Algorithm::RecursiveDoubling,
            ] {
                for ord in [
                    Ordering::RankOrder,
                    Ordering::ArrivalOrder { seed: seed ^ 0xA5 },
                    Ordering::Reproducible,
                ] {
                    let out = allreduce_on(&topo, &ranks, alg, ord, &cfg);
                    assert_close(
                        &out.values,
                        &ranks,
                        &format!("{alg:?}/{ord:?} on {}", topo.name()),
                    )?;
                }
            }
        }
    }

    /// Invariant 2: `Reproducible` is bitwise identical across every
    /// algorithm, both execution paths, both topologies, and any
    /// jitter seed.
    #[test]
    fn reproducible_is_bitwise_stable_everywhere(
        p_exp in 0u32..4,
        rpn in 1usize..5,
        m in 1usize..32,
        seed in any::<u64>(),
        jitter_seed in any::<u64>(),
    ) {
        let p = (1usize << p_exp) * rpn.next_power_of_two();
        let ranks = make_ranks(p, m, seed);
        let reference: Vec<u64> = allreduce(&ranks, Algorithm::Ring, Ordering::Reproducible)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let algorithms = [
            Algorithm::Ring,
            Algorithm::KAryTree { fanout: 3 },
            Algorithm::RecursiveDoubling,
        ];
        for alg in algorithms {
            let mem: Vec<u64> = allreduce(&ranks, alg, Ordering::Reproducible)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&mem, &reference, "in-memory {:?}", alg);
        }
        let cfg = NetConfig::default();
        for topo in [Topology::flat_switch(p, LinkSpec::new(500.0, 25.0)), hier_for(p)] {
            for alg in algorithms {
                for js in [jitter_seed, jitter_seed ^ 0xFFFF_0000] {
                    let out = allreduce_on(
                        &topo,
                        &ranks,
                        alg,
                        Ordering::Reproducible,
                        &cfg.with_jitter_seed(js),
                    );
                    let got: Vec<u64> = out.values.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(
                        &got,
                        &reference,
                        "{:?} on {} with jitter seed {}",
                        alg,
                        topo.name(),
                        js
                    );
                }
            }
        }
    }

    /// Invariant 3, reproducible leg: segmented allreduce is bitwise
    /// equal to unsegmented under `Reproducible` ordering at segment
    /// counts {1, 2, 7, 16}, across fabrics and jitter seeds.
    #[test]
    fn segmented_reproducible_is_bitwise_equal_to_unsegmented(
        p in 1usize..12,
        m in 1usize..40,
        fanout in 2usize..5,
        seed in any::<u64>(),
        jitter_seed in any::<u64>(),
    ) {
        let ranks = make_ranks(p, m, seed);
        let cfg = NetConfig::default().with_jitter_seed(jitter_seed);
        for topo in [Topology::flat_switch(p, LinkSpec::new(500.0, 25.0)), hier_for(p)] {
            let ring_ref: Vec<u64> =
                allreduce_on(&topo, &ranks, Algorithm::Ring, Ordering::Reproducible, &cfg)
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
            let tree_ref: Vec<u64> = allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout },
                Ordering::Reproducible,
                &cfg,
            )
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect();
            prop_assert_eq!(&ring_ref, &tree_ref, "reproducible is algorithm-independent");
            for segments in [1usize, 2, 7, 16] {
                let ring = allreduce_on(
                    &topo,
                    &ranks,
                    Algorithm::SegmentedRing { segments },
                    Ordering::Reproducible,
                    &cfg,
                );
                let got: Vec<u64> = ring.values.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&got, &ring_ref, "ring k={} on {}", segments, topo.name());
                let tree = allreduce_on(
                    &topo,
                    &ranks,
                    Algorithm::SegmentedTree { fanout, segments },
                    Ordering::Reproducible,
                    &cfg,
                );
                let got: Vec<u64> = tree.values.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&got, &tree_ref, "tree k={} on {}", segments, topo.name());
            }
        }
    }

    /// Invariant 3, order-fixed leg: the ring's per-element combine
    /// order is the rotation at any chunking, so the segmented ring's
    /// values match the plain ring bitwise under *every* ordering (and
    /// the segmented tree matches under rank order, where its fold
    /// order is deterministic).
    #[test]
    fn segmented_values_match_unsegmented_where_order_is_fixed(
        p in 2usize..10,
        m in 1usize..40,
        segments in 1usize..20,
        seed in any::<u64>(),
    ) {
        let ranks = make_ranks(p, m, seed);
        let cfg = NetConfig::default();
        let topo = hier_for(p);
        for ord in [
            Ordering::RankOrder,
            Ordering::ArrivalOrder { seed: seed ^ 0x33 },
        ] {
            let base = allreduce_on(&topo, &ranks, Algorithm::Ring, ord, &cfg);
            let seg = allreduce_on(
                &topo,
                &ranks,
                Algorithm::SegmentedRing { segments },
                ord,
                &cfg,
            );
            prop_assert_eq!(
                seg.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                base.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "ring {:?} k={}",
                ord,
                segments
            );
        }
        let base = allreduce_on(
            &topo,
            &ranks,
            Algorithm::KAryTree { fanout: 3 },
            Ordering::RankOrder,
            &cfg,
        );
        let seg = allreduce_on(
            &topo,
            &ranks,
            Algorithm::SegmentedTree { fanout: 3, segments },
            Ordering::RankOrder,
            &cfg,
        );
        prop_assert_eq!(
            seg.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            base.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "tree rank-order k={}",
            segments
        );
    }

    /// NIC coalescing is value-invisible wherever it acts: at any
    /// threshold, chunk count and ordering, the coalesced ring and
    /// tree produce bitwise the uncoalesced values (the tree's
    /// arrival-order leg gates coalescing off internally and is
    /// asserted byte-identical in timing too by the unit suite).
    #[test]
    fn coalesced_values_match_uncoalesced(
        p in 2usize..10,
        m in 1usize..40,
        segments in 1usize..20,
        threshold in prop_oneof![Just(8u64), 64u64..4096],
        seed in any::<u64>(),
    ) {
        let ranks = make_ranks(p, m, seed);
        let topo = hier_for(p);
        let base_cfg = NetConfig::default();
        let coal_cfg = base_cfg.with_coalesce(threshold);
        for ord in [
            Ordering::RankOrder,
            Ordering::ArrivalOrder { seed: seed ^ 0x77 },
            Ordering::Reproducible,
        ] {
            for alg in [
                Algorithm::SegmentedRing { segments },
                Algorithm::SegmentedTree { fanout: 3, segments },
            ] {
                let base = allreduce_on(&topo, &ranks, alg, ord, &base_cfg);
                let coal = allreduce_on(&topo, &ranks, alg, ord, &coal_cfg);
                prop_assert_eq!(
                    coal.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    base.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{:?} {:?} k={} threshold={}",
                    alg,
                    ord,
                    segments,
                    threshold
                );
            }
        }
    }

    /// Sweeping a *contended* fabric (background tenants at nonzero
    /// offered load, optionally seeded-ECMP-routed) is invariant to how
    /// the runs are executed: serial, many worker threads, and any
    /// `--run-batch` chunking all produce bitwise-identical outputs —
    /// values and simulated elapsed time — run for run.
    #[test]
    fn contended_sweeps_are_thread_and_batch_invariant(
        p_exp in 2u32..5,
        m in 1usize..24,
        seed in any::<u64>(),
        load in 0.1..0.9f64,
        ecmp in any::<bool>(),
        threads in 2usize..6,
        batch in 2usize..5,
    ) {
        let p = 1usize << p_exp;
        let ranks = make_ranks(p, m, seed);
        let topo = Topology::fat_tree_spines(
            p,
            4,
            2,
            LinkSpec::new(500.0, 25.0),
            LinkSpec::new(1_500.0, 50.0),
        );
        let route = if ecmp {
            RouteSelect::SeededEcmp { seed: seed ^ 0xEC }
        } else {
            RouteSelect::Fixed
        };
        let run = |s: u64| {
            let cfg = NetConfig { jitter_frac: 0.2, ..NetConfig::default() }
                .with_jitter_seed(s)
                .with_load(load, s ^ 0xB6)
                .with_route(route);
            let out = allreduce_on(
                &topo,
                &ranks,
                Algorithm::KAryTree { fanout: 3 },
                Ordering::ArrivalOrder { seed: s },
                &cfg,
            );
            (
                out.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out.elapsed_ns.to_bits(),
            )
        };
        let runs = 8usize;
        let serial = RunExecutor::serial().map_runs(runs, |i| run(i as u64));
        let threaded = RunExecutor::new(threads).map_runs(runs, |i| run(i as u64));
        prop_assert_eq!(&serial, &threaded, "thread count must not change contended runs");
        let batched =
            RunExecutor::new(threads).with_batch(batch).map_runs(runs, |i| run(i as u64));
        prop_assert_eq!(&serial, &batched, "run batching must not change contended runs");
    }
}
