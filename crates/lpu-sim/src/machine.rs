//! The LPU executor: compile (shape-check + cycle accounting) and run.
//!
//! Execution is a straight walk of the instruction list — there is no
//! scheduler, no atomics, no arbitration, so the machine is bitwise
//! deterministic by construction. The cycle count is computed entirely
//! at compile time from shapes and the [`crate::spec::LpuSpec`].

use fpna_core::error::FpnaError;
use fpna_core::Result;

use crate::program::{Inst, Program, TensorShape};
use crate::spec::LpuSpec;

/// A dense row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2 {
    /// Shape.
    pub shape: TensorShape,
    /// Row-major data, `shape.len()` elements.
    pub data: Vec<f64>,
}

impl Tensor2 {
    /// Construct, checking the element count.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor2 {
            shape: TensorShape::new(rows, cols),
            data,
        }
    }

    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor2 {
            shape: TensorShape::new(rows, cols),
            data: vec![0.0; rows * cols],
        }
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        let c = self.shape.cols;
        &self.data[r * c..(r + 1) * c]
    }
}

/// A compiled program: validated, with its ahead-of-time cycle count.
#[derive(Debug, Clone)]
pub struct Compiled {
    program: Program,
    cycles: f64,
    spec: LpuSpec,
}

impl Compiled {
    /// Total cycles, known before execution.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Runtime in microseconds — a constant, not a measurement, which
    /// is why the paper's Groq numbers carry no error bars.
    pub fn time_us(&self) -> f64 {
        self.spec.cycles_to_us(self.cycles)
    }

    /// Execute on the given inputs (one tensor per declared input, in
    /// declaration order). Returns the declared outputs in order.
    pub fn run(&self, inputs: &[Tensor2]) -> Result<Vec<Tensor2>> {
        let p = &self.program;
        if inputs.len() != p.inputs.len() {
            return Err(FpnaError::shape(format!(
                "program expects {} inputs, got {}",
                p.inputs.len(),
                inputs.len()
            )));
        }
        let mut slots: Vec<Option<Tensor2>> = vec![None; p.shapes.len()];
        for (id, t) in p.inputs.iter().zip(inputs) {
            let want = p.shapes[id.0];
            if t.shape != want {
                return Err(FpnaError::shape(format!(
                    "input {} expects {}x{}, got {}x{}",
                    id.0, want.rows, want.cols, t.shape.rows, t.shape.cols
                )));
            }
            slots[id.0] = Some(t.clone());
        }
        for inst in &p.insts {
            exec_inst(inst, p, &mut slots);
        }
        let mut outs = Vec::with_capacity(p.outputs.len());
        for id in &p.outputs {
            let t = slots[id.0]
                .clone()
                .ok_or_else(|| FpnaError::config("output tensor never produced"))?;
            outs.push(t);
        }
        Ok(outs)
    }
}

fn get(slots: &[Option<Tensor2>], id: crate::program::TensorId) -> &Tensor2 {
    slots[id.0]
        .as_ref()
        .expect("instruction consumed an undefined tensor (compile should prevent this)")
}

fn exec_inst(inst: &Inst, p: &Program, slots: &mut [Option<Tensor2>]) {
    match inst {
        Inst::MatMul { a, b, out } => {
            let (ta, tb) = (get(slots, *a).clone(), get(slots, *b).clone());
            let (m, k, n) = (ta.shape.rows, ta.shape.cols, tb.shape.cols);
            let mut o = Tensor2::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    let aik = ta.data[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &tb.data[kk * n..(kk + 1) * n];
                    let orow = &mut o.data[i * n..(i + 1) * n];
                    for j in 0..n {
                        orow[j] += aik * brow[j];
                    }
                }
            }
            slots[out.0] = Some(o);
        }
        Inst::Add { a, b, out } => {
            let (ta, tb) = (get(slots, *a), get(slots, *b));
            let data = ta
                .data
                .iter()
                .zip(&tb.data)
                .map(|(&x, &y)| x + y)
                .collect();
            slots[out.0] = Some(Tensor2 {
                shape: ta.shape,
                data,
            });
        }
        Inst::AddRowBroadcast { a, bias, out } => {
            let (ta, tb) = (get(slots, *a), get(slots, *bias));
            let cols = ta.shape.cols;
            let mut data = ta.data.clone();
            for row in data.chunks_mut(cols) {
                for (x, &b) in row.iter_mut().zip(&tb.data) {
                    *x += b;
                }
            }
            slots[out.0] = Some(Tensor2 {
                shape: ta.shape,
                data,
            });
        }
        Inst::Relu { a, out } => {
            let ta = get(slots, *a);
            let data = ta.data.iter().map(|&x| x.max(0.0)).collect();
            slots[out.0] = Some(Tensor2 {
                shape: ta.shape,
                data,
            });
        }
        Inst::Scale { a, factor, out } => {
            let ta = get(slots, *a);
            let data = ta.data.iter().map(|&x| x * factor).collect();
            slots[out.0] = Some(Tensor2 {
                shape: ta.shape,
                data,
            });
        }
        Inst::GatherRows { src, index, out } => {
            let ts = get(slots, *src);
            let cols = ts.shape.cols;
            let mut data = Vec::with_capacity(index.len() * cols);
            for &i in index {
                data.extend_from_slice(ts.row(i as usize));
            }
            slots[out.0] = Some(Tensor2 {
                shape: p.shape(*out),
                data,
            });
        }
        Inst::ScatterAddRows { src, index, out } => {
            let ts = get(slots, *src).clone();
            let shape = p.shape(*out);
            let cols = shape.cols;
            let mut o = Tensor2::zeros(shape.rows, shape.cols);
            // k ascending: the statically scheduled, deterministic order.
            for (k, &dst) in index.iter().enumerate() {
                let srow = ts.row(k);
                let orow = &mut o.data[dst as usize * cols..(dst as usize + 1) * cols];
                for (x, &s) in orow.iter_mut().zip(srow) {
                    *x += s;
                }
            }
            slots[out.0] = Some(o);
        }
        Inst::DivRowCounts { a, counts, out } => {
            let ta = get(slots, *a);
            let cols = ta.shape.cols;
            let mut data = ta.data.clone();
            for (r, row) in data.chunks_mut(cols).enumerate() {
                let c = counts[r];
                if c > 0 {
                    let inv = 1.0 / c as f64;
                    for x in row.iter_mut() {
                        *x *= inv;
                    }
                }
            }
            slots[out.0] = Some(Tensor2 {
                shape: ta.shape,
                data,
            });
        }
        Inst::ReduceSumAll { a, out } => {
            let ta = get(slots, *a);
            let v = fixed_tree_sum(&ta.data);
            slots[out.0] = Some(Tensor2::new(1, 1, vec![v]));
        }
        Inst::SoftmaxRows { a, out } => {
            let ta = get(slots, *a);
            let cols = ta.shape.cols;
            let mut data = ta.data.clone();
            for row in data.chunks_mut(cols) {
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut denom = 0.0;
                for x in row.iter_mut() {
                    *x = (*x - max).exp();
                    denom += *x;
                }
                for x in row.iter_mut() {
                    *x /= denom;
                }
            }
            slots[out.0] = Some(Tensor2 {
                shape: ta.shape,
                data,
            });
        }
    }
}

/// Fixed pairwise tree sum — the machine's only reduction order.
fn fixed_tree_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        n => {
            let mid = n / 2;
            fixed_tree_sum(&xs[..mid]) + fixed_tree_sum(&xs[mid..])
        }
    }
}

/// The LPU device: compiles programs against its spec.
#[derive(Debug, Clone)]
pub struct Lpu {
    spec: LpuSpec,
}

impl Lpu {
    /// Device with the given spec.
    pub fn new(spec: LpuSpec) -> Self {
        Lpu { spec }
    }

    /// The machine spec.
    pub fn spec(&self) -> &LpuSpec {
        &self.spec
    }

    /// Compile: validate and compute the ahead-of-time cycle count.
    pub fn compile(&self, program: Program) -> Result<Compiled> {
        program.validate()?;
        let mut cycles = self.spec.invoke_cycles;
        for inst in &program.insts {
            cycles += self.inst_cycles(inst, &program);
        }
        Ok(Compiled {
            program,
            cycles,
            spec: self.spec.clone(),
        })
    }

    fn inst_cycles(&self, inst: &Inst, p: &Program) -> f64 {
        let lanes = self.spec.vector_lanes as f64;
        let dense = |shape: TensorShape| (shape.len() as f64 / lanes).ceil();
        let d = self.spec.dispatch_cycles;
        match inst {
            Inst::MatMul { a, b, out } => {
                let (sa, sb) = (p.shape(*a), p.shape(*b));
                let macs = sa.rows as f64 * sa.cols as f64 * sb.cols as f64;
                let _ = out;
                d + macs / self.spec.matmul_macs_per_cycle + dense(p.shape(*out))
            }
            Inst::Add { out, .. }
            | Inst::AddRowBroadcast { a: _, bias: _, out }
            | Inst::Relu { a: _, out }
            | Inst::Scale { a: _, factor: _, out }
            | Inst::SoftmaxRows { a: _, out } => d + dense(p.shape(*out)),
            Inst::GatherRows { out, .. } | Inst::ScatterAddRows { out, .. } => {
                d + dense(p.shape(*out)) * self.spec.scatter_stream_factor
            }
            Inst::DivRowCounts { out, .. } => d + dense(p.shape(*out)),
            Inst::ReduceSumAll { a, .. } => d + dense(p.shape(*a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TensorShape;

    fn spec() -> LpuSpec {
        LpuSpec::groq_like()
    }

    #[test]
    fn matmul_executes() {
        let mut p = Program::new();
        let a = p.input(TensorShape::new(2, 3));
        let b = p.input(TensorShape::new(3, 2));
        let y = p.matmul(a, b);
        p.output(y);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        let ta = Tensor2::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tb = Tensor2::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let out = compiled.run(&[ta, tb]).unwrap();
        assert_eq!(out[0].data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(3, 2));
        let g = p.gather_rows(x, vec![2, 0, 2]);
        let s = p.scatter_add_rows(g, vec![0, 1, 0], 2);
        p.output(s);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        let tx = Tensor2::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = compiled.run(&[tx]).unwrap();
        // row0 = x[2] + x[2] = (10, 12); row1 = x[0] = (1, 2)
        assert_eq!(out[0].data, vec![10.0, 12.0, 1.0, 2.0]);
    }

    #[test]
    fn execution_is_bitwise_deterministic() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(16, 16));
        let w = p.input(TensorShape::new(16, 16));
        let y = p.matmul(x, w);
        let r = p.relu(y);
        let s = p.reduce_sum_all(r);
        p.output(s);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        let mk = |seed: u64| {
            let mut g = fpna_core::rng::SplitMix64::new(seed);
            Tensor2::new(16, 16, (0..256).map(|_| g.next_f64() - 0.5).collect())
        };
        let (a, b) = (mk(1), mk(2));
        let first = compiled.run(&[a.clone(), b.clone()]).unwrap();
        for _ in 0..5 {
            let again = compiled.run(&[a.clone(), b.clone()]).unwrap();
            assert_eq!(
                first[0].data[0].to_bits(),
                again[0].data[0].to_bits(),
                "no scheduler, no variability"
            );
        }
    }

    #[test]
    fn cycles_known_before_execution_and_fixed() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(100, 10));
        let s = p.reduce_sum_all(x);
        p.output(s);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        let c = compiled.cycles();
        assert!(c > 0.0);
        assert!(compiled.time_us() > 0.0);
        // still the same after running — timing is static
        let t = Tensor2::zeros(100, 10);
        compiled.run(&[t]).unwrap();
        assert_eq!(compiled.cycles(), c);
    }

    #[test]
    fn wrong_inputs_are_rejected() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(2, 2));
        let s = p.reduce_sum_all(x);
        p.output(s);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        assert!(compiled.run(&[]).is_err());
        assert!(compiled.run(&[Tensor2::zeros(3, 2)]).is_err());
    }

    #[test]
    fn softmax_rows_normalises() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(2, 3));
        let y = p.softmax_rows(x);
        p.output(y);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        let t = Tensor2::new(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let out = compiled.run(&[t]).unwrap();
        for r in 0..2 {
            let row_sum: f64 = out[0].row(r).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_aggregation_building_blocks() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(2, 2));
        let m = p.div_row_counts(x, vec![2, 0]);
        p.output(m);
        let compiled = Lpu::new(spec()).compile(p).unwrap();
        let t = Tensor2::new(2, 2, vec![4.0, 6.0, 1.0, 1.0]);
        let out = compiled.run(&[t]).unwrap();
        assert_eq!(out[0].data, vec![2.0, 3.0, 1.0, 1.0]); // zero count passes through
    }
}
