//! The LPU instruction set and program builder.
//!
//! Programs are built ahead of time: every tensor shape, every
//! gather/scatter index set, and therefore every instruction's cycle
//! cost is known before the first input byte arrives. The builder
//! checks shapes at construction ("compile time"), so a mis-shaped
//! graph never reaches the executor.

use fpna_core::error::FpnaError;
use fpna_core::Result;

/// Shape of a 2-D tensor (`rows × cols`). 1-D data is `1 × n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl TensorShape {
    /// New shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        TensorShape { rows, cols }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` for zero-element shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Identifier of a tensor slot inside a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(pub(crate) usize);

/// One statically scheduled instruction.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// `out = a × b` (matrix product).
    MatMul {
        a: TensorId,
        b: TensorId,
        out: TensorId,
    },
    /// `out = a + b` elementwise.
    Add {
        a: TensorId,
        b: TensorId,
        out: TensorId,
    },
    /// `out[r, :] = a[r, :] + bias[0, :]` (row broadcast).
    AddRowBroadcast {
        a: TensorId,
        bias: TensorId,
        out: TensorId,
    },
    /// `out = max(a, 0)`.
    Relu { a: TensorId, out: TensorId },
    /// `out = a * factor`.
    Scale {
        a: TensorId,
        factor: f64,
        out: TensorId,
    },
    /// `out[k, :] = src[index[k], :]` — static gather.
    GatherRows {
        src: TensorId,
        index: Vec<u32>,
        out: TensorId,
    },
    /// `out[index[k], :] += src[k, :]`, `k` ascending — static,
    /// deterministic scatter-add.
    ScatterAddRows {
        src: TensorId,
        index: Vec<u32>,
        out: TensorId,
    },
    /// `out[r, :] = a[r, :] / counts[r]` with `counts[r] == 0` rows
    /// passed through — the mean-aggregation divide.
    DivRowCounts {
        a: TensorId,
        counts: Vec<u32>,
        out: TensorId,
    },
    /// `out[0, 0] = Σ a` via the fixed pairwise tree.
    ReduceSumAll { a: TensorId, out: TensorId },
    /// Row-wise softmax (for classifier heads).
    SoftmaxRows { a: TensorId, out: TensorId },
}

/// A statically scheduled LPU program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub(crate) shapes: Vec<TensorShape>,
    pub(crate) inputs: Vec<TensorId>,
    pub(crate) outputs: Vec<TensorId>,
    pub(crate) insts: Vec<Inst>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Program::default()
    }

    fn alloc(&mut self, shape: TensorShape) -> TensorId {
        let id = TensorId(self.shapes.len());
        self.shapes.push(shape);
        id
    }

    /// Shape of a tensor slot.
    pub fn shape(&self, id: TensorId) -> TensorShape {
        self.shapes[id.0]
    }

    /// Declare an external input.
    pub fn input(&mut self, shape: TensorShape) -> TensorId {
        let id = self.alloc(shape);
        self.inputs.push(id);
        id
    }

    /// Mark a tensor as a program output.
    pub fn output(&mut self, id: TensorId) {
        self.outputs.push(id);
    }

    /// Matrix product `a × b`.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch — shapes are static, so a
    /// mismatch is a programming error caught at build time.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa.cols, sb.rows, "matmul inner dimension mismatch");
        let out = self.alloc(TensorShape::new(sa.rows, sb.cols));
        self.insts.push(Inst::MatMul { a, b, out });
        out
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.shape(a), self.shape(b), "add shape mismatch");
        let out = self.alloc(self.shape(a));
        self.insts.push(Inst::Add { a, b, out });
        out
    }

    /// Add a `1 × cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: TensorId, bias: TensorId) -> TensorId {
        let (sa, sb) = (self.shape(a), self.shape(bias));
        assert_eq!(sb.rows, 1, "bias must be a single row");
        assert_eq!(sa.cols, sb.cols, "bias width mismatch");
        let out = self.alloc(sa);
        self.insts.push(Inst::AddRowBroadcast { a, bias, out });
        out
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let out = self.alloc(self.shape(a));
        self.insts.push(Inst::Relu { a, out });
        out
    }

    /// Multiply by a compile-time scalar.
    pub fn scale(&mut self, a: TensorId, factor: f64) -> TensorId {
        let out = self.alloc(self.shape(a));
        self.insts.push(Inst::Scale { a, factor, out });
        out
    }

    /// Static gather: `out[k, :] = src[index[k], :]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range (indices are compile-time
    /// constants on this architecture).
    pub fn gather_rows(&mut self, src: TensorId, index: Vec<u32>) -> TensorId {
        let s = self.shape(src);
        assert!(
            index.iter().all(|&i| (i as usize) < s.rows),
            "gather index out of range"
        );
        let out = self.alloc(TensorShape::new(index.len(), s.cols));
        self.insts.push(Inst::GatherRows { src, index, out });
        out
    }

    /// Static deterministic scatter-add into a fresh `out_rows × cols`
    /// zero tensor: `out[index[k], :] += src[k, :]` for `k` ascending.
    ///
    /// # Panics
    ///
    /// Panics if `index.len()` differs from `src`'s row count or any
    /// index exceeds `out_rows`.
    pub fn scatter_add_rows(&mut self, src: TensorId, index: Vec<u32>, out_rows: usize) -> TensorId {
        let s = self.shape(src);
        assert_eq!(index.len(), s.rows, "one index per source row");
        assert!(
            index.iter().all(|&i| (i as usize) < out_rows),
            "scatter index out of range"
        );
        let out = self.alloc(TensorShape::new(out_rows, s.cols));
        self.insts.push(Inst::ScatterAddRows { src, index, out });
        out
    }

    /// Divide each row by a compile-time count (zero counts pass the
    /// row through) — the "mean" half of mean-aggregation.
    pub fn div_row_counts(&mut self, a: TensorId, counts: Vec<u32>) -> TensorId {
        let s = self.shape(a);
        assert_eq!(counts.len(), s.rows, "one count per row");
        let out = self.alloc(s);
        self.insts.push(Inst::DivRowCounts { a, counts, out });
        out
    }

    /// Full reduction to a `1 × 1` tensor via the fixed pairwise tree.
    pub fn reduce_sum_all(&mut self, a: TensorId) -> TensorId {
        let out = self.alloc(TensorShape::new(1, 1));
        self.insts.push(Inst::ReduceSumAll { a, out });
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: TensorId) -> TensorId {
        let out = self.alloc(self.shape(a));
        self.insts.push(Inst::SoftmaxRows { a, out });
        out
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Validate the program is executable (has outputs, outputs
    /// defined). Called by the machine's `compile`.
    pub(crate) fn validate(&self) -> Result<()> {
        if self.outputs.is_empty() {
            return Err(FpnaError::config("program has no outputs"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_flow_through_builder() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(4, 8));
        let w = p.input(TensorShape::new(8, 3));
        let y = p.matmul(x, w);
        assert_eq!(p.shape(y), TensorShape::new(4, 3));
        let r = p.relu(y);
        assert_eq!(p.shape(r), TensorShape::new(4, 3));
        let g = p.gather_rows(r, vec![0, 0, 2]);
        assert_eq!(p.shape(g), TensorShape::new(3, 3));
        let s = p.scatter_add_rows(g, vec![1, 1, 0], 2);
        assert_eq!(p.shape(s), TensorShape::new(2, 3));
        p.output(s);
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_mismatch_panics() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(4, 8));
        let w = p.input(TensorShape::new(7, 3));
        p.matmul(x, w);
    }

    #[test]
    #[should_panic(expected = "gather index")]
    fn gather_oob_panics() {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(2, 2));
        p.gather_rows(x, vec![5]);
    }

    #[test]
    fn no_outputs_fails_validation() {
        let mut p = Program::new();
        let _ = p.input(TensorShape::new(1, 1));
        assert!(p.validate().is_err());
    }

    #[test]
    fn shape_helpers() {
        let s = TensorShape::new(3, 4);
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
        assert!(TensorShape::new(0, 5).is_empty());
    }
}
