//! # fpna-lpu-sim
//!
//! A deterministic, statically scheduled accelerator in the style of
//! the Groq LPU (Abts et al., ISCA 2020) — the paper's §IV/§V hardware
//! answer to floating-point non-associativity.
//!
//! The defining properties, reproduced here *by construction*:
//!
//! 1. **No runtime arbitration.** A program is an ordered list of
//!    instructions with all data movement (including gather/scatter
//!    index sets) resolved at compile time. Execution follows program
//!    order; reductions use a fixed tree. Two executions of the same
//!    compiled program on the same inputs are bitwise identical —
//!    there is no scheduler to vary.
//! 2. **Ahead-of-time timing.** Every instruction has a cycle cost
//!    that depends only on shapes, so a compiled program's runtime is a
//!    *number computed at compile time*, not a measurement — which is
//!    why the paper reports Groq runtimes without error bars.
//!
//! Three modules:
//!
//! * [`spec`] — machine parameters (clock, vector lanes, MAC array,
//!   per-instruction dispatch costs), calibrated to the Groq columns of
//!   Tables 6 and 8;
//! * [`program`] — the instruction set and [`program::Program`]
//!   builder, with static shape checking and cycle accounting;
//! * [`machine`] — the executor.
//!
//! ```
//! use fpna_lpu_sim::{program::{Program, TensorShape}, machine::Lpu, spec::LpuSpec};
//!
//! let mut p = Program::new();
//! let x = p.input(TensorShape::new(2, 3));
//! let w = p.input(TensorShape::new(3, 2));
//! let y = p.matmul(x, w);
//! p.output(y);
//! let lpu = Lpu::new(LpuSpec::groq_like());
//! let compiled = lpu.compile(p).unwrap();
//! assert!(compiled.cycles() > 0.0); // known before execution
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod machine;
pub mod program;
pub mod spec;

pub use machine::{Lpu, Tensor2};
pub use program::{Program, TensorShape};
pub use spec::LpuSpec;
