//! Machine parameters of the simulated LPU.

use serde::{Deserialize, Serialize};

/// Cost/shape parameters of the accelerator. The `groq_like` preset is
/// calibrated so the compiled cycle counts for the paper's kernels land
//  near the Groq columns of Tables 6 and 8 (see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpuSpec {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Vector lanes processed per cycle by the streaming units.
    pub vector_lanes: u32,
    /// Multiply-accumulate operations per cycle of the matrix unit.
    pub matmul_macs_per_cycle: f64,
    /// Fixed dispatch cost charged once per instruction (instruction
    /// fetch, stream setup), in cycles.
    pub dispatch_cycles: f64,
    /// Fixed cost charged once per *program* invocation (host call,
    /// DMA-in/out bookkeeping), in cycles.
    pub invoke_cycles: f64,
    /// Extra per-element cost factor for gather/scatter streams
    /// relative to dense streams (on-chip permutation network setup).
    pub scatter_stream_factor: f64,
}

impl LpuSpec {
    /// Parameters in the neighbourhood of the GroqChip: 0.9 GHz, 320
    /// lanes, a 320×320 MAC array. Dispatch/invoke overheads are
    /// calibrated against the paper's Table 6 kernel runtimes.
    pub fn groq_like() -> Self {
        LpuSpec {
            clock_ghz: 0.9,
            vector_lanes: 320,
            matmul_macs_per_cycle: 320.0 * 320.0,
            dispatch_cycles: 120.0,
            invoke_cycles: 8_000.0,
            scatter_stream_factor: 2.0,
        }
    }

    /// Convert a cycle count to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groq_like_is_sane() {
        let s = LpuSpec::groq_like();
        assert!(s.clock_ghz > 0.0);
        assert_eq!(s.vector_lanes, 320);
        // 9000 cycles at 0.9 GHz = 10 us
        assert!((s.cycles_to_us(9_000.0) - 10.0).abs() < 1e-9);
    }
}
