//! Property tests for the LPU: the executor is a pure function, cycle
//! counts depend only on shapes, and the ops match naive references.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_lpu_sim::machine::{Lpu, Tensor2};
use fpna_lpu_sim::program::{Program, TensorShape};
use fpna_lpu_sim::spec::LpuSpec;

fn lpu() -> Lpu {
    Lpu::new(LpuSpec::groq_like())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MatMul matches the naive triple loop.
    #[test]
    fn matmul_matches_naive(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        a_data in vec(-10.0..10.0f64, 36),
        b_data in vec(-10.0..10.0f64, 36),
    ) {
        let a: Vec<f64> = a_data[..m * k].to_vec();
        let b: Vec<f64> = b_data[..k * n].to_vec();
        let mut p = Program::new();
        let ta = p.input(TensorShape::new(m, k));
        let tb = p.input(TensorShape::new(k, n));
        let y = p.matmul(ta, tb);
        p.output(y);
        let compiled = lpu().compile(p).unwrap();
        let out = compiled
            .run(&[Tensor2::new(m, k, a.clone()), Tensor2::new(k, n, b.clone())])
            .unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0;
                for kk in 0..k {
                    want += a[i * k + kk] * b[kk * n + j];
                }
                let got = out[0].data[i * n + j];
                prop_assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
            }
        }
    }

    /// Gather→scatter with the same index round-trips row sums.
    #[test]
    fn gather_scatter_mass(rows in 1usize..8, cols in 1usize..5, picks in vec(0usize..8, 1..20)) {
        let data: Vec<f64> = (0..rows * cols).map(|i| i as f64 + 1.0).collect();
        let index: Vec<u32> = picks.iter().map(|&p| (p % rows) as u32).collect();
        let mut p = Program::new();
        let x = p.input(TensorShape::new(rows, cols));
        let g = p.gather_rows(x, index.clone());
        let s = p.scatter_add_rows(g, index.clone(), rows);
        let total = p.reduce_sum_all(s);
        p.output(total);
        let compiled = lpu().compile(p).unwrap();
        let out = compiled.run(&[Tensor2::new(rows, cols, data.clone())]).unwrap();
        // expected: each picked row's sum, once per pick
        let mut want = 0.0;
        for &i in &index {
            let r = i as usize;
            want += data[r * cols..(r + 1) * cols].iter().sum::<f64>();
        }
        prop_assert!((out[0].data[0] - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    /// Purity: same program + same inputs = same bits; cycle count is
    /// input-independent.
    #[test]
    fn executor_is_pure(seed in any::<u64>(), m in 1usize..8, n in 1usize..8) {
        let mut p = Program::new();
        let x = p.input(TensorShape::new(m, n));
        let r = p.relu(x);
        let sm = p.softmax_rows(r);
        let t = p.reduce_sum_all(sm);
        p.output(t);
        let compiled = lpu().compile(p).unwrap();
        let mut rng = fpna_core::rng::SplitMix64::new(seed);
        let data: Vec<f64> = (0..m * n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let input = Tensor2::new(m, n, data);
        let a = compiled.run(std::slice::from_ref(&input)).unwrap();
        let b = compiled.run(&[input]).unwrap();
        prop_assert_eq!(a[0].data[0].to_bits(), b[0].data[0].to_bits());
        // softmax rows each sum to 1, so the total is m
        prop_assert!((a[0].data[0] - m as f64).abs() < 1e-9);
    }
}
