//! Conjugate gradient with pluggable reductions, and the §III
//! error-accumulation experiment.
//!
//! CG's short recurrences make it a rounding-error amplifier: the
//! search directions are computed from ratios of inner products, so a
//! one-ulp difference in a dot product in iteration *k* changes every
//! subsequent iterate. With a non-deterministic dot product, two runs
//! of the *same* solve walk different trajectories — they both converge
//! (CG is self-correcting in exact arithmetic terms), but the iterates
//! and the iteration count can differ, which is what breaks
//! tolerance-based correctness tests around iterative solvers.

use fpna_core::metrics::ArrayComparison;
use fpna_core::Result;
use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind};
use fpna_summation::exact::exact_sum;

use crate::csr::Csr;

/// How CG computes its inner products (and, for the GPU mode, its
/// SpMV accumulations).
#[derive(Debug, Clone, Copy)]
pub enum ReductionMode {
    /// Serial left-to-right dot products (deterministic).
    Deterministic,
    /// Exact long-accumulator dot products — deterministic *and*
    /// independent of element order.
    Reproducible,
    /// Dot products through the simulated GPU's non-deterministic SPA
    /// kernel; the seed is re-keyed per (run, iteration, use).
    GpuNonDeterministic {
        /// Which device profile schedules the atomics.
        model: GpuModel,
        /// Base seed; callers vary it per run.
        seed: u64,
    },
}

/// Configuration of a CG solve.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative residual tolerance (‖r‖/‖b‖).
    pub tolerance: f64,
    /// Reduction used for dot products.
    pub reduction: ReductionMode,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iters: 500,
            tolerance: 1e-10,
            reduction: ReductionMode::Deterministic,
        }
    }
}

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgTrace {
    /// The final iterate.
    pub solution: Vec<f64>,
    /// ‖r‖₂/‖b‖₂ after each iteration.
    pub relative_residuals: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Every iterate (including the final one), for divergence
    /// analysis. Present only when requested via
    /// [`conjugate_gradient_traced`].
    pub iterates: Vec<Vec<f64>>,
}

struct DotEngine {
    mode: ReductionMode,
    device: Option<GpuDevice>,
    counter: u64,
}

impl DotEngine {
    fn new(mode: ReductionMode) -> Self {
        let device = match mode {
            ReductionMode::GpuNonDeterministic { model, .. } => Some(GpuDevice::new(model)),
            _ => None,
        };
        DotEngine {
            mode,
            device,
            counter: 0,
        }
    }

    fn dot(&mut self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let products: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x * y).collect();
        match self.mode {
            ReductionMode::Deterministic => {
                let mut s = 0.0;
                for &p in &products {
                    s += p;
                }
                s
            }
            ReductionMode::Reproducible => exact_sum(&products),
            ReductionMode::GpuNonDeterministic { seed, .. } => {
                self.counter += 1;
                let device = self.device.as_ref().expect("device built in new()");
                // At least 4 blocks: with 1 block the reduction is a
                // fixed in-block tree (no commit-order freedom), and 2
                // blocks only exercise commutativity, which is exact.
                // Trailing blocks past the data contribute exact zeros.
                let nb = (products.len() / 32).clamp(4, 4096) as u32;
                device
                    .reduce(
                        ReduceKernel::Spa,
                        &products,
                        KernelParams::new(64, nb),
                        &ScheduleKind::Seeded(seed).for_run(self.counter),
                    )
                    .expect("SPA supported on NVIDIA profiles")
                    .value
            }
        }
    }
}

/// Solve `A·x = b` from a zero initial guess. Returns the trace
/// without intermediate iterates (cheaper).
pub fn conjugate_gradient(a: &Csr, b: &[f64], cfg: &CgConfig) -> Result<CgTrace> {
    solve(a, b, cfg, false)
}

/// Solve `A·x = b`, storing every iterate for divergence analysis.
pub fn conjugate_gradient_traced(a: &Csr, b: &[f64], cfg: &CgConfig) -> Result<CgTrace> {
    solve(a, b, cfg, true)
}

fn solve(a: &Csr, b: &[f64], cfg: &CgConfig, keep_iterates: bool) -> Result<CgTrace> {
    let n = b.len();
    let mut engine = DotEngine::new(cfg.reduction);
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let b_norm = engine.dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let mut rs_old = engine.dot(&r, &r);
    let mut residuals = Vec::new();
    let mut iterates = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    for _ in 0..cfg.max_iters {
        let ap = a.spmv(&p)?;
        let p_ap = engine.dot(&p, &ap);
        if p_ap <= 0.0 {
            break; // matrix not SPD along p (or numerical breakdown)
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = engine.dot(&r, &r);
        iterations += 1;
        let rel = rs_new.sqrt() / b_norm;
        residuals.push(rel);
        if keep_iterates {
            iterates.push(x.clone());
        }
        if rel < cfg.tolerance {
            converged = true;
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    Ok(CgTrace {
        solution: x,
        relative_residuals: residuals,
        iterations,
        converged,
        iterates,
    })
}

/// Per-iteration divergence between two non-deterministic CG runs on
/// identical inputs.
#[derive(Debug, Clone)]
pub struct CgDivergence {
    /// `Vermv` between the two runs' iterates at each iteration.
    pub vermv_per_iteration: Vec<f64>,
    /// `Vc` (fraction of differing components) at each iteration.
    pub vc_per_iteration: Vec<f64>,
    /// Relative solution difference at the final common iteration.
    pub final_relative_diff: f64,
    /// Iteration counts of the two runs (they may differ!).
    pub iterations: (usize, usize),
}

/// Run CG twice with differently-seeded non-deterministic reductions
/// and measure how the trajectories separate — the §III CG
/// error-accumulation experiment.
pub fn divergence_experiment(
    a: &Csr,
    b: &[f64],
    cfg: &CgConfig,
    seeds: (u64, u64),
) -> Result<CgDivergence> {
    let mode_with = |s: u64| match cfg.reduction {
        ReductionMode::GpuNonDeterministic { model, .. } => {
            ReductionMode::GpuNonDeterministic { model, seed: s }
        }
        other => other,
    };
    let cfg_a = CgConfig {
        reduction: mode_with(seeds.0),
        ..*cfg
    };
    let cfg_b = CgConfig {
        reduction: mode_with(seeds.1),
        ..*cfg
    };
    let ta = conjugate_gradient_traced(a, b, &cfg_a)?;
    let tb = conjugate_gradient_traced(a, b, &cfg_b)?;
    let common = ta.iterates.len().min(tb.iterates.len());
    let mut vermv = Vec::with_capacity(common);
    let mut vc = Vec::with_capacity(common);
    for k in 0..common {
        let cmp = ArrayComparison::compare(&ta.iterates[k], &tb.iterates[k]);
        vermv.push(cmp.vermv);
        vc.push(cmp.vc);
    }
    let final_relative_diff = if common > 0 {
        let (xa, xb) = (&ta.iterates[common - 1], &tb.iterates[common - 1]);
        let num: f64 = xa
            .iter()
            .zip(xb)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let den: f64 = xa.iter().map(|p| p * p).sum::<f64>().sqrt().max(1e-300);
        num / den
    } else {
        0.0
    };
    Ok(CgDivergence {
        vermv_per_iteration: vermv,
        vc_per_iteration: vc,
        final_relative_diff,
        iterations: (ta.iterations, tb.iterations),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    #[test]
    fn cg_solves_poisson() {
        let a = Csr::poisson_2d(10);
        let b = rhs(100, 1);
        let trace = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        assert!(trace.converged, "residuals: {:?}", trace.relative_residuals.last());
        // verify the solve: ||Ax - b|| / ||b|| small
        let ax = a.spmv(&trace.solution).unwrap();
        let err: f64 = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn < 1e-8, "rel err {}", err / bn);
    }

    #[test]
    fn residuals_decrease_overall() {
        let a = Csr::poisson_2d(8);
        let b = rhs(64, 2);
        let trace = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        let first = trace.relative_residuals[0];
        let last = *trace.relative_residuals.last().unwrap();
        assert!(last < first / 1e6);
    }

    #[test]
    fn deterministic_cg_is_bitwise_reproducible() {
        let a = Csr::random_spd(80, 5, 3);
        let b = rhs(80, 4);
        let t1 = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        let t2 = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        assert_eq!(
            t1.solution.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            t2.solution.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reproducible_mode_matches_itself_and_converges() {
        let a = Csr::poisson_2d(6);
        let b = rhs(36, 5);
        let cfg = CgConfig {
            reduction: ReductionMode::Reproducible,
            ..CgConfig::default()
        };
        let t1 = conjugate_gradient(&a, &b, &cfg).unwrap();
        let t2 = conjugate_gradient(&a, &b, &cfg).unwrap();
        assert!(t1.converged);
        assert_eq!(
            t1.solution.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            t2.solution.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nd_cg_diverges_across_runs_but_converges() {
        let a = Csr::poisson_2d(12);
        let b = rhs(144, 6);
        let cfg = CgConfig {
            max_iters: 200,
            tolerance: 1e-10,
            reduction: ReductionMode::GpuNonDeterministic {
                model: GpuModel::V100,
                seed: 0,
            },
        };
        let d = divergence_experiment(&a, &b, &cfg, (1, 2)).unwrap();
        // trajectories separate...
        assert!(
            d.vc_per_iteration.iter().any(|&vc| vc > 0.5),
            "iterates should diverge bitwise: {:?}",
            &d.vc_per_iteration[..d.vc_per_iteration.len().min(5)]
        );
        // ...the divergence grows from the first iterations...
        let early = d.vermv_per_iteration[1];
        let late = d.vermv_per_iteration[d.vermv_per_iteration.len() - 2];
        assert!(
            late > early,
            "divergence should accumulate: early {early}, late {late}"
        );
        // ...but both runs still converge to the same solution to
        // solver tolerance.
        assert!(d.final_relative_diff < 1e-6, "{}", d.final_relative_diff);
    }

    #[test]
    fn traced_and_untraced_agree() {
        let a = Csr::poisson_2d(5);
        let b = rhs(25, 7);
        let cfg = CgConfig::default();
        let t = conjugate_gradient(&a, &b, &cfg).unwrap();
        let tt = conjugate_gradient_traced(&a, &b, &cfg).unwrap();
        assert_eq!(t.solution, tt.solution);
        assert_eq!(tt.iterates.len(), tt.iterations);
        assert!(t.iterates.is_empty());
    }
}
