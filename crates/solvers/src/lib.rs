//! # fpna-solvers
//!
//! Iterative solvers with pluggable deterministic / non-deterministic
//! reductions — the §I/§III "accumulating errors in iterative
//! algorithms" thread of the paper, which cites conjugate-gradient
//! divergence reaching ~20% after a handful of iterations on massively
//! multithreaded machines (Villa et al., CUG 2009).
//!
//! * [`csr`] — a compressed-sparse-row matrix substrate with both a
//!   row-gather (deterministic) and a column-scatter (atomic,
//!   non-deterministic) SpMV, plus 2-D Poisson and diagonally-dominant
//!   random generators;
//! * [`cg`] — unpreconditioned conjugate gradient where every inner
//!   product flows through a selectable reduction
//!   ([`cg::ReductionMode`]): serial, the simulated GPU's SPA kernel
//!   (non-deterministic), or the exact reproducible accumulator;
//! * [`cg::divergence_experiment`] — run CG twice under different
//!   schedules and track the relative divergence of the iterates per
//!   iteration: rounding-level differences in round 1 get amplified by
//!   the recurrence, which is why FPNA is so much more visible in
//!   iterative methods than in single reductions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cg;
pub mod csr;

pub use cg::{conjugate_gradient, CgConfig, CgTrace, ReductionMode};
pub use csr::Csr;
