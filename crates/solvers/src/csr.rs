//! Compressed sparse row matrices with deterministic and
//! non-deterministic sparse matrix–vector products.
//!
//! The row-gather SpMV (`spmv`) accumulates each output element in
//! column order — deterministic. The column-scatter SpMV
//! (`spmv_scatter`) mirrors the GPU pattern where non-zeros are
//! distributed over threads and contributions land in the output with
//! `atomicAdd`: its accumulation order follows the simulated device's
//! commit order, making it run-to-run non-deterministic.

use fpna_core::error::FpnaError;
use fpna_core::rng::SplitMix64;
use fpna_core::Result;
use fpna_gpu_sim::{GpuDevice, ScheduleKind};

/// A CSR matrix over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets; duplicate entries are
    /// summed. Triplets may arrive in any order.
    ///
    /// # Panics
    ///
    /// Panics if a triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for entries in per_row.iter_mut() {
            entries.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < entries.len() {
                let (c, mut v) = entries[i];
                let mut j = i + 1;
                while j < entries.len() && entries[j].0 == c {
                    v += entries[j].1;
                    j += 1;
                }
                col_idx.push(c as u32);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// 2-D Poisson (5-point Laplacian) matrix on an `n × n` grid:
    /// symmetric positive definite, the classic CG test problem.
    pub fn poisson_2d(n: usize) -> Self {
        assert!(n > 0, "grid must be non-empty");
        let dim = n * n;
        let mut triplets = Vec::with_capacity(5 * dim);
        let idx = |i: usize, j: usize| i * n + j;
        for i in 0..n {
            for j in 0..n {
                triplets.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    triplets.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < n {
                    triplets.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    triplets.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < n {
                    triplets.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        Csr::from_triplets(dim, dim, &triplets)
    }

    /// Random sparse symmetric diagonally-dominant matrix (hence SPD):
    /// `nnz_per_row` off-diagonal entries per row, seeded.
    pub fn random_spd(dim: usize, nnz_per_row: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut triplets = Vec::new();
        let mut row_sums = vec![0.0f64; dim];
        for r in 0..dim {
            for _ in 0..nnz_per_row {
                let c = rng.next_below(dim as u64) as usize;
                if c == r {
                    continue;
                }
                let v = rng.next_f64() - 0.5;
                triplets.push((r, c, v));
                triplets.push((c, r, v)); // symmetry
                row_sums[r] += v.abs();
                row_sums[c] += v.abs();
            }
        }
        for (r, &s) in row_sums.iter().enumerate() {
            triplets.push((r, r, s + 1.0)); // strict dominance
        }
        Csr::from_triplets(dim, dim, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Deterministic SpMV: `y = A·x`, each row accumulated in column
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `x` has the wrong length.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(FpnaError::shape(format!(
                "spmv: vector length {} != cols {}",
                x.len(),
                self.cols
            )));
        }
        let mut y = vec![0.0f64; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Non-deterministic SpMV: every non-zero contributes
    /// `A[r,c]·x[c]` to `y[r]` via the simulated device's atomic
    /// scatter unit; contributions commit in schedule order.
    pub fn spmv_scatter(
        &self,
        x: &[f64],
        device: &GpuDevice,
        kind: &ScheduleKind,
    ) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(FpnaError::shape(format!(
                "spmv_scatter: vector length {} != cols {}",
                x.len(),
                self.cols
            )));
        }
        let mut contribs = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                contribs.push((r as u32, self.values[k] * x[self.col_idx[k] as usize]));
            }
        }
        let mut y = vec![0.0f64; self.rows];
        device.atomic_scatter_add(&mut y, &contribs, kind);
        Ok(y)
    }

    /// `true` when the matrix is exactly symmetric in its stored
    /// pattern and values.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let get = |r: usize, c: usize| -> f64 {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            match self.col_idx[lo..hi].binary_search(&(c as u32)) {
                Ok(k) => self.values[lo + k],
                Err(_) => 0.0,
            }
        };
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                if get(c, r) != self.values[k] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_gpu_sim::GpuModel;

    #[test]
    fn triplets_build_and_dedupe() {
        let a = Csr::from_triplets(2, 3, &[(0, 1, 2.0), (0, 1, 3.0), (1, 0, 1.0)]);
        assert_eq!(a.nnz(), 2);
        let y = a.spmv(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![5.0, 1.0]);
    }

    #[test]
    fn poisson_is_spd_shaped() {
        let a = Csr::poisson_2d(4);
        assert_eq!(a.rows(), 16);
        assert!(a.is_symmetric());
        // Laplacian row sums: 4 - (#neighbours) >= 0, interior rows 0
        let ones = vec![1.0; 16];
        let y = a.spmv(&ones).unwrap();
        assert!(y.iter().all(|&v| v >= 0.0));
        // corner rows have two neighbours: 4 - 2 = 2
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn random_spd_is_symmetric_and_dominant() {
        let a = Csr::random_spd(50, 4, 9);
        assert!(a.is_symmetric());
        // x^T A x > 0 for a few random x (necessary condition check)
        let mut rng = SplitMix64::new(1);
        for _ in 0..5 {
            let x: Vec<f64> = (0..50).map(|_| rng.next_f64() - 0.5).collect();
            let ax = a.spmv(&x).unwrap();
            let quad: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            assert!(quad > 0.0, "not positive definite? x^T A x = {quad}");
        }
    }

    #[test]
    fn scatter_spmv_matches_gather_to_rounding() {
        let a = Csr::random_spd(100, 6, 2);
        let mut rng = SplitMix64::new(3);
        let x: Vec<f64> = (0..100).map(|_| rng.next_f64() * 1e3).collect();
        let gather = a.spmv(&x).unwrap();
        let device = GpuDevice::new(GpuModel::V100);
        let scatter = a.spmv_scatter(&x, &device, &ScheduleKind::Seeded(4)).unwrap();
        for (g, s) in gather.iter().zip(&scatter) {
            assert!((g - s).abs() < 1e-9 * g.abs().max(1.0));
        }
    }

    #[test]
    fn scatter_spmv_is_schedule_sensitive() {
        // Needs enough non-zeros to span several thread blocks (a
        // single block has no commit-order freedom) and enough
        // contributions per output row for ordering to matter.
        let a = Csr::random_spd(64, 48, 5);
        let mut rng = SplitMix64::new(6);
        let x: Vec<f64> = (0..64).map(|_| rng.next_f64() * 1e8 - 5e7).collect();
        let device = GpuDevice::new(GpuModel::V100);
        let mut bits = std::collections::HashSet::new();
        for run in 0..10 {
            let y = a
                .spmv_scatter(&x, &device, &ScheduleKind::Seeded(7).for_run(run))
                .unwrap();
            bits.insert(y.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        }
        assert!(bits.len() > 1, "scatter SpMV should vary across schedules");
    }

    #[test]
    fn shape_errors() {
        let a = Csr::poisson_2d(2);
        assert!(a.spmv(&[1.0]).is_err());
        let device = GpuDevice::new(GpuModel::V100);
        assert!(a.spmv_scatter(&[1.0], &device, &ScheduleKind::InOrder).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_triplet_panics() {
        Csr::from_triplets(2, 2, &[(5, 0, 1.0)]);
    }
}
