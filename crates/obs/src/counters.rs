//! Near-zero-cost global counters.
//!
//! Every counter is a process-global `AtomicU64` guarded by one
//! `AtomicBool`. When disabled (the default) each `add` costs a single
//! relaxed load plus a predictable branch; hot loops should instead
//! cache [`enabled`] once (a plain `bool` field) and flush locally
//! accumulated tallies through [`add`] at the end of the run, which
//! makes the per-event disabled cost a non-atomic register test.
//!
//! Counters are monotone within an enabled window; [`reset`] zeroes
//! them. [`snapshot`] reads a consistent-enough view for reporting
//! (individual counters are exact; cross-counter skew is possible only
//! while writers are mid-flush, which report sites avoid by quiescing
//! first).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Identifies one global counter. The set mirrors the engine hot
/// paths: event-heap traffic, buffer-pool recycling, route-arena
/// lookups, and bytes serialized onto links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Events pushed onto the simulator's event heap.
    HeapPush,
    /// Events popped off the simulator's event heap.
    HeapPop,
    /// Wall-clock nanoseconds spent inside heap pops (needs profiling
    /// enabled too; the engine only times pops when profiling).
    HeapPopWallNs,
    /// Wall-clock nanoseconds spent inside `NetSim::run` overall.
    NetRunWallNs,
    /// Buffer-pool requests served by recycling a previous buffer.
    PoolHit,
    /// Buffer-pool requests that had to allocate fresh.
    PoolMiss,
    /// Route-arena lookups (`route_hops_nth` calls).
    RouteLookup,
    /// Bytes serialized onto links (every hop counts the full message).
    WireBytes,
    /// Calendar-queue scan-cursor advances over empty bucket slots
    /// ("rotations") — the price of sparse occupancy.
    BucketRotation,
    /// Calendar-queue events promoted from the far-future overflow
    /// list into buckets when an epoch drains and re-anchors.
    OverflowPromotion,
    /// Logical sub-messages that shared an already-open coalesced wire
    /// message (each is one per-message α the NIC did not pay).
    CoalescedMsgs,
    /// Payload bytes carried by those absorbed sub-messages — bytes
    /// that rode a shared wire message instead of paying their own
    /// per-message overhead.
    CoalescedBytesSaved,
    /// Foreground payload bytes carried over cross-group fabric links
    /// (switch↔switch / switch↔NIC hops) — the NIC/spine crossings
    /// topology-aware placement exists to minimise.
    NicCrossBytes,
}

const N_COUNTERS: usize = 13;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTS: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];
/// Peak event-heap length, merged with `fetch_max`.
static HEAP_PEAK: AtomicU64 = AtomicU64::new(0);

/// Whether counter collection is on. Hot loops cache this once per run.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn counter collection on or off. Does not reset values.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Zero every counter (enabled flag is untouched).
pub fn reset() {
    for c in &COUNTS {
        c.store(0, Ordering::SeqCst);
    }
    HEAP_PEAK.store(0, Ordering::SeqCst);
}

/// Add `n` to a counter if collection is enabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() && n != 0 {
        COUNTS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Merge a locally observed peak heap length (max semantics).
#[inline]
pub fn record_heap_peak(len: u64) {
    if enabled() {
        HEAP_PEAK.fetch_max(len, Ordering::Relaxed);
    }
}

/// Point-in-time values of every counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub heap_push: u64,
    pub heap_pop: u64,
    pub heap_peak: u64,
    pub heap_pop_wall_ns: u64,
    pub net_run_wall_ns: u64,
    pub pool_hit: u64,
    pub pool_miss: u64,
    pub route_lookups: u64,
    pub wire_bytes: u64,
    pub bucket_rotations: u64,
    pub overflow_promotions: u64,
    pub coalesced_msgs: u64,
    pub coalesced_bytes_saved: u64,
    pub nic_cross_bytes: u64,
}

impl Snapshot {
    /// Fraction of `NetSim::run` wall time spent popping the heap,
    /// or `None` when no run time has been recorded.
    pub fn heap_pop_wall_share(&self) -> Option<f64> {
        if self.net_run_wall_ns == 0 {
            None
        } else {
            Some(self.heap_pop_wall_ns as f64 / self.net_run_wall_ns as f64)
        }
    }
}

/// Read every counter.
pub fn snapshot() -> Snapshot {
    let get = |c: Counter| COUNTS[c as usize].load(Ordering::SeqCst);
    Snapshot {
        heap_push: get(Counter::HeapPush),
        heap_pop: get(Counter::HeapPop),
        heap_peak: HEAP_PEAK.load(Ordering::SeqCst),
        heap_pop_wall_ns: get(Counter::HeapPopWallNs),
        net_run_wall_ns: get(Counter::NetRunWallNs),
        pool_hit: get(Counter::PoolHit),
        pool_miss: get(Counter::PoolMiss),
        route_lookups: get(Counter::RouteLookup),
        wire_bytes: get(Counter::WireBytes),
        bucket_rotations: get(Counter::BucketRotation),
        overflow_promotions: get(Counter::OverflowPromotion),
        coalesced_msgs: get(Counter::CoalescedMsgs),
        coalesced_bytes_saved: get(Counter::CoalescedBytesSaved),
        nic_cross_bytes: get(Counter::NicCrossBytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Counters are process-global; serialize the tests that toggle them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_adds_are_dropped() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        add(Counter::HeapPush, 10);
        record_heap_peak(99);
        assert_eq!(snapshot(), Snapshot::default());
    }

    #[test]
    fn enabled_adds_accumulate_and_peak_is_max() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        add(Counter::HeapPush, 3);
        add(Counter::HeapPush, 4);
        add(Counter::WireBytes, 0); // no-op, keeps the fast path honest
        record_heap_peak(5);
        record_heap_peak(2);
        let s = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(s.heap_push, 7);
        assert_eq!(s.heap_peak, 5);
        assert_eq!(s.wire_bytes, 0);
        assert_eq!(s.heap_pop_wall_share(), None);
    }
}
