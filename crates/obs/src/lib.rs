//! `fpna-obs` — observability for the FPNA simulator stack.
//!
//! Three pillars, all always-compiled and **off by default**:
//!
//! * [`counters`] — global event counters (heap push/pop, pool
//!   recycling, route lookups, wire bytes) behind a single
//!   `AtomicBool`. The disabled path is one predictable-branch load;
//!   callers on hot loops cache the flag once per run and flush local
//!   tallies at the end.
//! * [`trace`] — span/instant records on the **simulated** timeline,
//!   exported as Chrome trace-event JSON that Perfetto opens directly.
//!   Events buffer per thread and export in a canonical order, so the
//!   rendered trace is a pure function of `(seed, config)` regardless
//!   of worker-thread scheduling.
//! * [`profile`] — wall-clock phase statistics (scoped spans plus
//!   log2-bucketed histograms such as heap-pop time per offered-load
//!   level), aggregated into a JSON report under `target/obs/`.
//!
//! The cardinal rule: enabling any pillar must not perturb simulation
//! results. Nothing here feeds back into seeds, orderings, or event
//! timestamps; a property test in `fpna-collectives` holds the stack
//! to bitwise identity with observability on vs off.

pub mod counters;
pub mod profile;
pub mod trace;
