//! Simulated-clock tracing in the Chrome trace-event format.
//!
//! Events record *simulated* nanosecond timestamps (the discrete-event
//! clock), never wall time, so a trace is a pure function of
//! `(seed, config)`. Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing` open the exported JSON directly.
//!
//! Track conventions used by the FPNA stack:
//!
//! * `pid` — one process group per executor run (`run_index + 1`),
//!   pid 0 for code outside a run fan-out. Set via
//!   [`set_current_pid`] / read via [`current_pid`].
//! * `tid` — links occupy tids `[0, num_links)` so each physical link
//!   renders as its own lane (queueing and ECMP path choice are
//!   visible as which lane a message's hops land on); ranks occupy
//!   [`RANK_TID_BASE`]`+ rank`; collective chunks occupy
//!   [`CHUNK_TID_BASE`]`+ chunk`.
//!
//! Threads buffer events locally (one mutex-protected `Vec` per OS
//! thread, registered globally on first use) and [`export_json`]
//! renders everything in a canonical order — sorted by
//! `(pid, ts, tid, phase, rendered-json)` — so the output bytes do not
//! depend on worker-thread scheduling.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Link lanes start at tid 0; keep rank/chunk lanes clear of them.
pub const RANK_TID_BASE: u64 = 1_000_000;
/// Per-chunk protocol lanes for segmented collectives.
pub const CHUNK_TID_BASE: u64 = 2_000_000;

/// Trace-event phase (subset of the Chrome trace-event spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`); must be matched by an `End` on the same track.
    Begin,
    /// Span end (`"E"`).
    End,
    /// Complete span (`"X"`) with an explicit duration.
    Complete,
    /// Instant (`"i"`).
    Instant,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }

    /// Orders same-timestamp events on a track: begins before
    /// completes/instants before ends, so zero-length nesting stays valid.
    fn sort_rank(self) -> u8 {
        match self {
            Phase::Begin => 0,
            Phase::Complete | Phase::Instant => 1,
            Phase::End => 2,
        }
    }
}

/// A typed argument value rendered into the event's `args` object.
#[derive(Debug, Clone)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One buffered trace event, timestamps in simulated nanoseconds.
/// Timestamps are `f64` because the discrete-event clock is `f64`
/// (jitter and tenant gaps produce fractional ns); rendering divides
/// by 1000 and prints the shortest round-trip decimal, which is a
/// deterministic function of the bits.
#[derive(Debug, Clone)]
pub struct Event {
    pub pid: u64,
    pub tid: u64,
    pub ph: Phase,
    pub ts_ns: f64,
    /// Only rendered for [`Phase::Complete`].
    pub dur_ns: f64,
    pub name: Cow<'static, str>,
    pub cat: &'static str,
    pub args: Vec<(&'static str, ArgValue)>,
}

type Buf = Arc<Mutex<Vec<Event>>>;

#[derive(Default)]
struct Registry {
    bufs: Vec<Buf>,
    process_names: BTreeMap<u64, String>,
    thread_names: BTreeMap<(u64, u64), String>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Option<Buf>> = const { RefCell::new(None) };
    static CUR_PID: Cell<u64> = const { Cell::new(0) };
}

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

/// Whether tracing is on. Hot loops cache this once per run.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable tracing, discarding any previously buffered events.
pub fn start() {
    clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable tracing. Buffered events stay available for export.
pub fn stop() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Drop all buffered events and track names.
pub fn clear() {
    with_registry(|reg| {
        for buf in &reg.bufs {
            buf.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        reg.process_names.clear();
        reg.thread_names.clear();
    });
}

/// The trace pid for events emitted by this thread (0 outside a run).
#[inline]
pub fn current_pid() -> u64 {
    CUR_PID.get()
}

/// Set the trace pid for this thread; `RunExecutor` points it at
/// `run_index + 1` for the duration of each run closure.
#[inline]
pub fn set_current_pid(pid: u64) {
    CUR_PID.set(pid);
}

/// Buffer an event. Callers normally guard with a cached
/// [`enabled`] flag so the disabled path never constructs `Event`s.
pub fn emit(ev: Event) {
    if !enabled() {
        return;
    }
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf: Buf = Arc::new(Mutex::new(Vec::new()));
            with_registry(|reg| reg.bufs.push(Arc::clone(&buf)));
            buf
        });
        buf.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    });
}

/// Emit an instant event on `(pid, tid)` at simulated time `ts_ns`.
pub fn instant(
    pid: u64,
    tid: u64,
    ts_ns: f64,
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) {
    emit(Event { pid, tid, ph: Phase::Instant, ts_ns, dur_ns: 0.0, name: name.into(), cat, args });
}

/// Emit a complete (`X`) span of `dur_ns` starting at `ts_ns`.
pub fn complete(
    pid: u64,
    tid: u64,
    ts_ns: f64,
    dur_ns: f64,
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) {
    emit(Event { pid, tid, ph: Phase::Complete, ts_ns, dur_ns, name: name.into(), cat, args });
}

/// Emit a span begin; pair with [`end`] using the same name and track.
pub fn begin(pid: u64, tid: u64, ts_ns: f64, name: impl Into<Cow<'static, str>>, cat: &'static str) {
    emit(Event { pid, tid, ph: Phase::Begin, ts_ns, dur_ns: 0.0, name: name.into(), cat, args: Vec::new() });
}

/// Emit a span end matching an earlier [`begin`].
pub fn end(pid: u64, tid: u64, ts_ns: f64, name: impl Into<Cow<'static, str>>, cat: &'static str) {
    emit(Event { pid, tid, ph: Phase::End, ts_ns, dur_ns: 0.0, name: name.into(), cat, args: Vec::new() });
}

/// Label a pid group in the viewer (idempotent; last write wins).
pub fn name_process(pid: u64, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        reg.process_names.insert(pid, name.into());
    });
}

/// Label a `(pid, tid)` track in the viewer (idempotent; last write wins).
pub fn name_thread(pid: u64, tid: u64, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        reg.thread_names.insert((pid, tid), name.into());
    });
}

/// Number of events currently buffered (metadata records excluded).
pub fn event_count() -> usize {
    with_registry(|reg| {
        reg.bufs
            .iter()
            .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    })
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render simulated ns as a Chrome-trace microsecond value. `{}` on
/// `f64` prints the shortest decimal that round-trips, so the output
/// is a pure function of the simulated time bits.
fn render_us(ns: f64, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(out, "{}", ns / 1000.0);
}

fn render_event(ev: &Event, out: &mut String) {
    use std::fmt::Write;
    out.push_str("{\"name\":\"");
    escape_json(&ev.name, out);
    let _ = write!(out, "\",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":", ev.cat, ev.ph.code(), ev.pid, ev.tid);
    render_us(ev.ts_ns, out);
    if ev.ph == Phase::Complete {
        out.push_str(",\"dur\":");
        render_us(ev.dur_ns, out);
    }
    if ev.ph == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            match v {
                ArgValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        let _ = write!(out, "\"{x}\"");
                    }
                }
                ArgValue::Str(s) => {
                    out.push('"');
                    escape_json(s, out);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

fn render_metadata(pid: u64, tid: Option<u64>, label: &str, out: &mut String) {
    use std::fmt::Write;
    let kind = if tid.is_some() { "thread_name" } else { "process_name" };
    let _ = write!(out, "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    out.push_str(",\"args\":{\"name\":\"");
    escape_json(label, out);
    out.push_str("\"}}");
}

/// Export every buffered event as a Chrome trace-event JSON document.
///
/// Metadata records come first (process names, then thread names, each
/// in key order); events follow sorted by
/// `(pid, ts, tid, phase-rank, rendered-json)`. Because the event
/// *multiset* is a pure function of the simulation seeds, this
/// canonical order makes the exported bytes scheduling-independent.
pub fn export_json() -> String {
    let (mut rendered, meta) = with_registry(|reg| {
        let mut rendered: Vec<(u64, u64, u64, u8, String)> = Vec::new();
        for buf in &reg.bufs {
            for ev in buf.lock().unwrap_or_else(|e| e.into_inner()).iter() {
                let mut s = String::with_capacity(96);
                render_event(ev, &mut s);
                // Simulated times are non-negative, so the IEEE bit
                // pattern orders identically to the value.
                rendered.push((ev.pid, ev.ts_ns.to_bits(), ev.tid, ev.ph.sort_rank(), s));
            }
        }
        let mut meta = String::new();
        for (pid, label) in &reg.process_names {
            render_metadata(*pid, None, label, &mut meta);
            meta.push_str(",\n");
        }
        for ((pid, tid), label) in &reg.thread_names {
            render_metadata(*pid, Some(*tid), label, &mut meta);
            meta.push_str(",\n");
        }
        (rendered, meta)
    });
    rendered.sort();
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&meta);
    for (i, (.., s)) in rendered.iter().enumerate() {
        out.push_str(s);
        if i + 1 < rendered.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Write the exported trace to `path`, creating parent directories.
pub fn write_json(path: &std::path::Path) -> std::io::Result<usize> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let n = event_count();
    std::fs::write(path, export_json())?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_emit_buffers_nothing() {
        let _g = LOCK.lock().unwrap();
        stop();
        clear();
        instant(0, 0, 10.0, "x", "t", vec![]);
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn export_is_canonical_and_escaped() {
        let _g = LOCK.lock().unwrap();
        start();
        // Emit deliberately out of order; export must sort by (pid, ts).
        complete(1, 3, 2500.0, 500.0, "hop", "net", vec![("bytes", 64u64.into())]);
        instant(0, RANK_TID_BASE, 1000.0, "inject \"q\"", "net", vec![("msg", 7u64.into())]);
        name_thread(1, 3, "L3 rank0→sw4");
        name_process(0, "setup");
        let json = export_json();
        stop();
        clear();
        let inj = json.find("inject").unwrap();
        let hop = json.find("\"hop\"").unwrap();
        assert!(inj < hop, "pid 0 events must precede pid 1:\n{json}");
        assert!(json.contains("\\\"q\\\""), "quotes must be escaped:\n{json}");
        assert!(json.contains("\"ts\":2.5"), "2500 ns is 2.5 us:\n{json}");
        assert!(json.contains("\"dur\":0.5"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn same_ts_begin_sorts_before_end() {
        let _g = LOCK.lock().unwrap();
        start();
        end(1, 5, 100.0, "chunk0", "coll");
        begin(1, 5, 100.0, "chunk0", "coll");
        let json = export_json();
        stop();
        clear();
        let b = json.find("\"ph\":\"B\"").unwrap();
        let e = json.find("\"ph\":\"E\"").unwrap();
        assert!(b < e, "B must sort before E at equal ts:\n{json}");
    }
}
