//! Wall-clock phase profiling.
//!
//! Unlike [`crate::trace`], these numbers are **wall time** and thus
//! inherently machine-dependent; they never go into golden traces.
//! Phases accumulate into a global map of [`PhaseStat`]s — count,
//! total/min/max, and a log2-bucketed latency histogram — and render
//! as a JSON report (written under `target/obs/` by the bench
//! harness). Hot loops accumulate a local [`PhaseStat`] and merge it
//! once per run via [`merge`]; coarse phases use the RAII [`scope`].
//!
//! The report is what answers the ROADMAP's calendar-queue question:
//! the engine records a `net.heap_pop@load=…` phase per offered-load
//! level, giving a pop-time histogram vs load in one run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of log2 latency buckets; bucket `i` holds durations with
/// `floor(log2(ns)) + 1 == i` (bucket 0 is exactly 0 ns).
pub const HIST_BUCKETS: usize = 64;

/// Aggregated wall-clock statistics for one named phase.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Log2 latency histogram; see [`bucket_of`].
    pub hist: [u64; HIST_BUCKETS],
}

impl Default for PhaseStat {
    fn default() -> Self {
        PhaseStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0, hist: [0; HIST_BUCKETS] }
    }
}

/// Bucket index for a duration: 0 for 0 ns, else `floor(log2(ns)) + 1`.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

impl PhaseStat {
    /// Record one observation of `ns` into this stat.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.hist[bucket_of(ns)] += 1;
    }

    /// Fold another stat into this one.
    pub fn merge_from(&mut self, other: &PhaseStat) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += *b;
        }
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PHASES: Mutex<BTreeMap<String, PhaseStat>> = Mutex::new(BTreeMap::new());
static CONTEXT: Mutex<Option<String>> = Mutex::new(None);

/// Label the process's profile report (e.g. `"shard-3"` when running
/// as one shard of a coordinated sweep). Included as a `"context"`
/// field in [`report_json`], so reports from several processes of the
/// same binary stay distinguishable after collection. `None` clears
/// it.
pub fn set_context(label: Option<String>) {
    *CONTEXT.lock().unwrap_or_else(|e| e.into_inner()) = label;
}

/// The current report context label, if any.
pub fn context() -> Option<String> {
    CONTEXT.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Whether profiling is on. Hot loops cache this once per run.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn profiling on or off. Does not reset accumulated phases.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Drop all accumulated phase statistics.
pub fn reset() {
    PHASES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Record one wall-clock observation for `phase` (if enabled).
pub fn record(phase: &str, ns: u64) {
    if !enabled() {
        return;
    }
    let mut map = PHASES.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(phase.to_string()).or_default().record(ns);
}

/// Merge a locally accumulated [`PhaseStat`] into the global map.
/// Cheaper than per-event [`record`]: one lock per run, not per event.
pub fn merge(phase: &str, stat: &PhaseStat) {
    if !enabled() || stat.count == 0 {
        return;
    }
    let mut map = PHASES.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(phase.to_string()).or_default().merge_from(stat);
}

/// RAII wall-clock span: times from construction to drop and records
/// under `name`. When profiling is disabled the constructor is a
/// single relaxed load and drop is a no-op.
pub struct Scope {
    start: Option<(&'static str, Instant)>,
}

/// Open a profiling scope (see [`Scope`]).
#[inline]
pub fn scope(name: &'static str) -> Scope {
    Scope { start: if enabled() { Some((name, Instant::now())) } else { None } }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.start.take() {
            record(name, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Snapshot every phase (name-sorted, since the map is a `BTreeMap`).
pub fn phases() -> Vec<(String, PhaseStat)> {
    PHASES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn render_stat(name: &str, s: &PhaseStat, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "    \"{}\": {{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{:.1},\"hist\":[",
        name,
        s.count,
        s.total_ns,
        if s.count == 0 { 0 } else { s.min_ns },
        s.max_ns,
        s.mean_ns()
    );
    let mut first = true;
    for (i, n) in s.hist.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        // Bucket i covers durations < 2^i ns (bucket 0 is exactly 0).
        let le = if i == 0 { 0u128 } else { 1u128 << i };
        let _ = write!(out, "{{\"lt_ns\":{le},\"count\":{n}}}");
    }
    out.push_str("]}");
}

/// Render the profile report: every phase stat plus a counter
/// snapshot (including the heap-pop wall-time share when available).
pub fn report_json() -> String {
    use std::fmt::Write;
    let mut out = String::from("{\n");
    if let Some(label) = context() {
        let _ = writeln!(out, "  \"context\": \"{}\",", label.replace('"', "\\\""));
    }
    out.push_str("  \"phases\": {\n");
    let all = phases();
    for (i, (name, stat)) in all.iter().enumerate() {
        render_stat(name, stat, &mut out);
        if i + 1 < all.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  },\n  \"counters\": {");
    let c = crate::counters::snapshot();
    let _ = write!(
        out,
        "\"heap_push\":{},\"heap_pop\":{},\"heap_peak\":{},\"heap_pop_wall_ns\":{},\"net_run_wall_ns\":{},\"pool_hit\":{},\"pool_miss\":{},\"route_lookups\":{},\"wire_bytes\":{},\"bucket_rotations\":{},\"overflow_promotions\":{},\"coalesced_msgs\":{},\"coalesced_bytes_saved\":{}",
        c.heap_push,
        c.heap_pop,
        c.heap_peak,
        c.heap_pop_wall_ns,
        c.net_run_wall_ns,
        c.pool_hit,
        c.pool_miss,
        c.route_lookups,
        c.wire_bytes,
        c.bucket_rotations,
        c.overflow_promotions,
        c.coalesced_msgs,
        c.coalesced_bytes_saved
    );
    if let Some(share) = c.heap_pop_wall_share() {
        let _ = write!(out, ",\"heap_pop_wall_share\":{share:.4}");
    }
    out.push_str("}\n}\n");
    out
}

/// Write the report to `path`, creating parent directories.
pub fn write_report(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, report_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
    }

    #[test]
    fn merge_and_report_round_trip() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let mut local = PhaseStat::default();
        local.record(5);
        local.record(100);
        merge("net.heap_pop@load=0.50", &local);
        record("executor.run", 1_000);
        let report = report_json();
        set_enabled(false);
        reset();
        assert!(report.contains("net.heap_pop@load=0.50"));
        assert!(report.contains("\"count\":2"));
        assert!(report.contains("executor.run"));
        assert!(report.contains("\"counters\""));
    }

    #[test]
    fn context_label_lands_in_report() {
        let _g = LOCK.lock().unwrap();
        set_context(Some("shard-3".into()));
        assert!(report_json().contains("\"context\": \"shard-3\""));
        set_context(None);
        assert!(!report_json().contains("\"context\""));
    }

    #[test]
    fn disabled_paths_record_nothing() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        record("x", 5);
        let _s = scope("y");
        drop(_s);
        let mut local = PhaseStat::default();
        local.record(1);
        merge("z", &local);
        assert!(phases().is_empty());
    }
}
