//! Normality testing: Jarque–Bera.
//!
//! Complements the KL criterion of §III-C with a classical test. The
//! Jarque–Bera statistic `JB = n/6·(S² + K²/4)` (skewness `S`, excess
//! kurtosis `K`) is asymptotically χ²(2) under normality, so the
//! p-value has the closed form `exp(−JB/2)`.

use crate::describe::Describe;

/// Result of a Jarque–Bera normality test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JarqueBera {
    /// The JB statistic.
    pub statistic: f64,
    /// Asymptotic p-value (χ²(2) survival function).
    pub p_value: f64,
    /// Sample skewness used in the statistic.
    pub skewness: f64,
    /// Sample excess kurtosis used in the statistic.
    pub excess_kurtosis: f64,
}

impl JarqueBera {
    /// `true` when normality is *not* rejected at the given significance
    /// level (e.g. `0.05`).
    pub fn consistent_with_normal(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Jarque–Bera test of the null hypothesis that `xs` is drawn from a
/// normal distribution.
///
/// # Panics
///
/// Panics on samples smaller than 8 (the asymptotic approximation is
/// meaningless there).
pub fn jarque_bera(xs: &[f64]) -> JarqueBera {
    assert!(xs.len() >= 8, "Jarque-Bera needs a non-trivial sample");
    let d = Describe::of(xs);
    let n = xs.len() as f64;
    let jb = n / 6.0 * (d.skewness * d.skewness + d.excess_kurtosis * d.excess_kurtosis / 4.0);
    // chi^2 with 2 dof: survival(x) = exp(-x/2)
    let p = (-jb / 2.0).exp();
    JarqueBera {
        statistic: jb,
        p_value: p,
        skewness: d.skewness,
        excess_kurtosis: d.excess_kurtosis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::{Distribution, Sampler};

    #[test]
    fn normal_sample_passes() {
        let mut s = Sampler::new(Distribution::standard_normal(), 7);
        let xs = s.sample_vec(20_000);
        let jb = jarque_bera(&xs);
        assert!(jb.consistent_with_normal(0.001), "JB = {:?}", jb);
    }

    #[test]
    fn exponential_sample_fails() {
        let mut s = Sampler::new(Distribution::boltzmann(), 8);
        let xs = s.sample_vec(20_000);
        let jb = jarque_bera(&xs);
        assert!(!jb.consistent_with_normal(0.05), "JB = {:?}", jb);
        assert!(jb.skewness > 1.0); // exponential has skewness 2
    }

    #[test]
    fn uniform_sample_fails_via_kurtosis() {
        let mut s = Sampler::new(Distribution::Uniform { lo: 0.0, hi: 1.0 }, 9);
        let xs = s.sample_vec(20_000);
        let jb = jarque_bera(&xs);
        // uniform: skewness 0, excess kurtosis -1.2
        assert!(jb.excess_kurtosis < -1.0);
        assert!(!jb.consistent_with_normal(0.05));
    }

    #[test]
    #[should_panic(expected = "non-trivial sample")]
    fn tiny_sample_panics() {
        jarque_bera(&[1.0, 2.0]);
    }
}
