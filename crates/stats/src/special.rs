//! Special functions: `erf`, normal PDF/CDF.
//!
//! `erf` uses the Abramowitz–Stegun 7.1.26 rational approximation
//! (|error| < 1.5e-7), which is ample for the KL/normality diagnostics
//! here — the quantities being tested differ at the 1e-2 level or more.

/// Error function, Abramowitz–Stegun 7.1.26 (max abs error ~1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal density.
pub fn normal_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    let z = (x - mean) / std_dev;
    (-0.5 * z * z).exp() / (std_dev * (2.0 * std::f64::consts::PI).sqrt())
}

/// Normal cumulative distribution function.
pub fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    0.5 * (1.0 + erf((x - mean) / (std_dev * std::f64::consts::SQRT_2)))
}

/// Probability mass a `N(mean, std_dev)` assigns to the interval
/// `[a, b]`.
pub fn normal_mass(a: f64, b: f64, mean: f64, std_dev: f64) -> f64 {
    (normal_cdf(b, mean, std_dev) - normal_cdf(a, mean, std_dev)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Known values to the approximation's accuracy.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(2.0) - 0.9953222650).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn erfc_complements() {
        for &x in &[-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn normal_cdf_basics() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0, 0.0, 1.0) < 1e-7);
        // location-scale: P(X < mean + sigma) is the same for any (mean, sigma)
        let p1 = normal_cdf(1.0, 0.0, 1.0);
        let p2 = normal_cdf(7.0, 5.0, 2.0);
        assert!((p1 - p2).abs() < 1e-12);
    }

    #[test]
    fn normal_pdf_peak() {
        let peak = normal_pdf(0.0, 0.0, 1.0);
        assert!((peak - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(1.0, 0.0, 1.0) < peak);
    }

    #[test]
    fn normal_mass_positive_and_total() {
        let m = normal_mass(-1.0, 1.0, 0.0, 1.0);
        assert!((m - 0.6826894921).abs() < 1e-6);
        assert!(normal_mass(1.0, -1.0, 0.0, 1.0) == 0.0); // inverted interval clamps
        let total = normal_mass(-40.0, 40.0, 0.0, 1.0);
        assert!((total - 1.0).abs() < 1e-12);
    }
}
