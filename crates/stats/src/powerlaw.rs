//! Power-law fits `y ≈ β·xᵅ` via ordinary least squares in log–log
//! space.
//!
//! §III-C of the paper fits `max|Vs|` as a function of the array length
//! `n` with a power law, finding `max|Vs| ∝ √n` for `U(0, 10)` inputs
//! and a larger exponent for `N(0, 1)`. This module provides the fit
//! and its goodness measure.

/// A fitted power law `y = β·xᵅ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Exponent `α`.
    pub alpha: f64,
    /// Prefactor `β`.
    pub beta: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl PowerLawFit {
    /// Fit `(x, y)` pairs with strictly positive coordinates. Points
    /// with non-positive `x` or `y` are skipped (a `Vs` of exactly zero
    /// carries no magnitude information on a log scale).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two usable points remain.
    pub fn fit(points: &[(f64, f64)]) -> Self {
        let usable: Vec<(f64, f64)> = points
            .iter()
            .filter(|&&(x, y)| x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite())
            .map(|&(x, y)| (x.ln(), y.ln()))
            .collect();
        assert!(
            usable.len() >= 2,
            "power-law fit needs at least two positive points"
        );
        let n = usable.len() as f64;
        let mean_x = usable.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = usable.iter().map(|p| p.1).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in &usable {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        assert!(sxx > 0.0, "power-law fit needs at least two distinct x");
        let alpha = sxy / sxx;
        let intercept = mean_y - alpha * mean_x;
        let r_squared = if syy > 0.0 { (sxy * sxy) / (sxx * syy) } else { 1.0 };
        PowerLawFit {
            alpha,
            beta: intercept.exp(),
            r_squared,
            n: usable.len(),
        }
    }

    /// Evaluate the fitted law at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.beta * x.powf(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = 10f64.powi(i);
                (x, 3.0 * x.sqrt())
            })
            .collect();
        let fit = PowerLawFit::fit(&pts);
        assert!((fit.alpha - 0.5).abs() < 1e-12, "alpha {}", fit.alpha);
        assert!((fit.beta - 3.0).abs() < 1e-9, "beta {}", fit.beta);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.eval(100.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_power_law_close() {
        // y = 2 x^1.3 with +-5% deterministic "noise"
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = i as f64 * 7.0;
                let noise = 1.0 + 0.05 * ((i * 2654435761usize) as f64 / usize::MAX as f64 - 0.5);
                (x, 2.0 * x.powf(1.3) * noise)
            })
            .collect();
        let fit = PowerLawFit::fit(&pts);
        assert!((fit.alpha - 1.3).abs() < 0.05, "alpha {}", fit.alpha);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn non_positive_points_skipped() {
        let pts = [(0.0, 1.0), (-1.0, 2.0), (1.0, 0.0), (1.0, 2.0), (4.0, 4.0)];
        let fit = PowerLawFit::fit(&pts);
        assert_eq!(fit.n, 2);
        assert!((fit.alpha - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two positive points")]
    fn all_invalid_panics() {
        PowerLawFit::fit(&[(0.0, 0.0), (1.0, -1.0)]);
    }
}
