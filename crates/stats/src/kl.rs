//! Kullback–Leibler divergence estimators.
//!
//! §III-C of the paper uses a KL criterion to decide whether the
//! empirical distribution of the scalar variability `Vs` converges to a
//! normal. [`kl_vs_fitted_normal`] implements exactly that test: bin
//! the sample, fit a normal by moments, and compute
//! `D_KL(empirical ‖ fitted normal)` over the bins. Values near zero
//! mean the Gaussian-noise assumption holds (as for SPA, Fig 1); large
//! values flag non-normal distributions (as for AO, Fig 2).

use crate::describe::Describe;
use crate::histogram::Histogram;
use crate::special::normal_mass;

/// Discrete KL divergence `Σ p·ln(p/q)` between two probability mass
/// vectors (nats). Bins where `p == 0` contribute zero; bins where
/// `p > 0` but `q == 0` are handled by flooring `q` at `q_floor`, the
/// standard regularisation for empirical comparisons.
///
/// # Panics
///
/// Panics if lengths differ or `q_floor <= 0`.
pub fn kl_divergence(p: &[f64], q: &[f64], q_floor: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "KL needs equal bin counts");
    assert!(q_floor > 0.0, "q_floor must be positive");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            d += pi * (pi / qi.max(q_floor)).ln();
        }
    }
    d.max(0.0)
}

/// KL divergence between two histograms over the same binning, using
/// their probability mass functions.
///
/// # Panics
///
/// Panics if the histograms have different bin counts.
pub fn kl_divergence_histograms(p: &Histogram, q: &Histogram) -> f64 {
    kl_divergence(&p.pmf(), &q.pmf(), 1e-12)
}

/// The paper's normality criterion: fit `N(mean, std)` to the sample by
/// moments, then measure `D_KL(empirical ‖ fitted)` over `bins` bins
/// spanning the sample range. Returns `(kl, fitted_mean, fitted_std)`.
///
/// A degenerate sample (zero variance) returns infinite KL, since no
/// normal fits a point mass.
pub fn kl_vs_fitted_normal(xs: &[f64], bins: usize) -> (f64, f64, f64) {
    assert!(!xs.is_empty(), "KL of empty sample");
    let d = Describe::of(xs);
    if d.std_dev == 0.0 {
        return (f64::INFINITY, d.mean, 0.0);
    }
    let h = Histogram::from_data(xs, bins);
    let p = h.pmf();
    let w = h.bin_width();
    let q: Vec<f64> = (0..h.bins())
        .map(|i| {
            let c = h.bin_center(i);
            normal_mass(c - 0.5 * w, c + 0.5 * w, d.mean, d.std_dev)
        })
        .collect();
    (kl_divergence(&p, &q, 1e-12), d.mean, d.std_dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::{Distribution, Sampler};

    #[test]
    fn kl_of_identical_masses_is_zero() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert_eq!(kl_divergence(&p, &p, 1e-12), 0.0);
    }

    #[test]
    fn kl_is_positive_for_different_masses() {
        let p = [0.7, 0.3];
        let q = [0.3, 0.7];
        let d = kl_divergence(&p, &q, 1e-12);
        // analytic: 0.7 ln(7/3) + 0.3 ln(3/7)
        let expected = 0.7 * (7.0f64 / 3.0).ln() + 0.3 * (3.0f64 / 7.0).ln();
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn kl_handles_empty_q_bins() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        let d = kl_divergence(&p, &q, 1e-12);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn normal_sample_has_small_kl() {
        let mut s = Sampler::new(Distribution::standard_normal(), 42);
        let xs = s.sample_vec(50_000);
        let (kl, mean, std) = kl_vs_fitted_normal(&xs, 64);
        assert!(kl < 0.02, "kl {kl}");
        assert!(mean.abs() < 0.02);
        assert!((std - 1.0).abs() < 0.02);
    }

    #[test]
    fn exponential_sample_has_large_kl() {
        let mut s = Sampler::new(Distribution::boltzmann(), 43);
        let xs = s.sample_vec(50_000);
        let (kl_exp, _, _) = kl_vs_fitted_normal(&xs, 64);
        let mut n = Sampler::new(Distribution::standard_normal(), 44);
        let (kl_norm, _, _) = kl_vs_fitted_normal(&n.sample_vec(50_000), 64);
        assert!(
            kl_exp > 5.0 * kl_norm,
            "exponential ({kl_exp}) should be far less normal than normal ({kl_norm})"
        );
    }

    #[test]
    fn histogram_kl_zero_for_same_data() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let a = Histogram::from_data(&xs, 16);
        assert_eq!(kl_divergence_histograms(&a, &a), 0.0);
    }

    #[test]
    fn degenerate_sample_infinite_kl() {
        let (kl, _, std) = kl_vs_fitted_normal(&[3.0; 100], 8);
        assert!(kl.is_infinite());
        assert_eq!(std, 0.0);
    }
}
