//! Fixed-bin histograms and empirical probability density functions —
//! the estimator behind Figs 1 and 2.

/// Equal-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Samples outside `[lo, hi]` (tracked, not binned).
    outliers: u64,
}

impl Histogram {
    /// New empty histogram with `bins` equal-width bins on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outliers: 0,
        }
    }

    /// Build a histogram spanning the data range (with a tiny margin so
    /// the max lands inside the last bin).
    ///
    /// # Panics
    ///
    /// Panics on empty data or `bins == 0`.
    pub fn from_data(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "histogram of empty data");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo == hi {
            // degenerate sample: give it a unit-width box
            lo -= 0.5;
            hi += 0.5;
        }
        let span = hi - lo;
        let mut h = Histogram::new(lo - 1e-12 * span, hi + 1e-12 * span, bins);
        h.extend(xs.iter().copied());
        h
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo || x > self.hi {
            self.outliers += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((x - self.lo) / w) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // x == hi
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Add many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of binned samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of samples rejected as outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical PDF: density per bin (`count / (total · width)`), which
    /// integrates to 1 over the histogram range. Zero everywhere when
    /// the histogram is empty.
    pub fn pdf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// Per-bin probability mass (`count / total`).
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(bin_center, density)` series — the plot data for Figs 1 & 2.
    pub fn density_series(&self) -> Vec<(f64, f64)> {
        self.pdf()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (self.bin_center(i), p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_totals() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.6, 9.99, 10.0, -1.0, 11.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 9.99 and the boundary 10.0
    }

    #[test]
    fn pdf_integrates_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 32);
        let xs: Vec<f64> = (0..1000).map(|i| -1.0 + 2.0 * (i as f64) / 999.0).collect();
        h.extend(xs);
        let integral: f64 = h.pdf().iter().sum::<f64>() * h.bin_width();
        assert!((integral - 1.0).abs() < 1e-12, "integral {integral}");
        let mass: f64 = h.pmf().iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_covers_everything() {
        let xs = [3.0, -2.0, 7.5, 0.0];
        let h = Histogram::from_data(&xs, 8);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn from_data_degenerate_sample() {
        let h = Histogram::from_data(&[5.0; 20], 4);
        assert_eq!(h.total(), 20);
    }

    #[test]
    fn empty_pdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.pdf().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn density_series_matches_centers() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend([0.5, 1.5, 2.5, 3.5]);
        let s = h.density_series();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].0, 0.5);
        assert_eq!(s[3].0, 3.5);
        // uniform data: equal densities
        assert!(s.windows(2).all(|w| (w[0].1 - w[1].1).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
