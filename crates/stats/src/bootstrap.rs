//! Bootstrap resampling for error bars.
//!
//! Figures 4 and 5 of the paper plot per-reduction-ratio variability
//! with error bars whose sizes are "inconsistent across reduction
//! ratios". We estimate those error bars by the nonparametric
//! bootstrap: resample the per-run metric values with replacement and
//! report the standard deviation of the resampled statistic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a bootstrap of a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bootstrap {
    /// The statistic on the original sample.
    pub estimate: f64,
    /// Bootstrap standard error.
    pub std_error: f64,
    /// Number of resamples used.
    pub resamples: usize,
}

/// Bootstrap a statistic of a sample.
///
/// `stat` maps a sample to its statistic (mean, median, ...). The
/// bootstrap is seeded and therefore reproducible.
///
/// # Panics
///
/// Panics on an empty sample or zero resamples.
pub fn bootstrap<F>(xs: &[f64], resamples: usize, seed: u64, stat: F) -> Bootstrap
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!xs.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    let estimate = stat(xs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0.0f64; xs.len()];
    let mut values = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.gen_range(0..xs.len())];
        }
        values.push(stat(&buf));
    }
    let mean = values.iter().sum::<f64>() / resamples as f64;
    let var = if resamples > 1 {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (resamples - 1) as f64
    } else {
        0.0
    };
    Bootstrap {
        estimate,
        std_error: var.sqrt(),
        resamples,
    }
}

/// Convenience: bootstrap standard error of the mean.
pub fn bootstrap_mean(xs: &[f64], resamples: usize, seed: u64) -> Bootstrap {
    bootstrap(xs, resamples, seed, |s| {
        s.iter().sum::<f64>() / s.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample_zero_error() {
        let b = bootstrap_mean(&[4.0; 50], 200, 1);
        assert_eq!(b.estimate, 4.0);
        assert_eq!(b.std_error, 0.0);
    }

    #[test]
    fn bootstrap_se_close_to_analytic() {
        // Analytic SE of the mean = sigma / sqrt(n).
        let xs: Vec<f64> = (0..400).map(|i| (i % 20) as f64).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let sigma = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt();
        let analytic = sigma / n.sqrt();
        let b = bootstrap_mean(&xs, 2000, 2);
        assert!(
            (b.std_error - analytic).abs() / analytic < 0.15,
            "bootstrap {} vs analytic {analytic}",
            b.std_error
        );
    }

    #[test]
    fn reproducible_given_seed() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_mean(&xs, 100, 7);
        let b = bootstrap_mean(&xs, 100, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        bootstrap_mean(&[], 10, 0);
    }
}
