//! Descriptive statistics: central moments and quantiles.

/// Summary moments of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Describe {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance (n − 1 denominator).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Sample skewness (g1, population estimator).
    pub skewness: f64,
    /// Excess kurtosis (g2 = m4/m2² − 3, population estimator).
    pub excess_kurtosis: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Describe {
    /// Compute all moments in two passes (mean first, then centred
    /// moments, which is numerically far safer than raw-moment
    /// accumulation — fitting, in a suite about floating-point error).
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Describe {
                n: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                skewness: 0.0,
                excess_kurtosis: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let mut m2 = 0.0f64;
        let mut m3 = 0.0f64;
        let mut m4 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            let d = x - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
            min = min.min(x);
            max = max.max(x);
        }
        let nf = n as f64;
        let variance = if n > 1 { m2 / (nf - 1.0) } else { 0.0 };
        let pop_m2 = m2 / nf;
        let (skewness, excess_kurtosis) = if pop_m2 > 0.0 {
            (
                (m3 / nf) / pop_m2.powf(1.5),
                (m4 / nf) / (pop_m2 * pop_m2) - 3.0,
            )
        } else {
            (0.0, 0.0)
        };
        Describe {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            skewness,
            excess_kurtosis,
            min,
            max,
        }
    }
}

/// Linear-interpolation quantile (type 7, the numpy default). `q` in
/// `[0, 1]`. The input need not be sorted.
///
/// # Panics
///
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (50% quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_sample() {
        // 1..=5: mean 3, sample var 2.5
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let d = Describe::of(&xs);
        assert_eq!(d.mean, 3.0);
        assert!((d.variance - 2.5).abs() < 1e-15);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        // symmetric sample => zero skewness
        assert!(d.skewness.abs() < 1e-12);
    }

    #[test]
    fn empty_and_constant() {
        let e = Describe::of(&[]);
        assert_eq!(e.n, 0);
        let c = Describe::of(&[7.0; 10]);
        assert_eq!(c.mean, 7.0);
        assert_eq!(c.variance, 0.0);
        assert_eq!(c.skewness, 0.0);
        assert_eq!(c.excess_kurtosis, 0.0);
    }

    #[test]
    fn skewed_sample_has_positive_skewness() {
        let xs = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(Describe::of(&xs).skewness > 1.0);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}
