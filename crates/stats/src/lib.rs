//! # fpna-stats
//!
//! Statistics substrate for the FPNA reproducibility suite: everything
//! §III-C of the paper needs to characterise the distribution of the
//! scalar variability `Vs`.
//!
//! * [`samplers`] — seeded samplers for the input distributions used in
//!   the paper: `U(0, 10)`, `N(0, 1)` and the Boltzmann (exponential)
//!   distribution;
//! * [`describe`] — descriptive moments (mean, variance, skewness,
//!   excess kurtosis) and quantiles;
//! * [`histogram`] — fixed-bin histograms and empirical PDFs (the Fig 1
//!   / Fig 2 estimator);
//! * [`kl`] — Kullback–Leibler divergence of an empirical distribution
//!   against a fitted normal (the paper's normality criterion) and
//!   between two empirical distributions;
//! * [`normality`] — Jarque–Bera test;
//! * [`powerlaw`] — `max|Vs| ≈ β·n^α` log–log least-squares fits;
//! * [`bootstrap`] — bootstrap standard errors for the error bars in
//!   Figs 4–5;
//! * [`special`] — `erf`, normal PDF/CDF.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod describe;
pub mod histogram;
pub mod kl;
pub mod normality;
pub mod powerlaw;
pub mod samplers;
pub mod special;

pub use describe::Describe;
pub use histogram::Histogram;
pub use kl::{kl_divergence_histograms, kl_vs_fitted_normal};
pub use normality::jarque_bera;
pub use powerlaw::PowerLawFit;
pub use samplers::{Distribution, Sampler};
