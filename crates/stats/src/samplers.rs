//! Seeded samplers for the paper's input distributions.
//!
//! The parallel-sum experiments draw inputs from `U(0, 10)` and
//! `N(0, 1)` (Fig 1), and the paper notes the Boltzmann (exponential)
//! distribution gives the same qualitative picture — it is the expected
//! distribution of energies in molecular simulation workloads.
//!
//! Samplers are deterministic functions of their seed so every
//! experiment is replayable; the only nondeterminism in the suite is the
//! scheduler model under study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input distribution for an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be positive).
        std_dev: f64,
    },
    /// Exponential (Boltzmann) with the given rate `λ`.
    Exponential {
        /// Rate parameter (must be positive).
        rate: f64,
    },
}

impl Distribution {
    /// The `U(0, 10)` used for Figs 1–2 and Table 4.
    pub fn paper_uniform() -> Self {
        Distribution::Uniform { lo: 0.0, hi: 10.0 }
    }

    /// The standard normal used for Table 1 and Fig 1.
    pub fn standard_normal() -> Self {
        Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Boltzmann distribution at unit temperature.
    pub fn boltzmann() -> Self {
        Distribution::Exponential { rate: 1.0 }
    }

    /// Short label for reports ("U(0,10)", "N(0,1)", "Exp(1)").
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform { lo, hi } => format!("U({lo},{hi})"),
            Distribution::Normal { mean, std_dev } => format!("N({mean},{std_dev})"),
            Distribution::Exponential { rate } => format!("Exp({rate})"),
        }
    }
}

/// Seeded sampler producing `f64` draws from a [`Distribution`].
///
/// Normal variates use Marsaglia's polar method with a cached spare;
/// exponential variates use inversion. Both consume the underlying
/// generator in a platform-independent way.
#[derive(Debug, Clone)]
pub struct Sampler {
    dist: Distribution,
    rng: StdRng,
    spare_normal: Option<f64>,
}

impl Sampler {
    /// Create a sampler with an explicit seed.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are degenerate
    /// (`hi <= lo`, `std_dev <= 0`, `rate <= 0`).
    pub fn new(dist: Distribution, seed: u64) -> Self {
        match dist {
            Distribution::Uniform { lo, hi } => assert!(hi > lo, "uniform needs hi > lo"),
            Distribution::Normal { std_dev, .. } => {
                assert!(std_dev > 0.0, "normal needs std_dev > 0")
            }
            Distribution::Exponential { rate } => assert!(rate > 0.0, "exponential needs rate > 0"),
        }
        Sampler {
            dist,
            rng: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Draw one value.
    pub fn sample(&mut self) -> f64 {
        match self.dist {
            Distribution::Uniform { lo, hi } => {
                lo + (hi - lo) * self.rng.gen::<f64>()
            }
            Distribution::Normal { mean, std_dev } => {
                mean + std_dev * self.standard_normal_draw()
            }
            Distribution::Exponential { rate } => {
                // Inversion: -ln(1 - u) / λ, with u in [0,1).
                let u: f64 = self.rng.gen();
                -(1.0 - u).ln() / rate
            }
        }
    }

    /// Fill a fresh vector with `n` draws.
    pub fn sample_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample()).collect()
    }

    fn standard_normal_draw(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Marsaglia polar method.
        loop {
            let u: f64 = 2.0 * self.rng.gen::<f64>() - 1.0;
            let v: f64 = 2.0 * self.rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * factor);
                return u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::Describe;

    #[test]
    fn sampling_is_reproducible() {
        let mut a = Sampler::new(Distribution::paper_uniform(), 11);
        let mut b = Sampler::new(Distribution::paper_uniform(), 11);
        for _ in 0..100 {
            assert_eq!(a.sample().to_bits(), b.sample().to_bits());
        }
    }

    #[test]
    fn uniform_range_and_mean() {
        let mut s = Sampler::new(Distribution::Uniform { lo: 2.0, hi: 4.0 }, 1);
        let xs = s.sample_vec(50_000);
        assert!(xs.iter().all(|&x| (2.0..4.0).contains(&x)));
        let d = Describe::of(&xs);
        assert!((d.mean - 3.0).abs() < 0.02, "mean {}", d.mean);
    }

    #[test]
    fn normal_moments() {
        let mut s = Sampler::new(Distribution::standard_normal(), 2);
        let xs = s.sample_vec(100_000);
        let d = Describe::of(&xs);
        assert!(d.mean.abs() < 0.02, "mean {}", d.mean);
        assert!((d.std_dev - 1.0).abs() < 0.02, "std {}", d.std_dev);
        assert!(d.skewness.abs() < 0.05, "skew {}", d.skewness);
        assert!(d.excess_kurtosis.abs() < 0.1, "kurt {}", d.excess_kurtosis);
    }

    #[test]
    fn exponential_moments() {
        let rate = 2.0;
        let mut s = Sampler::new(Distribution::Exponential { rate }, 3);
        let xs = s.sample_vec(100_000);
        let d = Describe::of(&xs);
        assert!((d.mean - 1.0 / rate).abs() < 0.01, "mean {}", d.mean);
        assert!((d.std_dev - 1.0 / rate).abs() < 0.01, "std {}", d.std_dev);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::paper_uniform().label(), "U(0,10)");
        assert_eq!(Distribution::standard_normal().label(), "N(0,1)");
        assert_eq!(Distribution::boltzmann().label(), "Exp(1)");
    }

    #[test]
    #[should_panic(expected = "hi > lo")]
    fn degenerate_uniform_panics() {
        Sampler::new(Distribution::Uniform { lo: 1.0, hi: 1.0 }, 0);
    }
}
