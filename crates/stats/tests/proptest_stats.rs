//! Property tests for the statistics substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_stats::describe::{median, quantile, Describe};
use fpna_stats::histogram::Histogram;
use fpna_stats::kl::{kl_divergence, kl_vs_fitted_normal};
use fpna_stats::powerlaw::PowerLawFit;

fn sample_value() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Histogram mass + outliers account for every sample; PDF
    /// integrates to 1 when any sample binned.
    #[test]
    fn histogram_conserves_mass(xs in vec(sample_value(), 1..500), bins in 1usize..64) {
        let h = Histogram::from_data(&xs, bins);
        prop_assert_eq!(h.total() + h.outliers(), xs.len() as u64);
        prop_assert_eq!(h.outliers(), 0, "from_data must cover the sample");
        let integral: f64 = h.pdf().iter().sum::<f64>() * h.bin_width();
        prop_assert!((integral - 1.0).abs() < 1e-9);
    }

    /// Quantiles are monotone in q and bounded by the sample range.
    #[test]
    fn quantiles_monotone_and_bounded(xs in vec(sample_value(), 1..300), q in 0.0..1.0f64) {
        let v = quantile(&xs, q);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo && v <= hi);
        prop_assert!(quantile(&xs, 0.0) <= median(&xs));
        prop_assert!(median(&xs) <= quantile(&xs, 1.0));
    }

    /// Describe invariants: min <= mean <= max; variance >= 0;
    /// shift-invariance of the variance.
    #[test]
    fn describe_invariants(xs in vec(sample_value(), 2..300), shift in -1e3..1e3f64) {
        let d = Describe::of(&xs);
        prop_assert!(d.min <= d.mean + 1e-9 && d.mean <= d.max + 1e-9);
        prop_assert!(d.variance >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let ds = Describe::of(&shifted);
        let scale = d.variance.abs().max(1.0);
        prop_assert!((d.variance - ds.variance).abs() < 1e-6 * scale,
            "variance must be shift-invariant: {} vs {}", d.variance, ds.variance);
    }

    /// KL is non-negative and zero on identical distributions.
    #[test]
    fn kl_gibbs_inequality(masses in vec(0.01..1.0f64, 2..32)) {
        let total: f64 = masses.iter().sum();
        let p: Vec<f64> = masses.iter().map(|m| m / total).collect();
        prop_assert_eq!(kl_divergence(&p, &p, 1e-12), 0.0);
        // any permutation of q keeps KL >= 0
        let mut q = p.clone();
        q.rotate_left(1);
        prop_assert!(kl_divergence(&p, &q, 1e-12) >= 0.0);
    }

    /// KL vs fitted normal is finite for non-degenerate samples.
    #[test]
    fn kl_normal_fit_finite(xs in vec(sample_value(), 16..300)) {
        let d = Describe::of(&xs);
        prop_assume!(d.std_dev > 0.0);
        let (kl, mean, std) = kl_vs_fitted_normal(&xs, 16);
        prop_assert!(kl.is_finite() && kl >= 0.0);
        prop_assert!((mean - d.mean).abs() < 1e-9 * d.mean.abs().max(1.0));
        prop_assert!(std > 0.0);
    }

    /// Power-law fits recover planted exponents.
    #[test]
    fn powerlaw_recovers_exponent(alpha in -2.0..2.0f64, beta_log in -3.0..3.0f64) {
        let beta = 10f64.powf(beta_log);
        let pts: Vec<(f64, f64)> = (1..=12)
            .map(|i| {
                let x = 2f64.powi(i);
                (x, beta * x.powf(alpha))
            })
            .collect();
        let fit = PowerLawFit::fit(&pts);
        prop_assert!((fit.alpha - alpha).abs() < 1e-9, "{} vs {}", fit.alpha, alpha);
        prop_assert!((fit.beta - beta).abs() / beta < 1e-9);
    }
}
