//! Device profiles and calibrated cost-model parameters.
//!
//! Each profile carries (a) the architectural numbers that shape
//! scheduling (warp width, number of SMs/CUs, resident blocks per SM)
//! and (b) latency/bandwidth parameters for the analytic cost model of
//! [`crate::cost`]. The cost parameters are *calibrated* so the model
//! reproduces the ranking and relative gaps of the paper's Table 4 —
//! the role the authors' Summit/Alps/Frontier testbeds played. The
//! calibration targets are recorded in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// The GPUs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA V100 (Summit, OLCF).
    V100,
    /// NVIDIA GH200 (Alps, CSCS).
    Gh200,
    /// AMD MI250X — one GCD (Frontier, OLCF).
    Mi250x,
    /// NVIDIA H100 (the PyTorch experiments in §IV).
    H100,
}

impl GpuModel {
    /// All models, in the order the paper's tables list them.
    pub fn all() -> [GpuModel; 4] {
        [GpuModel::V100, GpuModel::Gh200, GpuModel::Mi250x, GpuModel::H100]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            GpuModel::V100 => "V100",
            GpuModel::Gh200 => "GH200",
            GpuModel::Mi250x => "Mi250X",
            GpuModel::H100 => "H100",
        }
    }
}

/// Architectural and cost-model description of a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Which GPU this profile describes.
    pub model: GpuModel,
    /// Threads per warp (32 on NVIDIA, 64 on AMD wavefronts).
    pub warp_width: u32,
    /// Streaming multiprocessors / compute units.
    pub sms: u32,
    /// Thread blocks resident per SM (occupancy bound used by the
    /// wave scheduler).
    pub blocks_per_sm: u32,
    /// Effective main-memory bandwidth in GB/s (calibrated achievable,
    /// not peak).
    pub effective_bandwidth_gbps: f64,
    /// Kernel launch overhead in nanoseconds.
    pub launch_overhead_ns: f64,
    /// Per-commit latency of a pipelined `atomicAdd` to a *contended*
    /// single address, in nanoseconds. Governs the AO kernel, which
    /// serialises `n` commits through one cache line.
    pub contended_atomic_ns: f64,
    /// Effective per-block cost of committing one block partial with
    /// `atomicAdd` (SPA) — overlapped with compute, hence far below
    /// `contended_atomic_ns`.
    pub partial_atomic_ns: f64,
    /// Per-partial cost of the retirement-counter + last-block tree
    /// finalisation used by SPTR/SPRG.
    pub finalize_tree_ns_per_partial: f64,
    /// Fixed cost of a device-to-host transfer (latency) in ns.
    pub d2h_fixed_ns: f64,
    /// Per-byte device-to-host transfer cost in ns.
    pub d2h_ns_per_byte: f64,
    /// Per-element cost of the host-side serial final sum (TPRC).
    pub host_add_ns: f64,
    /// Fixed per-launch overhead of the vendor library reduction (CU):
    /// extra launches, parameter heuristics, temp-storage pass.
    pub cub_fixed_ns: f64,
    /// Whether the single-`atomicAdd` kernel (AO) is available. On
    /// AMD, FP64 `atomicAdd` needs an unsafe compiler mode and the
    /// paper excludes it.
    pub supports_ao: bool,
    /// Relative jitter of simulated timings (std/mean), mirroring the
    /// run-to-run spread of the paper's measurements.
    pub timing_jitter: f64,
}

impl DeviceProfile {
    /// Profile for a [`GpuModel`], with cost parameters calibrated to
    /// Table 4 (V100/GH200/MI250X) and Table 6 (H100).
    pub fn new(model: GpuModel) -> Self {
        match model {
            GpuModel::V100 => DeviceProfile {
                model,
                warp_width: 32,
                sms: 80,
                blocks_per_sm: 4,
                effective_bandwidth_gbps: 521.0,
                launch_overhead_ns: 150.0,
                contended_atomic_ns: 2.079,
                partial_atomic_ns: 0.4,
                finalize_tree_ns_per_partial: 1.0,
                d2h_fixed_ns: 20.0,
                d2h_ns_per_byte: 0.05,
                host_add_ns: 0.5,
                cub_fixed_ns: 4_000.0,
                supports_ao: true,
                timing_jitter: 0.0012,
            },
            GpuModel::Gh200 => DeviceProfile {
                model,
                warp_width: 32,
                sms: 132,
                blocks_per_sm: 4,
                effective_bandwidth_gbps: 1_118.0,
                launch_overhead_ns: 100.0,
                contended_atomic_ns: 1.761,
                partial_atomic_ns: 0.2,
                finalize_tree_ns_per_partial: 4.77,
                d2h_fixed_ns: 1_800.0,
                d2h_ns_per_byte: 0.05,
                host_add_ns: 0.1,
                cub_fixed_ns: 1_350.0,
                supports_ao: true,
                timing_jitter: 0.007,
            },
            GpuModel::Mi250x => DeviceProfile {
                model,
                warp_width: 64,
                sms: 110,
                blocks_per_sm: 4,
                effective_bandwidth_gbps: 541.0,
                launch_overhead_ns: 200.0,
                contended_atomic_ns: 3.0,
                partial_atomic_ns: 6.8,
                finalize_tree_ns_per_partial: 6.5,
                d2h_fixed_ns: 100.0,
                d2h_ns_per_byte: 0.05,
                host_add_ns: 0.5,
                cub_fixed_ns: 1_380.0,
                supports_ao: false,
                timing_jitter: 0.005,
            },
            GpuModel::H100 => DeviceProfile {
                model,
                warp_width: 32,
                sms: 114,
                blocks_per_sm: 4,
                effective_bandwidth_gbps: 1_000.0,
                launch_overhead_ns: 120.0,
                contended_atomic_ns: 1.8,
                partial_atomic_ns: 0.25,
                finalize_tree_ns_per_partial: 3.0,
                d2h_fixed_ns: 1_200.0,
                d2h_ns_per_byte: 0.05,
                host_add_ns: 0.5,
                cub_fixed_ns: 1_400.0,
                supports_ao: true,
                timing_jitter: 0.02,
            },
        }
    }

    /// Maximum number of thread blocks resident at once — the wave
    /// width of the scheduler.
    pub fn concurrent_blocks(&self) -> u32 {
        self.sms * self.blocks_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_constructible() {
        for m in GpuModel::all() {
            let p = DeviceProfile::new(m);
            assert!(p.effective_bandwidth_gbps > 0.0);
            assert!(p.concurrent_blocks() > 0);
            assert_eq!(p.model, m);
        }
    }

    #[test]
    fn amd_excludes_ao() {
        assert!(!DeviceProfile::new(GpuModel::Mi250x).supports_ao);
        assert!(DeviceProfile::new(GpuModel::V100).supports_ao);
    }

    #[test]
    fn warp_widths() {
        assert_eq!(DeviceProfile::new(GpuModel::Mi250x).warp_width, 64);
        assert_eq!(DeviceProfile::new(GpuModel::V100).warp_width, 32);
    }

    #[test]
    fn names() {
        assert_eq!(GpuModel::V100.name(), "V100");
        assert_eq!(GpuModel::Gh200.name(), "GH200");
        assert_eq!(GpuModel::Mi250x.name(), "Mi250X");
        assert_eq!(GpuModel::H100.name(), "H100");
    }

    #[test]
    fn profiles_serialize() {
        let p = DeviceProfile::new(GpuModel::V100);
        // serde round-trip through the Debug-friendly JSON-ish check is
        // overkill; assert the derives exist by cloning and comparing.
        let q = p.clone();
        assert_eq!(p, q);
    }
}
