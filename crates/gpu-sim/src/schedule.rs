//! The generative block/warp scheduler — the source of all simulated
//! non-determinism.
//!
//! On real hardware a grid of thread blocks is distributed over the
//! SMs; only a bounded number of blocks is *resident* at a time (a
//! "wave"), and within the resident set the order in which blocks
//! finish — and in which their atomic operations commit — depends on
//! runtime effects the programmer cannot observe or control. The
//! paper's non-deterministic kernels (AO, SPA) inherit their run-to-run
//! variability precisely from this order.
//!
//! The model here: a window of at most `concurrent_blocks` queues
//! (blocks) is active; each step removes one item from a uniformly
//! random active queue; an exhausted queue is replaced by the next
//! block in launch order. This captures the two properties that matter
//! for FPNA:
//!
//! 1. commit order is a *restricted* permutation — a block launched
//!    late can never commit before the wave containing it becomes
//!    resident (so AO's element-order permutations are locality-
//!    structured, not uniform — see the Fig 2 discussion);
//! 2. within a warp, lanes commit in lane order (warp-synchronous
//!    execution).
//!
//! [`ScheduleKind`] selects the policy: the realistic seeded wave model,
//! a uniform random permutation (ablation), and two deterministic
//! adversarial orders used for failure injection in tests.

use fpna_core::rng::{shuffle, SplitMix64};

use crate::profile::DeviceProfile;

/// Scheduling policy for one simulated launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Wave-biased random schedule — the realistic model. The seed
    /// stands in for "which interleaving the hardware happened to pick
    /// this run".
    Seeded(u64),
    /// Uniform random permutation, ignoring residency (ablation:
    /// `ablation_scheduler`).
    UniformRandom(u64),
    /// Blocks commit in launch order (deterministic best case).
    InOrder,
    /// Blocks commit in reverse launch order (deterministic adversarial
    /// case for failure injection).
    Reverse,
}

impl ScheduleKind {
    /// Re-key a stochastic schedule for run `run`; deterministic kinds
    /// are returned unchanged. This is the "launch it again" operation.
    pub fn for_run(&self, run: u64) -> ScheduleKind {
        match *self {
            ScheduleKind::Seeded(seed) => {
                ScheduleKind::Seeded(fpna_core::rng::derive_seed(seed, run))
            }
            ScheduleKind::UniformRandom(seed) => {
                ScheduleKind::UniformRandom(fpna_core::rng::derive_seed(seed, run))
            }
            other => other,
        }
    }

    /// `true` when the schedule varies with its seed.
    pub fn is_stochastic(&self) -> bool {
        matches!(self, ScheduleKind::Seeded(_) | ScheduleKind::UniformRandom(_))
    }
}

/// Scheduler for a device with a given residency bound.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    /// Maximum number of simultaneously resident blocks (wave width).
    pub concurrent_blocks: u32,
}

impl Scheduler {
    /// Scheduler with an explicit residency bound.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent_blocks == 0`.
    pub fn new(concurrent_blocks: u32) -> Self {
        assert!(concurrent_blocks > 0, "need at least one resident block");
        Scheduler { concurrent_blocks }
    }

    /// Scheduler matching a device profile's occupancy.
    pub fn from_profile(profile: &DeviceProfile) -> Self {
        Scheduler::new(profile.concurrent_blocks())
    }

    /// The order in which `nb` blocks finish (and therefore commit
    /// their block-level atomic, e.g. SPA's partial `atomicAdd`).
    pub fn block_finish_order(&self, nb: u32, kind: &ScheduleKind) -> Vec<u32> {
        match *kind {
            ScheduleKind::InOrder => (0..nb).collect(),
            ScheduleKind::Reverse => (0..nb).rev().collect(),
            ScheduleKind::UniformRandom(seed) => {
                let mut order: Vec<u32> = (0..nb).collect();
                let mut rng = SplitMix64::new(seed);
                shuffle(&mut order, &mut rng);
                order
            }
            ScheduleKind::Seeded(seed) => {
                let mut rng = SplitMix64::new(seed);
                let window = self.concurrent_blocks.min(nb.max(1)) as usize;
                let mut active: Vec<u32> = (0..nb.min(window as u32)).collect();
                let mut next = active.len() as u32;
                let mut order = Vec::with_capacity(nb as usize);
                while !active.is_empty() {
                    let pick = rng.next_below(active.len() as u64) as usize;
                    order.push(active.swap_remove(pick));
                    if next < nb {
                        active.push(next);
                        next += 1;
                    }
                }
                order
            }
        }
    }

    /// Interleave items from `queues.len()` FIFO queues, where queue
    /// `q` holds `queues[q]` items, under the residency model: at most
    /// `concurrent_blocks` queues active, one random active queue pops
    /// per step, exhausted queues admit the next. Returns the sequence
    /// of `(queue, item)` pairs in commit order.
    ///
    /// This is the primitive behind the AO element order and the tensor
    /// library's atomic scatter unit.
    pub fn interleave(&self, queues: &[u32], kind: &ScheduleKind) -> Vec<(u32, u32)> {
        let total: usize = queues.iter().map(|&c| c as usize).sum();
        let nq = queues.len();
        let mut order = Vec::with_capacity(total);
        match *kind {
            ScheduleKind::InOrder => {
                for (q, &count) in queues.iter().enumerate() {
                    for i in 0..count {
                        order.push((q as u32, i));
                    }
                }
            }
            ScheduleKind::Reverse => {
                for (q, &count) in queues.iter().enumerate().rev() {
                    for i in 0..count {
                        order.push((q as u32, i));
                    }
                }
            }
            ScheduleKind::UniformRandom(seed) => {
                // Uniform over all interleavings that preserve
                // per-queue order: random shuffle of queue labels.
                let mut labels: Vec<u32> = Vec::with_capacity(total);
                for (q, &count) in queues.iter().enumerate() {
                    labels.extend(std::iter::repeat_n(q as u32, count as usize));
                }
                let mut rng = SplitMix64::new(seed);
                shuffle(&mut labels, &mut rng);
                let mut cursor = vec![0u32; nq];
                for q in labels {
                    order.push((q, cursor[q as usize]));
                    cursor[q as usize] += 1;
                }
            }
            ScheduleKind::Seeded(seed) => {
                let mut rng = SplitMix64::new(seed);
                let window = (self.concurrent_blocks as usize).min(nq.max(1));
                // Active set of (queue index, items remaining).
                let mut active: Vec<(u32, u32)> = Vec::with_capacity(window);
                let mut next = 0usize;
                while next < nq && active.len() < window {
                    if queues[next] > 0 {
                        active.push((next as u32, queues[next]));
                    }
                    next += 1;
                }
                let mut cursor = vec![0u32; nq];
                while !active.is_empty() {
                    let pick = rng.next_below(active.len() as u64) as usize;
                    let (q, remaining) = active[pick];
                    order.push((q, cursor[q as usize]));
                    cursor[q as usize] += 1;
                    if remaining == 1 {
                        active.swap_remove(pick);
                        while next < nq {
                            let admit = next;
                            next += 1;
                            if queues[admit] > 0 {
                                active.push((admit as u32, queues[admit]));
                                break;
                            }
                        }
                    } else {
                        active[pick].1 = remaining - 1;
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), total);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[u32], n: u32) -> bool {
        let mut seen = vec![false; n as usize];
        for &b in order {
            if seen[b as usize] {
                return false;
            }
            seen[b as usize] = true;
        }
        order.len() == n as usize
    }

    #[test]
    fn finish_order_is_a_permutation() {
        let s = Scheduler::new(8);
        for kind in [
            ScheduleKind::Seeded(1),
            ScheduleKind::UniformRandom(2),
            ScheduleKind::InOrder,
            ScheduleKind::Reverse,
        ] {
            let order = s.block_finish_order(100, &kind);
            assert!(is_permutation(&order, 100), "{kind:?}");
        }
    }

    #[test]
    fn deterministic_kinds_are_fixed() {
        let s = Scheduler::new(4);
        assert_eq!(s.block_finish_order(5, &ScheduleKind::InOrder), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            s.block_finish_order(5, &ScheduleKind::Reverse),
            vec![4, 3, 2, 1, 0]
        );
    }

    #[test]
    fn seeded_schedule_respects_waves() {
        // With a window of 4, block 8 can never finish before 5 blocks
        // of the first wave have finished (it only becomes resident
        // after 5 admissions).
        let s = Scheduler::new(4);
        for seed in 0..50 {
            let order = s.block_finish_order(16, &ScheduleKind::Seeded(seed));
            let pos_of = |b: u32| order.iter().position(|&x| x == b).unwrap();
            assert!(
                pos_of(8) >= 5,
                "block 8 finished too early in {order:?} (seed {seed})"
            );
        }
    }

    #[test]
    fn seeded_schedules_vary_with_seed_and_replay() {
        let s = Scheduler::new(16);
        let a = s.block_finish_order(200, &ScheduleKind::Seeded(1));
        let b = s.block_finish_order(200, &ScheduleKind::Seeded(2));
        assert_ne!(a, b);
        assert_eq!(a, s.block_finish_order(200, &ScheduleKind::Seeded(1)));
    }

    #[test]
    fn for_run_rekeys_only_stochastic_kinds() {
        let k = ScheduleKind::Seeded(7);
        assert_ne!(k.for_run(0), k.for_run(1));
        assert!(k.is_stochastic());
        assert_eq!(ScheduleKind::InOrder.for_run(3), ScheduleKind::InOrder);
        assert!(!ScheduleKind::InOrder.is_stochastic());
    }

    #[test]
    fn interleave_preserves_per_queue_order() {
        let s = Scheduler::new(3);
        let queues = [4u32, 2, 5, 1];
        for kind in [
            ScheduleKind::Seeded(9),
            ScheduleKind::UniformRandom(10),
            ScheduleKind::InOrder,
            ScheduleKind::Reverse,
        ] {
            let order = s.interleave(&queues, &kind);
            assert_eq!(order.len(), 12);
            let mut last: Vec<i64> = vec![-1; queues.len()];
            for &(q, i) in &order {
                assert!(
                    i as i64 == last[q as usize] + 1,
                    "queue {q} out of order in {kind:?}"
                );
                last[q as usize] = i as i64;
            }
            for (q, &count) in queues.iter().enumerate() {
                assert_eq!(last[q] + 1, count as i64);
            }
        }
    }

    #[test]
    fn interleave_handles_empty_queues() {
        let s = Scheduler::new(2);
        let order = s.interleave(&[0, 3, 0, 2, 0], &ScheduleKind::Seeded(1));
        assert_eq!(order.len(), 5);
        assert!(order.iter().all(|&(q, _)| q == 1 || q == 3));
    }

    #[test]
    fn interleave_wave_restriction() {
        // window 1 => strictly sequential queues == InOrder modulo
        // empty queues.
        let s = Scheduler::new(1);
        let order = s.interleave(&[2, 2, 2], &ScheduleKind::Seeded(5));
        assert_eq!(
            order,
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]
        );
    }

    #[test]
    #[should_panic(expected = "resident block")]
    fn zero_window_panics() {
        Scheduler::new(0);
    }
}
