//! # fpna-gpu-sim
//!
//! A software GPU for studying floating-point non-associativity.
//!
//! Real GPUs make parallel reductions non-reproducible because the
//! *commit order* of atomic operations depends on the runtime block
//! scheduler, which is outside the programmer's control. This crate
//! reproduces exactly that mechanism in software:
//!
//! * [`profile`] — device profiles (V100, GH200, MI250X, H100) holding
//!   the calibrated cost-model parameters;
//! * [`schedule`] — a generative block/warp scheduler: blocks become
//!   resident in waves (bounded by the device's concurrent-block
//!   capacity), warps from resident blocks interleave randomly, and
//!   lanes within a warp commit in order. A seed fully determines a
//!   schedule, so experiments are replayable; *varying* the seed plays
//!   the role of re-running the kernel on real hardware;
//! * [`reduce`] — the paper's six parallel-sum implementations
//!   (§III-A, Table 2): the non-deterministic `AO` and `SPA` and the
//!   deterministic `SPTR`, `SPRG`, `TPRC` and `CU`;
//! * [`cost`] — the cycle/latency cost model behind the Table 4
//!   timings;
//! * [`device`] — [`device::GpuDevice`], the façade tying it together,
//!   including the atomic scatter unit used by `fpna-tensor`'s
//!   non-deterministic kernels.
//!
//! ## What is faithfully modelled
//!
//! Deterministic kernels produce bitwise identical results under every
//! schedule (this is asserted by property tests); non-deterministic
//! kernels produce results that vary with the seed because their
//! floating-point additions commit in schedule order. Timing comes
//! from a calibrated analytic cost model — it reproduces the *shape* of
//! the paper's Table 4 (ranking and relative gaps), not silicon-exact
//! microseconds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod device;
pub mod profile;
pub mod reduce;
pub mod schedule;

pub use device::{GpuDevice, ReduceOutcome};
pub use profile::{DeviceProfile, GpuModel};
pub use reduce::{KernelParams, ReduceKernel};
pub use schedule::{ScheduleKind, Scheduler};
