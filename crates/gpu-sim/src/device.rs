//! [`GpuDevice`]: the façade tying profile, scheduler, kernels and cost
//! model together — the object experiments talk to.

use fpna_core::error::FpnaError;
use fpna_core::executor::RunExecutor;
use fpna_core::Result;

use crate::cost::{jittered_time_ns, reduce_time_ns};
use crate::profile::{DeviceProfile, GpuModel};
use crate::reduce::{reduce_value, KernelParams, ReduceKernel};
use crate::schedule::{ScheduleKind, Scheduler};

/// Result of a simulated kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceOutcome {
    /// The reduction value (bitwise meaningful).
    pub value: f64,
    /// Simulated wall time of the launch in nanoseconds, including the
    /// profile's measurement jitter.
    pub time_ns: f64,
    /// Whether the kernel that produced this value is deterministic.
    pub deterministic: bool,
}

/// A simulated GPU: a device profile plus its wave scheduler.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    profile: DeviceProfile,
    scheduler: Scheduler,
}

impl GpuDevice {
    /// Device for a stock model.
    pub fn new(model: GpuModel) -> Self {
        GpuDevice::with_profile(DeviceProfile::new(model))
    }

    /// Device for a custom profile.
    pub fn with_profile(profile: DeviceProfile) -> Self {
        let scheduler = Scheduler::from_profile(&profile);
        GpuDevice { profile, scheduler }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The device's wave scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Launch a reduction kernel over `data` under schedule `kind`.
    ///
    /// Returns [`FpnaError::InvalidConfig`] when the kernel is not
    /// available on the device — FP64 `atomicAdd` (AO) requires an
    /// unsafe compiler mode on AMD and is excluded there, as in the
    /// paper.
    pub fn reduce(
        &self,
        kernel: ReduceKernel,
        data: &[f64],
        params: KernelParams,
        kind: &ScheduleKind,
    ) -> Result<ReduceOutcome> {
        if kernel == ReduceKernel::Ao && !self.profile.supports_ao {
            return Err(FpnaError::config(format!(
                "FP64 atomicAdd (AO) is not available on {}",
                self.profile.model.name()
            )));
        }
        let value = reduce_value(
            kernel,
            data,
            params,
            &self.scheduler,
            self.profile.warp_width,
            kind,
        );
        let base = reduce_time_ns(&self.profile, kernel, data.len(), params);
        let jitter_seed = match *kind {
            ScheduleKind::Seeded(s) | ScheduleKind::UniformRandom(s) => s,
            ScheduleKind::InOrder => 0,
            ScheduleKind::Reverse => 1,
        };
        Ok(ReduceOutcome {
            value,
            time_ns: jittered_time_ns(base, self.profile.timing_jitter, jitter_seed),
            deterministic: kernel.is_deterministic(),
        })
    }

    /// Launch the same reduction `runs` times, re-keying the schedule
    /// per run (`base.for_run(r)` — the "launch it again" operation),
    /// and return the outcomes in run-index order.
    ///
    /// The repeated-run loop is the dominant serial cost in every
    /// fig/table binary, and each launch is independent by
    /// construction (the per-run schedule depends only on `(base,
    /// run_index)`), so the executor fans launches across threads with
    /// bitwise-identical outcomes at any thread count.
    pub fn reduce_runs(
        &self,
        kernel: ReduceKernel,
        data: &[f64],
        params: KernelParams,
        base: &ScheduleKind,
        runs: usize,
        executor: &RunExecutor,
    ) -> Result<Vec<ReduceOutcome>> {
        self.reduce_runs_range(kernel, data, params, base, 0..runs, executor)
    }

    /// [`GpuDevice::reduce_runs`] restricted to the **global** run
    /// indices in `range` — the process-sharding entry point. The
    /// schedule of run `r` is `base.for_run(r)` with the global index,
    /// so any partition of `0..runs` across shards reproduces exactly
    /// the outcomes of the full sweep at the covered indices.
    pub fn reduce_runs_range(
        &self,
        kernel: ReduceKernel,
        data: &[f64],
        params: KernelParams,
        base: &ScheduleKind,
        range: std::ops::Range<usize>,
        executor: &RunExecutor,
    ) -> Result<Vec<ReduceOutcome>> {
        executor
            .map_run_range(range, |r| {
                self.reduce(kernel, data, params, &base.for_run(r as u64))
            })
            .into_iter()
            .collect()
    }

    /// The order in which `n_items` atomic contributions commit on this
    /// device: items are grouped into warps (lane order preserved),
    /// warps into blocks of 256 threads, and blocks interleave under
    /// the wave scheduler. Returns a permutation of `0..n_items`.
    ///
    /// This is the primitive `fpna-tensor`'s non-deterministic kernels
    /// (`index_add`, `scatter_reduce`, `conv_transpose*`, …) use to
    /// order their accumulations.
    pub fn scatter_commit_order(&self, n_items: usize, kind: &ScheduleKind) -> Vec<u32> {
        assert!(n_items <= u32::MAX as usize, "scatter too large");
        if n_items == 0 {
            return Vec::new();
        }
        let ww = self.profile.warp_width as usize;
        let threads_per_block = 256usize.max(ww);
        let warps_per_block = threads_per_block / ww;
        let n_warps = n_items.div_ceil(ww);
        let n_blocks = n_warps.div_ceil(warps_per_block);
        let queues: Vec<u32> = (0..n_blocks)
            .map(|b| {
                let first_warp = b * warps_per_block;
                let warps = warps_per_block.min(n_warps - first_warp);
                warps as u32
            })
            .collect();
        let events = self.scheduler.interleave(&queues, kind);
        let mut order = Vec::with_capacity(n_items);
        for (block, warp_in_block) in events {
            let warp = block as usize * warps_per_block + warp_in_block as usize;
            let base = warp * ww;
            for lane in 0..ww {
                let idx = base + lane;
                if idx < n_items {
                    order.push(idx as u32);
                }
            }
        }
        debug_assert_eq!(order.len(), n_items);
        order
    }

    /// Commit `(address, value)` contributions into `dst` with
    /// `atomicAdd` semantics: additions to the same address happen in
    /// the device's commit order — the non-deterministic accumulation
    /// at the heart of §IV.
    ///
    /// # Panics
    ///
    /// Panics if an address is out of bounds for `dst` (callers
    /// validate indices before launching, as the tensor library does).
    pub fn atomic_scatter_add(
        &self,
        dst: &mut [f64],
        contributions: &[(u32, f64)],
        kind: &ScheduleKind,
    ) {
        let order = self.scatter_commit_order(contributions.len(), kind);
        for &i in &order {
            let (addr, val) = contributions[i as usize];
            dst[addr as usize] += val;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 10.0).collect()
    }

    #[test]
    fn reduce_outcome_fields() {
        let dev = GpuDevice::new(GpuModel::V100);
        let xs = data(10_000, 1);
        let out = dev
            .reduce(
                ReduceKernel::Sptr,
                &xs,
                KernelParams::new(128, 32),
                &ScheduleKind::Seeded(1),
            )
            .unwrap();
        assert!(out.deterministic);
        assert!(out.time_ns > 0.0);
        assert!((out.value - xs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn reduce_runs_matches_serial_loop_at_any_thread_count() {
        let dev = GpuDevice::new(GpuModel::V100);
        let xs = data(50_000, 9);
        let params = KernelParams::new(128, 32);
        let base = ScheduleKind::Seeded(77);
        let runs = 12;
        let serial: Vec<ReduceOutcome> = (0..runs)
            .map(|r| dev.reduce(ReduceKernel::Spa, &xs, params, &base.for_run(r as u64)).unwrap())
            .collect();
        for threads in [1usize, 2, 4, 7] {
            let got = dev
                .reduce_runs(ReduceKernel::Spa, &xs, params, &base, runs, &RunExecutor::new(threads))
                .unwrap();
            assert_eq!(got.len(), runs);
            for (a, b) in serial.iter().zip(&got) {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "threads={threads}");
                assert_eq!(a.time_ns.to_bits(), b.time_ns.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn reduce_runs_propagates_unsupported_kernel() {
        let dev = GpuDevice::new(GpuModel::Mi250x);
        let xs = data(100, 3);
        let err = dev.reduce_runs(
            ReduceKernel::Ao,
            &xs,
            KernelParams::new(64, 2),
            &ScheduleKind::Seeded(1),
            4,
            &RunExecutor::new(2),
        );
        assert!(err.is_err());
    }

    #[test]
    fn ao_rejected_on_amd() {
        let dev = GpuDevice::new(GpuModel::Mi250x);
        let xs = data(100, 2);
        let err = dev
            .reduce(
                ReduceKernel::Ao,
                &xs,
                KernelParams::new(64, 2),
                &ScheduleKind::InOrder,
            )
            .unwrap_err();
        assert!(err.to_string().contains("Mi250X"));
        // SPA (atomic but supported path) still works
        assert!(dev
            .reduce(
                ReduceKernel::Spa,
                &xs,
                KernelParams::new(64, 2),
                &ScheduleKind::InOrder
            )
            .is_ok());
    }

    #[test]
    fn scatter_order_is_permutation() {
        let dev = GpuDevice::new(GpuModel::V100);
        for n in [0usize, 1, 31, 32, 33, 1000, 4097] {
            let order = dev.scatter_commit_order(n, &ScheduleKind::Seeded(3));
            let mut seen = vec![false; n];
            for &i in &order {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
            assert_eq!(order.len(), n);
        }
    }

    #[test]
    fn scatter_order_preserves_lanes() {
        // Within a warp-aligned group of 32, indices stay consecutive.
        let dev = GpuDevice::new(GpuModel::V100);
        let order = dev.scatter_commit_order(320, &ScheduleKind::Seeded(5));
        for chunk in order.chunks(32) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], w[0] + 1, "lanes must commit in order");
            }
        }
    }

    #[test]
    fn scatter_add_same_multiset_different_bits() {
        // Contributions to one address: same multiset, different order
        // => potentially different bits; in-order must equal the plain
        // serial accumulation.
        let dev = GpuDevice::new(GpuModel::V100);
        let contribs: Vec<(u32, f64)> = data(10_000, 6)
            .into_iter()
            .map(|v| (0u32, v * 1e8 - 5e7))
            .collect();
        let mut serial = [0.0f64];
        for &(_, v) in &contribs {
            serial[0] += v;
        }
        let mut in_order = vec![0.0f64];
        dev.atomic_scatter_add(&mut in_order, &contribs, &ScheduleKind::InOrder);
        assert_eq!(in_order[0].to_bits(), serial[0].to_bits());

        let mut seen = std::collections::HashSet::new();
        for run in 0..10 {
            let mut dst = vec![0.0f64];
            dev.atomic_scatter_add(&mut dst, &contribs, &ScheduleKind::Seeded(run));
            seen.insert(dst[0].to_bits());
        }
        assert!(seen.len() > 1, "expected order-dependent bits");
    }

    #[test]
    fn scatter_add_disjoint_addresses_is_order_invariant() {
        let dev = GpuDevice::new(GpuModel::Gh200);
        let contribs: Vec<(u32, f64)> = (0..1000u32).map(|i| (i, i as f64 * 0.5)).collect();
        let mut a = vec![0.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        dev.atomic_scatter_add(&mut a, &contribs, &ScheduleKind::Seeded(1));
        dev.atomic_scatter_add(&mut b, &contribs, &ScheduleKind::Seeded(2));
        assert_eq!(a, b, "no shared addresses => no FPNA");
    }
}
