//! The six parallel-sum implementations of §III-A (Table 2).
//!
//! | Method | deterministic | kernels | synchronisation |
//! |--------|---------------|---------|-----------------|
//! | CU     | yes           | —       | `__threadfence` (library) |
//! | SPTR   | yes           | 1       | `__threadfence` |
//! | SPRG   | yes           | 1       | `__threadfence` |
//! | TPRC   | yes           | 2       | stream synchronisation |
//! | SPA    | **no**        | 1       | `atomicAdd` |
//! | AO     | **no**        | 1       | `atomicAdd` |
//!
//! All kernels except AO share the same first stage: each thread block
//! owns a contiguous chunk of the input, each thread serially
//! accumulates a strided subset of the chunk, and the block combines
//! its `Nt` lane values with the `__syncthreads`-stepped pairwise tree
//! (shared memory in the CUDA original, [`block_partial`] here). That
//! stage is deterministic. The kernels differ in how block partials are
//! combined — and that is exactly where determinism is won or lost:
//!
//! * **SPA** commits each partial with `atomicAdd`: the combine order
//!   is the scheduler's block finish order ⇒ non-deterministic.
//! * **SPTR** stores partials to global memory; the last block (found
//!   via an atomic retirement counter + `__threadfence`) tree-reduces
//!   them *in index order* ⇒ deterministic.
//! * **SPRG** is SPTR with a serial (recursive) final loop
//!   (`res[0] += res[i]`) ⇒ deterministic, different bits than SPTR.
//! * **TPRC** copies partials to the host on the same stream and sums
//!   serially on the CPU ⇒ deterministic (bitwise equal to SPRG: same
//!   order, different processor).
//! * **CU** models the vendor library (CUB/hipCUB): its own tuned
//!   launch geometry, deterministic two-stage tree.
//! * **AO** has no first stage at all: every element is `atomicAdd`ed
//!   to one address; the value is the serial sum in *element commit
//!   order* — warp-synchronous lanes in order, warps interleaved by the
//!   scheduler ⇒ non-deterministic, and catastrophically slow.

use crate::schedule::{ScheduleKind, Scheduler};

/// Launch geometry: threads per block and blocks per grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Threads per block (`Nt`). Must be a power of two for the
    /// pairwise tree.
    pub threads_per_block: u32,
    /// Number of thread blocks (`Nb`).
    pub num_blocks: u32,
}

impl KernelParams {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_block` is zero or not a power of two, or
    /// if `num_blocks` is zero.
    pub fn new(threads_per_block: u32, num_blocks: u32) -> Self {
        assert!(
            threads_per_block.is_power_of_two(),
            "Nt must be a power of two for the pairwise tree"
        );
        assert!(num_blocks > 0, "need at least one block");
        KernelParams {
            threads_per_block,
            num_blocks,
        }
    }

    /// The `Nt = 64, Nb = 7813` geometry of Fig 1 (1M elements).
    pub fn fig1() -> Self {
        KernelParams::new(64, 7813)
    }
}

/// The reduction kernel variants of §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKernel {
    /// `atomicAdd`-only: one atomic per element.
    Ao,
    /// Simple-pass with `atomicAdd` for partials.
    Spa,
    /// Single-pass, tree reduction by the last block.
    Sptr,
    /// Single-pass, recursive (serial) final sum by the last block.
    Sprg,
    /// Two passes, final reduction on the CPU.
    Tprc,
    /// Vendor library (CUB / hipCUB) reduction.
    Cu,
}

impl ReduceKernel {
    /// All kernels in Table 2's order.
    pub fn all() -> [ReduceKernel; 6] {
        [
            ReduceKernel::Cu,
            ReduceKernel::Sptr,
            ReduceKernel::Sprg,
            ReduceKernel::Tprc,
            ReduceKernel::Spa,
            ReduceKernel::Ao,
        ]
    }

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceKernel::Ao => "AO",
            ReduceKernel::Spa => "SPA",
            ReduceKernel::Sptr => "SPTR",
            ReduceKernel::Sprg => "SPRG",
            ReduceKernel::Tprc => "TPRC",
            ReduceKernel::Cu => "CU",
        }
    }

    /// Whether the kernel is deterministic by construction (Table 2).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, ReduceKernel::Ao | ReduceKernel::Spa)
    }

    /// Number of kernel launches ("-" for the library call).
    pub fn kernel_count(&self) -> Option<u32> {
        match self {
            ReduceKernel::Cu => None,
            ReduceKernel::Tprc => Some(2),
            _ => Some(1),
        }
    }

    /// Synchronisation method column of Table 2.
    pub fn sync_method(&self) -> &'static str {
        match self {
            ReduceKernel::Cu | ReduceKernel::Sptr | ReduceKernel::Sprg => "__threadfence",
            ReduceKernel::Tprc => "stream synchronization",
            ReduceKernel::Spa | ReduceKernel::Ao => "atomicAdd",
        }
    }
}

/// The deterministic in-block stage: thread `t` serially accumulates
/// `chunk[t], chunk[t + Nt], …`, then the `Nt` lane sums are combined
/// with the power-of-two pairwise tree (`smem[i] += smem[i + offset]`
/// stepped by `__syncthreads` in the CUDA original).
pub fn block_partial(chunk: &[f64], threads_per_block: u32) -> f64 {
    block_partial_with(chunk, threads_per_block, &mut Vec::new())
}

/// [`block_partial`] with caller-provided lane scratch, so a loop over
/// blocks (7813 of them per Fig 1 replay) reuses one allocation
/// instead of paying one `vec![0.0; Nt]` per block.
pub fn block_partial_with(chunk: &[f64], threads_per_block: u32, lanes: &mut Vec<f64>) -> f64 {
    let nt = threads_per_block as usize;
    lanes.clear();
    lanes.resize(nt, 0.0);
    for (i, &x) in chunk.iter().enumerate() {
        lanes[i % nt] += x;
    }
    // pairwise tree over the lane values
    let mut offset = nt / 2;
    while offset > 0 {
        for i in 0..offset {
            lanes[i] += lanes[i + offset];
        }
        offset /= 2;
    }
    lanes[0]
}

/// Contiguous chunk boundaries for `num_blocks` blocks over `n`
/// elements (last chunk may be short).
fn chunk_bounds(n: usize, num_blocks: u32) -> Vec<(usize, usize)> {
    let nb = num_blocks as usize;
    let chunk = n.div_ceil(nb);
    (0..nb)
        .map(|b| {
            let lo = (b * chunk).min(n);
            let hi = ((b + 1) * chunk).min(n);
            (lo, hi)
        })
        .collect()
}

/// All block partials for a launch — stage one of every kernel except
/// AO. Deterministic, and each block is independent, so the blocks are
/// fanned across the intra-run thread budget
/// ([`fpna_core::executor::par_fill`]); every worker reuses one lane
/// scratch across all its blocks. Bitwise identical to the serial loop
/// at any thread count — block partials only depend on their own
/// chunk.
pub fn block_partials(data: &[f64], params: KernelParams) -> Vec<f64> {
    let bounds = chunk_bounds(data.len(), params.num_blocks);
    let mut out = vec![0.0f64; bounds.len()];
    let run_blocks = |blocks: std::ops::Range<usize>, partials: &mut [f64]| {
        let mut lanes: Vec<f64> = Vec::new();
        for (slot, b) in partials.iter_mut().zip(blocks) {
            let (lo, hi) = bounds[b];
            *slot = block_partial_with(&data[lo..hi], params.threads_per_block, &mut lanes);
        }
    };
    if data.len() >= 1 << 14 {
        fpna_core::executor::par_fill(&mut out, 1, run_blocks);
    } else {
        let nb = out.len();
        run_blocks(0..nb, &mut out);
    }
    out
}

std::thread_local! {
    /// Reused tree-reduction scratch: one buffer per thread instead of
    /// one allocation per [`tree_sum`] call (once per run — thousands
    /// per sweep).
    static TREE_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Power-of-two tree sum in index order — the last-block reduction of
/// SPTR and the final stage of CU.
fn tree_sum(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    TREE_SCRATCH.with(|scratch| {
        let mut buf = scratch.borrow_mut();
        let m = xs.len().next_power_of_two();
        buf.clear();
        buf.resize(m, 0.0);
        buf[..xs.len()].copy_from_slice(xs);
        let mut half = m / 2;
        while half > 0 {
            for i in 0..half {
                buf[i] += buf[i + half];
            }
            half /= 2;
        }
        buf[0]
    })
}

/// Serial sum in index order — SPRG's `res[0] += res[i]` loop and
/// TPRC's host loop.
fn serial_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    for &x in xs {
        s += x;
    }
    s
}

/// Geometry the modelled vendor library picks for itself (the paper
/// lists CU's parameters as "unknown"): 256 threads, 16 items per
/// thread.
pub fn cub_params(n: usize) -> KernelParams {
    let nt = 256u32;
    let items_per_thread = 16usize;
    let nb = n.div_ceil(nt as usize * items_per_thread).max(1) as u32;
    KernelParams::new(nt, nb)
}

/// Execute a reduction kernel's *numeric* semantics under a schedule.
///
/// Deterministic kernels ignore the schedule entirely (that is their
/// defining property, and the property tests pin it down).
/// Non-deterministic kernels commit their floating-point additions in
/// schedule order.
pub fn reduce_value(
    kernel: ReduceKernel,
    data: &[f64],
    params: KernelParams,
    scheduler: &Scheduler,
    warp_width: u32,
    kind: &ScheduleKind,
) -> f64 {
    match kernel {
        ReduceKernel::Ao => ao_value(data, params, scheduler, warp_width, kind),
        ReduceKernel::Spa => {
            let partials = block_partials(data, params);
            let order = scheduler.block_finish_order(params.num_blocks, kind);
            let mut s = 0.0f64;
            for &b in &order {
                s += partials[b as usize];
            }
            s
        }
        ReduceKernel::Sptr => tree_sum(&block_partials(data, params)),
        ReduceKernel::Sprg | ReduceKernel::Tprc => serial_sum(&block_partials(data, params)),
        ReduceKernel::Cu => tree_sum(&block_partials(data, cub_params(data.len()))),
    }
}

/// AO: every element is `atomicAdd`ed to a single address. Elements
/// commit lane-ordered within a warp; warp events from resident blocks
/// interleave per the scheduler. The value is the serial sum in that
/// global commit order.
fn ao_value(
    data: &[f64],
    params: KernelParams,
    scheduler: &Scheduler,
    warp_width: u32,
    kind: &ScheduleKind,
) -> f64 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let nt = params.threads_per_block as usize;
    let ww = (warp_width as usize).min(nt);
    let warps = nt / ww;
    let bounds = chunk_bounds(n, params.num_blocks);
    // Per-block queue length: one event per (round, warp) with any live
    // lane. Rounds = passes of the whole block over its chunk.
    let queue_lens: Vec<u32> = bounds
        .iter()
        .map(|&(lo, hi)| {
            let len = hi - lo;
            let rounds = len.div_ceil(nt);
            (rounds * warps) as u32
        })
        .collect();
    let events = scheduler.interleave(&queue_lens, kind);
    // The accumulation itself is a serial sum in global commit order —
    // that order *is* AO's value semantics, so it can never be
    // parallelized. The prefix work (resolving each event to the
    // values it commits — pure index arithmetic) can: with an intra-run
    // thread budget the gather fans across fixed event chunks, and the
    // strictly-ordered fold below consumes the chunks in event order,
    // bitwise identical to the single-pass loop.
    let commit_values = |range: std::ops::Range<usize>, out: &mut Vec<f64>| {
        for &(block, event) in &events[range] {
            let (lo, hi) = bounds[block as usize];
            let round = event as usize / warps;
            let warp = event as usize % warps;
            let base = lo + round * nt + warp * ww;
            for lane in 0..ww {
                let idx = base + lane;
                if idx < hi {
                    out.push(data[idx]);
                }
            }
        }
    };
    let mut sum = 0.0f64;
    // The gather buffer only pays off when threads will actually run
    // (not inside an outer run-fan-out worker, where the primitives
    // collapse to serial) and the event list is large enough to
    // amortize the copy.
    if fpna_core::executor::effective_intra_threads() > 1 && events.len() >= 1024 {
        let gathered = fpna_core::executor::par_chunk_map(events.len(), |_, range| {
            let mut vals = Vec::with_capacity(range.len() * ww);
            commit_values(range, &mut vals);
            vals
        });
        for vals in &gathered {
            for &v in vals {
                sum += v;
            }
        }
    } else {
        // Serial budget: the original fused single pass (no gather
        // buffer). Same commit order, same bits.
        for &(block, event) in &events {
            let (lo, hi) = bounds[block as usize];
            let round = event as usize / warps;
            let warp = event as usize % warps;
            let base = lo + round * nt + warp * ww;
            for lane in 0..ww {
                let idx = base + lane;
                if idx < hi {
                    sum += data[idx];
                }
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 10.0).collect()
    }

    fn sched() -> Scheduler {
        Scheduler::new(320)
    }

    #[test]
    fn table2_metadata() {
        assert!(ReduceKernel::Cu.is_deterministic());
        assert!(ReduceKernel::Sptr.is_deterministic());
        assert!(ReduceKernel::Sprg.is_deterministic());
        assert!(ReduceKernel::Tprc.is_deterministic());
        assert!(!ReduceKernel::Spa.is_deterministic());
        assert!(!ReduceKernel::Ao.is_deterministic());
        assert_eq!(ReduceKernel::Tprc.kernel_count(), Some(2));
        assert_eq!(ReduceKernel::Cu.kernel_count(), None);
        assert_eq!(ReduceKernel::Spa.sync_method(), "atomicAdd");
        assert_eq!(ReduceKernel::Sptr.sync_method(), "__threadfence");
        assert_eq!(ReduceKernel::all().len(), 6);
    }

    #[test]
    fn block_partial_matches_serial() {
        for n in [1usize, 7, 64, 100, 257] {
            let xs = data(n, n as u64);
            let p = block_partial(&xs, 64);
            let s: f64 = xs.iter().sum();
            assert!((p - s).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn chunk_bounds_partition() {
        let b = chunk_bounds(1000, 7);
        assert_eq!(b.len(), 7);
        assert_eq!(b[0].0, 0);
        assert_eq!(b.last().unwrap().1, 1000);
        for w in b.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // more blocks than elements: trailing empty chunks
        let b = chunk_bounds(3, 8);
        assert!(b.iter().skip(3).all(|&(lo, hi)| lo == hi));
    }

    #[test]
    fn all_kernels_compute_the_sum() {
        let xs = data(100_000, 1);
        let expected: f64 = xs.iter().sum();
        let params = KernelParams::new(128, 64);
        for k in ReduceKernel::all() {
            let v = reduce_value(k, &xs, params, &sched(), 32, &ScheduleKind::Seeded(3));
            assert!(
                (v - expected).abs() < 1e-8,
                "{}: {v} vs {expected}",
                k.name()
            );
        }
    }

    #[test]
    fn deterministic_kernels_are_schedule_invariant() {
        let xs = data(50_000, 2);
        let params = KernelParams::new(64, 512);
        for k in ReduceKernel::all().into_iter().filter(|k| k.is_deterministic()) {
            let reference = reduce_value(k, &xs, params, &sched(), 32, &ScheduleKind::InOrder);
            for kind in [
                ScheduleKind::Seeded(1),
                ScheduleKind::Seeded(999),
                ScheduleKind::UniformRandom(5),
                ScheduleKind::Reverse,
            ] {
                let v = reduce_value(k, &xs, params, &sched(), 32, &kind);
                assert_eq!(
                    v.to_bits(),
                    reference.to_bits(),
                    "{} must ignore the schedule",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn nondeterministic_kernels_vary_with_schedule() {
        let xs = data(1_000_000, 3);
        let params = KernelParams::fig1();
        for k in [ReduceKernel::Spa, ReduceKernel::Ao] {
            let mut seen = std::collections::HashSet::new();
            for run in 0..20 {
                let v = reduce_value(
                    k,
                    &xs,
                    params,
                    &sched(),
                    32,
                    &ScheduleKind::Seeded(42).for_run(run),
                );
                seen.insert(v.to_bits());
            }
            assert!(
                seen.len() > 1,
                "{} should vary across schedules, saw {} distinct values",
                k.name(),
                seen.len()
            );
        }
    }

    #[test]
    fn nondeterministic_kernels_replay_bitwise_for_fixed_seed() {
        let xs = data(100_000, 4);
        let params = KernelParams::new(64, 782);
        for k in [ReduceKernel::Spa, ReduceKernel::Ao] {
            let kind = ScheduleKind::Seeded(7);
            let a = reduce_value(k, &xs, params, &sched(), 32, &kind);
            let b = reduce_value(k, &xs, params, &sched(), 32, &kind);
            assert_eq!(a.to_bits(), b.to_bits(), "{}", k.name());
        }
    }

    #[test]
    fn ao_in_order_matches_spa_in_order_value_family() {
        // With an in-order schedule AO is the plain serial sum.
        let xs = data(10_000, 5);
        let params = KernelParams::new(64, 16);
        let v = reduce_value(
            ReduceKernel::Ao,
            &xs,
            params,
            &sched(),
            32,
            &ScheduleKind::InOrder,
        );
        let serial: f64 = {
            let mut s = 0.0;
            for &x in &xs {
                s += x;
            }
            s
        };
        assert_eq!(v.to_bits(), serial.to_bits());
    }

    #[test]
    fn cub_params_cover_input() {
        for n in [1usize, 100, 4096, 4_194_304] {
            let p = cub_params(n);
            assert!(p.num_blocks as usize * 256 * 16 >= n);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_nt_panics() {
        KernelParams::new(96, 4);
    }
}
