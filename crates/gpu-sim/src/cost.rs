//! Analytic cost model for the simulated kernels.
//!
//! The model decomposes a launch into the terms that dominate on real
//! hardware:
//!
//! * a **memory pass**: `n · 8 bytes / effective_bandwidth` — every
//!   kernel except AO is bandwidth-bound on its single pass over the
//!   data;
//! * **launch overhead** per kernel;
//! * the kernel-specific **finalisation**: overlapped partial atomics
//!   (SPA), last-block tree/serial reduction (SPTR/SPRG), a
//!   device-to-host transfer plus host loop (TPRC), the library's fixed
//!   overhead (CU);
//! * AO instead pays one **contended atomic** per element — they
//!   serialise through a single cache line, which is why AO sits two
//!   orders of magnitude above everything else in Table 4.
//!
//! Parameters live in [`crate::profile::DeviceProfile`] and are
//! calibrated against the paper's Table 4 (see `EXPERIMENTS.md` for
//! paper-vs-model numbers). Simulated timings get a small seeded,
//! Gaussian-ish jitter so repeated "measurements" produce the
//! `mean(std)` cells of the paper's tables.

use fpna_core::rng::SplitMix64;

use crate::profile::DeviceProfile;
use crate::reduce::{KernelParams, ReduceKernel};

/// Estimated time of one reduction launch, in nanoseconds, without
/// jitter.
pub fn reduce_time_ns(
    profile: &DeviceProfile,
    kernel: ReduceKernel,
    n: usize,
    params: KernelParams,
) -> f64 {
    let bytes = (n * 8) as f64;
    let mem_pass = bytes / profile.effective_bandwidth_gbps; // GB/s == bytes/ns
    let launch = profile.launch_overhead_ns;
    let nb = params.num_blocks as f64;
    match kernel {
        ReduceKernel::Ao => launch + n as f64 * profile.contended_atomic_ns,
        ReduceKernel::Spa => launch + mem_pass + nb * profile.partial_atomic_ns,
        ReduceKernel::Sptr => launch + mem_pass + nb * profile.finalize_tree_ns_per_partial,
        ReduceKernel::Sprg => {
            // serial last-block loop: slightly worse than the tree
            launch + mem_pass + nb * profile.finalize_tree_ns_per_partial * 1.25
        }
        ReduceKernel::Tprc => {
            2.0 * launch
                + mem_pass
                + profile.d2h_fixed_ns
                + nb * 8.0 * profile.d2h_ns_per_byte
                + nb * profile.host_add_ns
        }
        ReduceKernel::Cu => 2.0 * launch + mem_pass + profile.cub_fixed_ns,
    }
}

/// Apply the profile's measurement jitter to a noise-free estimate.
/// The jitter is a seeded two-draw approximation of Gaussian noise
/// (Irwin–Hall with k = 2), truncated so time stays positive.
pub fn jittered_time_ns(base_ns: f64, relative_jitter: f64, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed ^ 0x5bd1_e995);
    let z = (rng.next_f64() + rng.next_f64()) - 1.0; // mean 0, in (-1, 1)
    (base_ns * (1.0 + relative_jitter * z * 2.45)).max(0.0)
}

/// The paper's performance-penalty metric (Table 4):
/// `Ps = 100·(1 − t/min(t))`, i.e. `0` for the fastest implementation
/// and negative for everything slower.
pub fn performance_penalty(time: f64, fastest: f64) -> f64 {
    100.0 * (1.0 - time / fastest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GpuModel;

    const N: usize = 4_194_304;

    fn t_ms(model: GpuModel, k: ReduceKernel, params: KernelParams) -> f64 {
        // Table 4 reports time for 100 sums in ms.
        let p = DeviceProfile::new(model);
        reduce_time_ns(&p, k, N, params) * 100.0 / 1e6
    }

    #[test]
    fn v100_ranking_matches_table4() {
        let params = KernelParams::new(512, 128);
        let spa = t_ms(GpuModel::V100, ReduceKernel::Spa, params);
        let sptr = t_ms(GpuModel::V100, ReduceKernel::Sptr, params);
        let tprc = t_ms(GpuModel::V100, ReduceKernel::Tprc, params);
        let cu = t_ms(GpuModel::V100, ReduceKernel::Cu, params);
        let ao = t_ms(GpuModel::V100, ReduceKernel::Ao, params);
        assert!(spa < sptr && sptr < tprc && tprc < cu && cu < ao);
        // two orders of magnitude for AO
        assert!(ao / spa > 100.0, "AO/SPA = {}", ao / spa);
        // paper: 6.456 ms for SPA — we match the scale
        assert!((spa - 6.456).abs() < 0.5, "spa = {spa}");
        assert!((ao - 872.0).abs() < 30.0, "ao = {ao}");
    }

    #[test]
    fn gh200_ranking_matches_table4() {
        let params = KernelParams::new(512, 512);
        let spa = t_ms(GpuModel::Gh200, ReduceKernel::Spa, params);
        let cu = t_ms(GpuModel::Gh200, ReduceKernel::Cu, params);
        let tprc = t_ms(GpuModel::Gh200, ReduceKernel::Tprc, params);
        let sptr = t_ms(GpuModel::Gh200, ReduceKernel::Sptr, params);
        let ao = t_ms(GpuModel::Gh200, ReduceKernel::Ao, params);
        assert!(spa < cu && cu < tprc && tprc < sptr && sptr < ao);
        // SPA vs SPTR gap is several percent on GH200 (7.8% in paper)
        let gap = (sptr - spa) / spa * 100.0;
        assert!(gap > 3.0 && gap < 12.0, "gap {gap}%");
    }

    #[test]
    fn mi250x_ranking_matches_table4() {
        let spa = t_ms(GpuModel::Mi250x, ReduceKernel::Spa, KernelParams::new(512, 256));
        let tprc = t_ms(GpuModel::Mi250x, ReduceKernel::Tprc, KernelParams::new(512, 256));
        let cu = t_ms(GpuModel::Mi250x, ReduceKernel::Cu, KernelParams::new(512, 256));
        let sptr = t_ms(GpuModel::Mi250x, ReduceKernel::Sptr, KernelParams::new(256, 512));
        assert!(tprc < cu && cu < spa && spa < sptr, "tprc={tprc} cu={cu} spa={spa} sptr={sptr}");
    }

    #[test]
    fn penalty_definition() {
        assert_eq!(performance_penalty(1.0, 1.0), 0.0);
        assert!((performance_penalty(1.1, 1.0) + 10.0).abs() < 1e-9);
        assert!(performance_penalty(2.0, 1.0) < performance_penalty(1.5, 1.0));
    }

    #[test]
    fn jitter_statistics() {
        let base = 1000.0;
        let rel = 0.01;
        let samples: Vec<f64> = (0..5000)
            .map(|i| jittered_time_ns(base, rel, i))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - base).abs() / base < 0.005, "mean {mean}");
        let var = samples.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let rel_std = var.sqrt() / base;
        assert!(
            (rel_std - rel).abs() / rel < 0.25,
            "relative std {rel_std} vs target {rel}"
        );
        // reproducible
        assert_eq!(jittered_time_ns(base, rel, 7), jittered_time_ns(base, rel, 7));
    }

    #[test]
    fn jitter_never_negative() {
        for i in 0..100 {
            assert!(jittered_time_ns(1.0, 5.0, i) >= 0.0);
        }
    }
}
