//! Property tests for the simulator: schedule validity, kernel value
//! correctness against an exact oracle, and the determinism contract.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind, Scheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleavings cover every item exactly once and preserve each
    /// queue's internal order, for every policy.
    #[test]
    fn interleave_is_a_valid_linearisation(
        queues in vec(0u32..20, 1..40),
        window in 1u32..64,
        seed in any::<u64>(),
    ) {
        let s = Scheduler::new(window);
        for kind in [
            ScheduleKind::Seeded(seed),
            ScheduleKind::UniformRandom(seed),
            ScheduleKind::InOrder,
            ScheduleKind::Reverse,
        ] {
            let events = s.interleave(&queues, &kind);
            let total: usize = queues.iter().map(|&c| c as usize).sum();
            prop_assert_eq!(events.len(), total);
            let mut next = vec![0u32; queues.len()];
            for (q, i) in events {
                prop_assert_eq!(i, next[q as usize], "queue {} out of order", q);
                next[q as usize] += 1;
            }
            for (q, (&want, got)) in queues.iter().zip(next).enumerate() {
                prop_assert_eq!(want, got, "queue {} incomplete", q);
            }
        }
    }

    /// Every reduction kernel returns the true sum to a tolerance set
    /// by the input's conditioning — under an arbitrary schedule.
    #[test]
    fn kernels_compute_the_sum(
        xs in vec(-1e6..1e6f64, 1..2000),
        seed in any::<u64>(),
        nt_pow in 4u32..9,
        nb in 1u32..32,
    ) {
        let device = GpuDevice::new(GpuModel::Gh200);
        let params = KernelParams::new(1 << nt_pow, nb);
        let exact = fpna_summation::exact::exact_sum(&xs);
        let scale: f64 = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        for kernel in ReduceKernel::all() {
            let v = device
                .reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed))
                .unwrap()
                .value;
            prop_assert!((v - exact).abs() <= 1e-11 * scale,
                "{}: {} vs {}", kernel.name(), v, exact);
        }
    }

    /// The determinism contract: deterministic kernels produce one bit
    /// pattern across schedules; with a *fixed* schedule, every kernel
    /// replays exactly.
    #[test]
    fn determinism_contract(
        xs in vec(-1e3..1e3f64, 64..512),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let device = GpuDevice::new(GpuModel::V100);
        let params = KernelParams::new(64, 8);
        for kernel in ReduceKernel::all() {
            let a1 = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed_a)).unwrap().value;
            let a2 = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed_a)).unwrap().value;
            prop_assert_eq!(a1.to_bits(), a2.to_bits(), "{} must replay", kernel.name());
            if kernel.is_deterministic() {
                let b = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed_b)).unwrap().value;
                prop_assert_eq!(a1.to_bits(), b.to_bits(), "{} must ignore schedule", kernel.name());
            }
        }
    }

    /// Scatter commit orders are permutations that keep warp lanes
    /// consecutive.
    #[test]
    fn scatter_order_valid(n in 0usize..5000, seed in any::<u64>()) {
        let device = GpuDevice::new(GpuModel::H100);
        let order = device.scatter_commit_order(n, &ScheduleKind::Seeded(seed));
        prop_assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &i in &order {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        // every *full* warp's items commit consecutively in lane order
        let ww = 32usize;
        let mut pos = vec![0usize; n];
        for (p, &i) in order.iter().enumerate() {
            pos[i as usize] = p;
        }
        for warp_start in (0..n).step_by(ww) {
            if warp_start + ww > n {
                break; // partial trailing warp
            }
            for lane in 1..ww {
                prop_assert_eq!(
                    pos[warp_start + lane],
                    pos[warp_start] + lane,
                    "warp at {} not lane-ordered", warp_start
                );
            }
        }
    }

    /// Intra-run parallelism contract: `block_partials` and every
    /// kernel value (including AO's parallel event gather) are bitwise
    /// identical to the serial execution for thread-count hints
    /// {1, 2, 4, 7}.
    #[test]
    fn single_run_values_are_intra_thread_invariant(
        n in 1usize..40_000,
        seed in any::<u64>(),
        nb in 1u32..300,
    ) {
        use fpna_core::executor::{intra_hint_test_guard, set_intra_threads};
        use fpna_gpu_sim::reduce::{block_partials, reduce_value};
        let _hint = intra_hint_test_guard();

        let mut rng = fpna_core::rng::SplitMix64::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e6 - 5e5).collect();
        let params = KernelParams::new(64, nb);
        let sched = Scheduler::new(320);
        let kind = ScheduleKind::Seeded(seed);

        set_intra_threads(1);
        let partials_ref = block_partials(&xs, params);
        let ao_ref = reduce_value(ReduceKernel::Ao, &xs, params, &sched, 32, &kind);
        let sptr_ref = reduce_value(ReduceKernel::Sptr, &xs, params, &sched, 32, &kind);
        for threads in [2usize, 4, 7] {
            set_intra_threads(threads);
            let partials = block_partials(&xs, params);
            prop_assert_eq!(partials.len(), partials_ref.len());
            for (a, b) in partials.iter().zip(&partials_ref) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "threads={}", threads);
            }
            let ao = reduce_value(ReduceKernel::Ao, &xs, params, &sched, 32, &kind);
            prop_assert_eq!(ao.to_bits(), ao_ref.to_bits(), "AO threads={}", threads);
            let sptr = reduce_value(ReduceKernel::Sptr, &xs, params, &sched, 32, &kind);
            prop_assert_eq!(sptr.to_bits(), sptr_ref.to_bits(), "SPTR threads={}", threads);
        }
    }
}
