//! Property tests for the simulator: schedule validity, kernel value
//! correctness against an exact oracle, and the determinism contract.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_gpu_sim::{GpuDevice, GpuModel, KernelParams, ReduceKernel, ScheduleKind, Scheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleavings cover every item exactly once and preserve each
    /// queue's internal order, for every policy.
    #[test]
    fn interleave_is_a_valid_linearisation(
        queues in vec(0u32..20, 1..40),
        window in 1u32..64,
        seed in any::<u64>(),
    ) {
        let s = Scheduler::new(window);
        for kind in [
            ScheduleKind::Seeded(seed),
            ScheduleKind::UniformRandom(seed),
            ScheduleKind::InOrder,
            ScheduleKind::Reverse,
        ] {
            let events = s.interleave(&queues, &kind);
            let total: usize = queues.iter().map(|&c| c as usize).sum();
            prop_assert_eq!(events.len(), total);
            let mut next = vec![0u32; queues.len()];
            for (q, i) in events {
                prop_assert_eq!(i, next[q as usize], "queue {} out of order", q);
                next[q as usize] += 1;
            }
            for (q, (&want, got)) in queues.iter().zip(next).enumerate() {
                prop_assert_eq!(want, got, "queue {} incomplete", q);
            }
        }
    }

    /// Every reduction kernel returns the true sum to a tolerance set
    /// by the input's conditioning — under an arbitrary schedule.
    #[test]
    fn kernels_compute_the_sum(
        xs in vec(-1e6..1e6f64, 1..2000),
        seed in any::<u64>(),
        nt_pow in 4u32..9,
        nb in 1u32..32,
    ) {
        let device = GpuDevice::new(GpuModel::Gh200);
        let params = KernelParams::new(1 << nt_pow, nb);
        let exact = fpna_summation::exact::exact_sum(&xs);
        let scale: f64 = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        for kernel in ReduceKernel::all() {
            let v = device
                .reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed))
                .unwrap()
                .value;
            prop_assert!((v - exact).abs() <= 1e-11 * scale,
                "{}: {} vs {}", kernel.name(), v, exact);
        }
    }

    /// The determinism contract: deterministic kernels produce one bit
    /// pattern across schedules; with a *fixed* schedule, every kernel
    /// replays exactly.
    #[test]
    fn determinism_contract(
        xs in vec(-1e3..1e3f64, 64..512),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let device = GpuDevice::new(GpuModel::V100);
        let params = KernelParams::new(64, 8);
        for kernel in ReduceKernel::all() {
            let a1 = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed_a)).unwrap().value;
            let a2 = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed_a)).unwrap().value;
            prop_assert_eq!(a1.to_bits(), a2.to_bits(), "{} must replay", kernel.name());
            if kernel.is_deterministic() {
                let b = device.reduce(kernel, &xs, params, &ScheduleKind::Seeded(seed_b)).unwrap().value;
                prop_assert_eq!(a1.to_bits(), b.to_bits(), "{} must ignore schedule", kernel.name());
            }
        }
    }

    /// Scatter commit orders are permutations that keep warp lanes
    /// consecutive.
    #[test]
    fn scatter_order_valid(n in 0usize..5000, seed in any::<u64>()) {
        let device = GpuDevice::new(GpuModel::H100);
        let order = device.scatter_commit_order(n, &ScheduleKind::Seeded(seed));
        prop_assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &i in &order {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        // every *full* warp's items commit consecutively in lane order
        let ww = 32usize;
        let mut pos = vec![0usize; n];
        for (p, &i) in order.iter().enumerate() {
            pos[i as usize] = p;
        }
        for warp_start in (0..n).step_by(ww) {
            if warp_start + ww > n {
                break; // partial trailing warp
            }
            for lane in 1..ww {
                prop_assert_eq!(
                    pos[warp_start + lane],
                    pos[warp_start] + lane,
                    "warp at {} not lane-ordered", warp_start
                );
            }
        }
    }
}
