//! Property tests for the exact accumulator and the summation family —
//! the invariants that make "reproducible summation" a meaningful
//! claim.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_summation::exact::{exact_sum, ExactAccumulator};
use fpna_summation::{
    kahan_sum, klein_sum, neumaier_sum, pairwise_sum, serial_sum, SumAlgorithm,
};

fn summable() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e15..1e15f64,
        -1.0..1.0f64,
        -1e-15..1e-15f64,
        Just(0.0),
        Just(-0.0),
    ]
}

/// The adversarial stream for the vectorized-kernel equivalence
/// suites: everything `summable()` covers plus subnormals (zero
/// biased exponent — the lane extraction's implicit-bit edge) and
/// near-overflow magnitudes (the top of the bin table).
fn adversarial() -> impl Strategy<Value = f64> {
    prop_oneof![
        summable(),
        // Subnormals of either sign, including f64::MIN_POSITIVE / 2⁵².
        (1u64..1 << 52).prop_map(f64::from_bits),
        (1u64..1 << 52).prop_map(|b| -f64::from_bits(b)),
        // Huge magnitudes near the top of the exponent range.
        1e300..1e308f64,
        -1e308..-1e300f64,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The defining property: the exact sum depends only on the
    /// multiset of inputs, never on order.
    #[test]
    fn exact_sum_order_invariant(mut xs in vec(summable(), 0..400), seed in any::<u64>()) {
        let reference = exact_sum(&xs);
        let mut rng = fpna_core::rng::SplitMix64::new(seed);
        fpna_core::rng::shuffle(&mut xs, &mut rng);
        prop_assert_eq!(exact_sum(&xs).to_bits(), reference.to_bits());
        xs.reverse();
        prop_assert_eq!(exact_sum(&xs).to_bits(), reference.to_bits());
    }

    /// Splitting the input at any point and merging the two exact
    /// accumulators gives the same bits as one pass.
    #[test]
    fn exact_merge_partition_invariant(xs in vec(summable(), 1..300), cut in 0usize..300) {
        let cut = cut.min(xs.len());
        let whole = exact_sum(&xs);
        let mut left: ExactAccumulator = xs[..cut].iter().copied().collect();
        let right: ExactAccumulator = xs[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.round().to_bits(), whole.to_bits());
    }

    /// Adding a value and its negation is an exact no-op.
    #[test]
    fn exact_cancellation(xs in vec(summable(), 0..100), y in summable()) {
        let mut with: ExactAccumulator = xs.iter().copied().collect();
        with.add(y);
        with.add(-y);
        let without: ExactAccumulator = xs.iter().copied().collect();
        prop_assert_eq!(with.round().to_bits(), without.round().to_bits());
    }

    /// Every algorithm in the roster computes the same value to a
    /// conditioning-aware tolerance.
    #[test]
    fn roster_agrees(xs in vec(-1e9..1e9f64, 1..500)) {
        let reference = exact_sum(&xs);
        let scale: f64 = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        for alg in SumAlgorithm::roster(3) {
            let v = alg.sum(&xs);
            prop_assert!((v - reference).abs() <= 1e-12 * scale, "{}: {} vs {}", alg.name(), v, reference);
        }
    }

    /// Compensated sums never do worse than the plain serial sum
    /// (measured against the exact value).
    #[test]
    fn compensation_is_no_worse(xs in vec(-1e12..1e12f64, 2..300)) {
        let exact = exact_sum(&xs);
        let serial_err = (serial_sum(&xs) - exact).abs();
        for f in [kahan_sum, neumaier_sum, klein_sum] {
            let err = (f(&xs) - exact).abs();
            // allow one ulp of slack around equality
            prop_assert!(err <= serial_err + exact.abs() * f64::EPSILON,
                "compensated err {} > serial err {}", err, serial_err);
        }
    }

    /// Pairwise sums are deterministic and within the Higham bound's
    /// ballpark of the exact value.
    #[test]
    fn pairwise_stable_and_accurate(xs in vec(-1e6..1e6f64, 1..1000)) {
        let a = pairwise_sum(&xs);
        prop_assert_eq!(a.to_bits(), pairwise_sum(&xs).to_bits());
        let scale: f64 = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        prop_assert!((a - exact_sum(&xs)).abs() <= 1e-12 * scale);
    }

    /// Round-tripping a single value through the accumulator is exact.
    #[test]
    fn single_value_roundtrip(x in summable()) {
        let mut acc = ExactAccumulator::new();
        acc.add(x);
        // -0.0 rounds to +0.0; compare by value there
        if x == 0.0 {
            prop_assert_eq!(acc.round(), 0.0);
        } else {
            prop_assert_eq!(acc.round().to_bits(), x.to_bits());
        }
    }

    /// The sparse-span invariant: under arbitrary interleavings of
    /// `add`, `merge` (canonical and raw) and `normalize`, the tracked
    /// `[lo, hi)` window always covers every nonzero limb, and the
    /// value stays exactly the multiset sum of everything folded in.
    #[test]
    fn span_invariant_under_interleavings(
        ops in vec(0u8..5u8, 1..200),
        vals in vec(summable(), 200..201),
    ) {
        let mut acc = ExactAccumulator::new();
        let mut other = ExactAccumulator::new();
        let mut model_acc: Vec<f64> = Vec::new();
        let mut model_other: Vec<f64> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            let v = vals[i % vals.len()];
            match op {
                0 => { acc.add(v); model_acc.push(v); }
                1 => { other.add(v); model_other.push(v); }
                2 => {
                    // canonical rhs merge (the wire/worker hand-off)
                    other.normalize();
                    acc.merge(&other);
                    model_acc.extend(model_other.iter().copied());
                }
                3 => {
                    // raw rhs merge (both sides possibly non-canonical)
                    acc.merge(&other);
                    model_acc.extend(model_other.iter().copied());
                }
                _ => acc.normalize(),
            }
            prop_assert!(acc.span_covers_nonzero(), "acc span lost a nonzero limb");
            prop_assert!(other.span_covers_nonzero(), "other span lost a nonzero limb");
        }
        prop_assert_eq!(acc.round().to_bits(), exact_sum(&model_acc).to_bits());
        prop_assert_eq!(other.round().to_bits(), exact_sum(&model_other).to_bits());
    }

    /// Wire round trip is bitwise lossless: encode → decode reproduces
    /// the canonical state (limbs, span, pending) and the same bytes.
    #[test]
    fn wire_round_trip_lossless(xs in vec(summable(), 0..200)) {
        let mut acc: ExactAccumulator = xs.iter().copied().collect();
        // encoding canonicalizes internally; decoding must match the
        // canonicalized state exactly
        let bytes = acc.to_wire_bytes();
        prop_assert!(bytes.len() <= 2 + ExactAccumulator::WIRE_BYTES);
        let decoded = ExactAccumulator::from_wire_bytes(&bytes).unwrap();
        acc.normalize();
        prop_assert!(decoded.state_eq(&acc), "decoded state differs");
        prop_assert_eq!(bytes.len(), acc.wire_len());
        prop_assert_eq!(decoded.to_wire_bytes(), bytes);
        prop_assert_eq!(decoded.round().to_bits(), acc.round().to_bits());
    }

    /// `add_slice` (the binned bulk loop) is bitwise equivalent to
    /// per-element `add`, at every length around its internal
    /// thresholds.
    #[test]
    fn add_slice_matches_per_element_adds(xs in vec(summable(), 0..3000)) {
        let mut bulk = ExactAccumulator::new();
        bulk.add_slice(&xs);
        let per: ExactAccumulator = xs.iter().copied().collect();
        prop_assert!(bulk.span_covers_nonzero());
        prop_assert_eq!(bulk.round().to_bits(), per.round().to_bits());
        // canonical states agree too
        let mut a = bulk.clone();
        let mut b = per.clone();
        a.normalize();
        b.normalize();
        prop_assert!(a.state_eq(&b));
    }

    /// The lane-vectorized `add_slice` (two-pass extraction + 8-way
    /// interleaved sub-bins) is bitwise equivalent to the retained
    /// single-bin scalar reference on adversarial streams: subnormals,
    /// extreme magnitudes, signed zeros, and exact cancellation (the
    /// appended negated copy drives every bin — and every sub-bin
    /// pattern that sums to zero — through the flush path).
    #[test]
    fn lane_add_slice_matches_scalar_reference(
        xs in vec(adversarial(), 0..2600),
        cancel in any::<bool>(),
    ) {
        let mut xs = xs;
        if cancel {
            let neg: Vec<f64> = xs.iter().map(|&x| -x).collect();
            xs.extend(neg);
        }
        let mut lanes = ExactAccumulator::new();
        lanes.add_slice(&xs);
        let mut scalar = ExactAccumulator::new();
        scalar.add_slice_scalar(&xs);
        prop_assert!(lanes.span_covers_nonzero());
        prop_assert_eq!(lanes.round().to_bits(), scalar.round().to_bits());
        lanes.normalize();
        scalar.normalize();
        prop_assert!(lanes.state_eq(&scalar), "lane and scalar canonical states differ");
    }

    /// The two-pass `normalize` (vectorizable digit/carry split + one
    /// serial carry fold) lands in the identical canonical state as
    /// the retained one-pass scalar walk, starting from arbitrarily
    /// messy pre-normalization states.
    #[test]
    fn two_pass_normalize_matches_scalar_reference(
        xs in vec(adversarial(), 0..600),
        cuts in vec(0usize..600, 0..6),
    ) {
        // Interleave bulk adds and per-element adds so the accumulator
        // carries a mix of binned flushes and single-add deposits when
        // normalization runs.
        let mut a = ExactAccumulator::new();
        let mut b = ExactAccumulator::new();
        let mut prev = 0usize;
        for &cut in cuts.iter().chain(std::iter::once(&xs.len())) {
            let cut = cut.min(xs.len());
            if cut > prev {
                a.add_slice(&xs[prev..cut]);
                for &x in &xs[prev..cut] {
                    b.add(x);
                }
                prev = cut;
            }
        }
        a.normalize();
        b.normalize_scalar();
        prop_assert!(a.state_eq(&b), "two-pass and scalar normalize states differ");
        prop_assert_eq!(a.round().to_bits(), b.round().to_bits());
    }

    /// The intra-run parallel reproducible sum is bitwise equal to the
    /// serial sum for every thread-count hint.
    #[test]
    fn reproducible_sum_thread_hint_invariant(xs in vec(summable(), 0..2000)) {
        use fpna_summation::parallel::reproducible_threaded_sum;
        let serial = reproducible_threaded_sum(&xs, 1);
        prop_assert_eq!(serial.to_bits(), exact_sum(&xs).to_bits());
        for threads in [2usize, 4, 7] {
            prop_assert_eq!(
                reproducible_threaded_sum(&xs, threads).to_bits(),
                serial.to_bits(),
                "threads={}", threads
            );
        }
    }
}
