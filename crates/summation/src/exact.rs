//! Exact (Kulisch-style) long-accumulator summation.
//!
//! The strongest fix for FPNA is to make the sum *exact*: accumulate
//! every mantissa into a fixed-point register wide enough to cover the
//! entire `f64` exponent range (~2100 bits), so addition becomes
//! integer arithmetic — associative, commutative, and therefore
//! bitwise reproducible under any permutation or parallel schedule.
//! This is the idea behind reproducible-summation libraries in the
//! ReproBLAS lineage (Ahrens–Demmel–Nguyen, reference 2 of the paper);
//! the long-accumulator variant trades memory (a few hundred bytes) for
//! unconditional exactness.
//!
//! The accumulator stores 32 value bits per `i64` limb, leaving 31 bits
//! of headroom so up to 2²⁸ values can be added between carry
//! normalisations.
//!
//! ```
//! use fpna_summation::ExactAccumulator;
//!
//! let xs = [1e16, 1.0, -1e16, 1.0];
//! let mut acc = ExactAccumulator::new();
//! for &x in &xs { acc.add(x); }
//! assert_eq!(acc.round(), 2.0); // serial f64 summation would return 0.0
//! ```

/// Number of limbs: bit positions run from 0 (2⁻¹⁰⁷⁴) to
/// 2045 + 53 = 2098 (top bit of the largest finite double), plus
/// headroom for carries out of the top.
const LIMBS: usize = 70;

/// Value bits per limb.
const LIMB_BITS: u32 = 32;

/// Adds allowed between normalisations: each add contributes < 2³²
/// per limb and limbs hold i64, so 2²⁸ keeps |limb| < 2⁶⁰.
const NORMALIZE_EVERY: u32 = 1 << 28;

/// Exact fixed-point accumulator for `f64` values.
///
/// `add` is exact; [`ExactAccumulator::round`] converts the canonical
/// fixed-point value back to the nearest `f64` (faithful to ≤ 1 ulp,
/// deterministic). Because the internal state after any sequence of
/// adds depends only on the *multiset* of inputs, two accumulators fed
/// the same values in different orders are bit-for-bit equal.
#[derive(Debug, Clone)]
pub struct ExactAccumulator {
    limbs: [i64; LIMBS],
    pending: u32,
}

impl Default for ExactAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactAccumulator {
    /// Serialized size of the accumulator state — what a message
    /// carrying one exact per-element accumulator occupies on a wire.
    /// The network cost models (`fpna-net`, `fpna-collectives`) use
    /// this to price reproducible collectives: `WIRE_BYTES / 8` is the
    /// bandwidth inflation over shipping a plain `f64`.
    pub const WIRE_BYTES: usize = LIMBS * std::mem::size_of::<i64>();

    /// Empty accumulator (value zero).
    pub fn new() -> Self {
        ExactAccumulator {
            limbs: [0; LIMBS],
            pending: 0,
        }
    }

    /// Add a finite `f64` exactly.
    ///
    /// The hot path is branch-free after the finiteness check: the
    /// mantissa is placed as one 128-bit chunk, split into three 32-bit
    /// digits that are always scattered into three consecutive limbs
    /// (zero digits add zero — cheaper than testing for them), and the
    /// sign is applied as a ±1 multiplier instead of a branch per
    /// digit.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinite input — an exact sum of non-finite
    /// values is undefined.
    #[inline]
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "ExactAccumulator::add requires finite input");
        let bits = x.to_bits();
        // +1 for positive, −1 for negative; sign handling deferred to
        // this single multiplier.
        let sign = 1 - 2 * ((bits >> 63) as i64);
        let biased_exp = (bits >> 52) & 0x7ff;
        let frac = bits & 0x000f_ffff_ffff_ffff;
        // value = mantissa * 2^(offset - 1074), offset = bit position of
        // the mantissa's LSB in the accumulator's fixed-point frame.
        // Normal numbers carry the implicit leading bit and offset
        // `biased_exp - 1`; subnormals have no leading bit and offset 0
        // — `saturating_sub` covers both without a branch.
        let mantissa = frac | ((u64::from(biased_exp != 0)) << 52);
        let offset = (biased_exp.saturating_sub(1)) as u32;
        let limb = (offset / LIMB_BITS) as usize;
        let shift = offset % LIMB_BITS;
        let chunk = (mantissa as u128) << shift; // <= 85 bits
        self.limbs[limb] += sign * (chunk as u32 as i64);
        self.limbs[limb + 1] += sign * ((chunk >> LIMB_BITS) as u32 as i64);
        self.limbs[limb + 2] += sign * ((chunk >> (2 * LIMB_BITS)) as u32 as i64);
        self.pending += 1;
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Merge another accumulator into this one (exact; used by the
    /// parallel reproducible sum and the reproducible collectives).
    ///
    /// When `other` is already canonical (`normalize`d — e.g. it
    /// arrived serialized off the wire, or a worker normalized its
    /// partial before handing it over), its limbs are folded in
    /// directly: no clone, no carry pass. A canonical limb is smaller
    /// than one add's contribution, so the fold charges the same
    /// headroom as a couple of adds and carry propagation stays
    /// deferred.
    pub fn merge(&mut self, other: &ExactAccumulator) {
        if other.pending == 0 {
            for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
                *a += *b;
            }
            self.pending = self.pending.saturating_add(2);
            if self.pending >= NORMALIZE_EVERY {
                self.normalize();
            }
            return;
        }
        // Non-canonical right-hand side: normalise a copy first so limb
        // magnitudes stay bounded.
        self.normalize();
        let mut o = other.clone();
        o.normalize();
        for (a, b) in self.limbs.iter_mut().zip(o.limbs.iter()) {
            *a += *b;
        }
        self.pending = 2; // one denormalised add's worth of slack used
    }

    /// Carry-propagate into the canonical *balanced-digit* form: every
    /// limb ends in `[−2^31, 2^31)`. Balanced digits keep the index of
    /// the top nonzero limb aligned with the true magnitude for both
    /// signs (a two's-complement style form would fill all upper limbs
    /// for negative totals and overflow the `f64` conversion). The
    /// canonical form is a pure function of the exact accumulated
    /// value, which is what makes `round` permutation invariant.
    ///
    /// Public so producers can canonicalize *before* a hand-off (worker
    /// partials, serialized wire messages), which lets the receiving
    /// [`ExactAccumulator::merge`] take its no-clone fast path.
    pub fn normalize(&mut self) {
        // The base is a power of two, so the euclidean quotient and
        // remainder are an arithmetic shift and a mask; the balanced
        // adjustment (fold remainders >= 2^31 into the next carry) is a
        // comparison turned into a 0/1 chunk, keeping the whole carry
        // chain branch-free.
        const BASE: i64 = 1i64 << LIMB_BITS;
        const HALF: i64 = BASE / 2;
        const MASK: i64 = BASE - 1;
        let mut carry = 0i64;
        for limb in self.limbs.iter_mut() {
            let v = *limb + carry;
            let r = v & MASK; // in [0, 2^32)
            let q = v >> LIMB_BITS; // floor quotient
            let adj = i64::from(r >= HALF);
            *limb = r - (adj << LIMB_BITS);
            carry = q + adj;
        }
        debug_assert_eq!(carry, 0, "accumulator overflow");
        self.pending = 0;
    }

    /// `true` when the exact value is zero.
    pub fn is_zero(&self) -> bool {
        if self.pending == 0 {
            return self.limbs.iter().all(|&l| l == 0);
        }
        let mut probe = self.clone();
        probe.normalize();
        probe.limbs.iter().all(|&l| l == 0)
    }

    /// Round the exact value to the nearest `f64` (faithful, ≤ 1 ulp;
    /// deterministic function of the accumulated multiset).
    pub fn round(&self) -> f64 {
        let probe;
        let limbs = if self.pending == 0 {
            &self.limbs
        } else {
            probe = {
                let mut p = self.clone();
                p.normalize();
                p
            };
            &probe.limbs
        };
        // Compensated top-down conversion: terms decay by 2^-32 per
        // limb, so the first three nonzero limbs already determine the
        // result; Neumaier compensation absorbs the tail exactly.
        let mut sum = 0.0f64;
        let mut comp = 0.0f64;
        for i in (0..LIMBS).rev() {
            let l = limbs[i];
            if l == 0 {
                continue;
            }
            let term = l as f64 * pow2(32 * i as i32 - 1074);
            let t = sum + term;
            if sum.abs() >= term.abs() {
                comp += (sum - t) + term;
            } else {
                comp += (term - t) + sum;
            }
            sum = t;
        }
        sum + comp
    }
}

/// 2^k as f64, valid for the accumulator's exponent range.
fn pow2(k: i32) -> f64 {
    // f64::powi(2.0, k) is exact for |k| <= 1023; below that we build
    // subnormals by halving, which is also exact.
    if k >= -1022 {
        2.0f64.powi(k)
    } else {
        2.0f64.powi(-1022) * 2.0f64.powi(k + 1022)
    }
}

impl FromIterator<f64> for ExactAccumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = ExactAccumulator::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

/// Exact, reproducible sum of a slice: the one-shot API.
pub fn exact_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<ExactAccumulator>().round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::{permutation, SplitMix64};

    #[test]
    fn exact_on_cancelling_data() {
        assert_eq!(exact_sum(&[1e16, 1.0, -1e16, 1.0]), 2.0);
        assert_eq!(exact_sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
        assert_eq!(exact_sum(&[]), 0.0);
        assert_eq!(exact_sum(&[-0.5]), -0.5);
    }

    #[test]
    fn exact_on_tiny_and_huge() {
        let tiny = f64::MIN_POSITIVE * 0.5; // subnormal
        assert_eq!(exact_sum(&[tiny, tiny]), tiny * 2.0);
        assert_eq!(exact_sum(&[f64::MAX * 0.5, f64::MAX * 0.25]), f64::MAX * 0.75);
        assert_eq!(exact_sum(&[tiny, -tiny]), 0.0);
    }

    #[test]
    fn permutation_invariance_bitwise() {
        let mut rng = SplitMix64::new(42);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(40) as i32) - 20))
            .collect();
        let reference = exact_sum(&xs);
        for seed in 0..5 {
            let mut prng = SplitMix64::new(seed);
            let perm = permutation(xs.len(), &mut prng);
            let shuffled: Vec<f64> = perm.iter().map(|&i| xs[i as usize]).collect();
            assert_eq!(
                exact_sum(&shuffled).to_bits(),
                reference.to_bits(),
                "exact sum must be permutation invariant (seed {seed})"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut rng = SplitMix64::new(7);
        let a: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 1e6 - 5e5).collect();
        let b: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 1e-6).collect();
        let mut acc_a: ExactAccumulator = a.iter().copied().collect();
        let acc_b: ExactAccumulator = b.iter().copied().collect();
        acc_a.merge(&acc_b);
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(acc_a.round().to_bits(), exact_sum(&concat).to_bits());
    }

    #[test]
    fn merge_fast_path_matches_slow_path() {
        let mut rng = SplitMix64::new(21);
        let a: Vec<f64> = (0..2000).map(|_| rng.next_f64() * 1e9 - 5e8).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.next_f64() * 1e-9).collect();
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let expected = exact_sum(&concat);

        // Slow path: rhs has pending adds.
        let mut slow: ExactAccumulator = a.iter().copied().collect();
        let rhs_raw: ExactAccumulator = b.iter().copied().collect();
        slow.merge(&rhs_raw);
        assert_eq!(slow.round().to_bits(), expected.to_bits());

        // Fast path: rhs canonicalized first (pending == 0).
        let mut fast: ExactAccumulator = a.iter().copied().collect();
        let mut rhs_canonical: ExactAccumulator = b.iter().copied().collect();
        rhs_canonical.normalize();
        fast.merge(&rhs_canonical);
        assert_eq!(fast.round().to_bits(), expected.to_bits());

        // Chained fast-path merges (the collectives pattern: one merge
        // per received message) stay exact.
        let mut chain = ExactAccumulator::new();
        for piece in concat.chunks(173) {
            let mut acc: ExactAccumulator = piece.iter().copied().collect();
            acc.normalize();
            chain.merge(&acc);
        }
        assert_eq!(chain.round().to_bits(), expected.to_bits());
    }

    #[test]
    fn normalize_is_idempotent_and_preserves_value() {
        let mut rng = SplitMix64::new(22);
        let xs: Vec<f64> = (0..500)
            .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(60) as i32) - 30))
            .collect();
        let mut acc: ExactAccumulator = xs.iter().copied().collect();
        let before = acc.round();
        acc.normalize();
        assert_eq!(acc.round().to_bits(), before.to_bits());
        acc.normalize();
        assert_eq!(acc.round().to_bits(), before.to_bits());
    }

    #[test]
    fn negative_totals() {
        assert_eq!(exact_sum(&[1.0, -3.0]), -2.0);
        assert_eq!(exact_sum(&[-1e300, 1e299]), -9e299);
        let mut rng = SplitMix64::new(9);
        let xs: Vec<f64> = (0..1000).map(|_| -rng.next_f64()).collect();
        let e = exact_sum(&xs);
        assert!(e < 0.0);
        assert!((e - xs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn is_zero_detects_exact_cancellation() {
        let mut acc = ExactAccumulator::new();
        assert!(acc.is_zero());
        acc.add(3.5);
        assert!(!acc.is_zero());
        acc.add(-3.5);
        assert!(acc.is_zero());
    }

    #[test]
    fn agrees_with_serial_on_benign_data() {
        let mut rng = SplitMix64::new(11);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        let e = exact_sum(&xs);
        let s: f64 = xs.iter().sum();
        assert!((e - s).abs() / s < 1e-12);
    }

    #[test]
    fn round_is_faithful_on_known_values() {
        // exact value representable: sum of powers of two
        assert_eq!(exact_sum(&[0.5, 0.25, 0.125]), 0.875);
        // 0.1 alone must round-trip exactly
        assert_eq!(exact_sum(&[0.1]).to_bits(), 0.1f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_panics() {
        ExactAccumulator::new().add(f64::NAN);
    }
}
