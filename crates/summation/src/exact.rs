//! Exact (Kulisch-style) long-accumulator summation.
//!
//! The strongest fix for FPNA is to make the sum *exact*: accumulate
//! every mantissa into a fixed-point register wide enough to cover the
//! entire `f64` exponent range (~2100 bits), so addition becomes
//! integer arithmetic — associative, commutative, and therefore
//! bitwise reproducible under any permutation or parallel schedule.
//! This is the idea behind reproducible-summation libraries in the
//! ReproBLAS lineage (Ahrens–Demmel–Nguyen, reference 2 of the paper);
//! the long-accumulator variant trades memory (a few hundred bytes) for
//! unconditional exactness.
//!
//! The accumulator stores 32 value bits per `i64` limb, leaving 31 bits
//! of headroom so up to 2²⁸ values can be added between carry
//! normalisations.
//!
//! ```
//! use fpna_summation::ExactAccumulator;
//!
//! let xs = [1e16, 1.0, -1e16, 1.0];
//! let mut acc = ExactAccumulator::new();
//! for &x in &xs { acc.add(x); }
//! assert_eq!(acc.round(), 2.0); // serial f64 summation would return 0.0
//! ```

/// Number of limbs: bit positions run from 0 (2⁻¹⁰⁷⁴) to
/// 2045 + 53 = 2098 (top bit of the largest finite double), plus
/// headroom for carries out of the top.
const LIMBS: usize = 70;

/// Value bits per limb.
const LIMB_BITS: u32 = 32;

/// Adds allowed between normalisations: each add contributes < 2³²
/// per limb and limbs hold i64, so 2²⁸ keeps |limb| < 2⁶⁰.
const NORMALIZE_EVERY: u32 = 1 << 28;

/// Exact fixed-point accumulator for `f64` values.
///
/// `add` is exact; [`ExactAccumulator::round`] converts the canonical
/// fixed-point value back to the nearest `f64` (faithful to ≤ 1 ulp,
/// deterministic). Because the internal state after any sequence of
/// adds depends only on the *multiset* of inputs, two accumulators fed
/// the same values in different orders are bit-for-bit equal.
///
/// ## Sparse limb span
///
/// Alongside the 70 limbs the accumulator maintains the occupied
/// window `[lo, hi)` — an index interval guaranteed to be a superset
/// of the nonzero limbs (each `add` touches three consecutive limbs;
/// maintaining the hull is one `min` and one `max`). Small-dynamic-
/// range data occupies a handful of limbs, so `normalize`, `round`,
/// `is_zero` and `merge` walk ~6 limbs instead of 70 — the fixed cost
/// that dominates per-element exact pipelines and reproducible
/// collectives. `normalize` tightens the span to the exact nonzero
/// hull; the zero value is represented as the empty span
/// `lo = LIMBS, hi = 0`.
#[derive(Debug, Clone)]
pub struct ExactAccumulator {
    limbs: [i64; LIMBS],
    pending: u32,
    /// First possibly-nonzero limb (inclusive). `LIMBS` when empty.
    lo: u32,
    /// Last possibly-nonzero limb (exclusive). `0` when empty.
    hi: u32,
}

impl Default for ExactAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactAccumulator {
    /// Dense serialized size of the accumulator state: the documented
    /// **upper bound** on what a message carrying one exact per-element
    /// accumulator occupies on a wire. `WIRE_BYTES / 8` is the
    /// worst-case bandwidth inflation over shipping a plain `f64`.
    ///
    /// The actual wire format ([`ExactAccumulator::to_wire_bytes`]) is
    /// span-encoded — a 2-byte `[lo, hi)` header plus only the
    /// occupied limbs — so real payloads are far smaller for
    /// small-dynamic-range data (`2 + 8·span ≤ 2 + WIRE_BYTES` bytes);
    /// [`ExactAccumulator::wire_len`] reports the exact encoded size.
    pub const WIRE_BYTES: usize = LIMBS * std::mem::size_of::<i64>();

    /// Empty accumulator (value zero).
    pub fn new() -> Self {
        ExactAccumulator {
            limbs: [0; LIMBS],
            pending: 0,
            lo: LIMBS as u32,
            hi: 0,
        }
    }

    /// Add a finite `f64` exactly.
    ///
    /// The hot path is branch-free after the finiteness check: the
    /// mantissa is placed as one 128-bit chunk, split into three 32-bit
    /// digits that are always scattered into three consecutive limbs
    /// (zero digits add zero — cheaper than testing for them), and the
    /// sign is applied as a ±1 multiplier instead of a branch per
    /// digit.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinite input — an exact sum of non-finite
    /// values is undefined.
    #[inline]
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "ExactAccumulator::add requires finite input");
        let bits = x.to_bits();
        let biased_exp = (bits >> 52) & 0x7ff;
        let frac = bits & 0x000f_ffff_ffff_ffff;
        // value = mantissa * 2^(offset - 1074), offset = bit position of
        // the mantissa's LSB in the accumulator's fixed-point frame.
        // Normal numbers carry the implicit leading bit and offset
        // `biased_exp - 1`; subnormals have no leading bit and offset 0
        // — `saturating_sub` covers both without a branch.
        let mantissa = frac | ((u64::from(biased_exp != 0)) << 52);
        let offset = (biased_exp.saturating_sub(1)) as u32;
        let limb = (offset / LIMB_BITS) as usize;
        let shift = offset % LIMB_BITS;
        // Branchless conditional negate of the whole chunk (`(c ^ m) -
        // m` with an all-ones/zero mask) instead of one sign multiply
        // per digit; the top digit is extracted with an arithmetic
        // shift so it carries the sign while the lower digits stay in
        // [0, 2³²) — the digit sum reassembles the chunk exactly.
        let neg_mask = -((bits >> 63) as i128);
        let chunk = ((((mantissa as u128) << shift) as i128) ^ neg_mask) - neg_mask; // <= 85 bits
        // One slice bounds check instead of three element checks.
        let window = &mut self.limbs[limb..limb + 3];
        window[0] += (chunk as u32) as i64;
        window[1] += ((chunk >> LIMB_BITS) as u32) as i64;
        window[2] += (chunk >> (2 * LIMB_BITS)) as i64;
        self.lo = self.lo.min(limb as u32);
        self.hi = self.hi.max(limb as u32 + 3);
        self.pending += 1;
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Add every element of a slice exactly — the bulk hot loop behind
    /// [`exact_sum`] and the reproducible parallel/collective paths.
    ///
    /// Exactly equivalent to calling [`ExactAccumulator::add`] per
    /// element (the canonical state, [`ExactAccumulator::round`] and
    /// every merge downstream are bitwise identical); the speed comes
    /// from **exponent binning**: elements are first accumulated as
    /// `bins[biased_exp] ± mantissa` — one integer add and no shifts
    /// per element — and the handful of touched bins (the exponent
    /// hull of the data) is scattered into the limbs once per 1024
    /// elements. The mantissa magnitude is below 2⁵³, so 1024 signed
    /// adds can never overflow a bin.
    ///
    /// The element loop is written as two fixed-width lane passes so
    /// it autovectorizes: pass 1 extracts `(exponent, ±mantissa)` and
    /// the block's exponent hull for a 64-element lane block
    /// branch-free (pure shifts/masks plus a min/max reduction — SIMD
    /// across lanes), pass 2 scatters into **8 interleaved sub-bins
    /// per exponent** (`bins[8e + (i mod 8)]`, unrolled), which breaks
    /// the store-to-load dependency chain a run of same-exponent
    /// elements would otherwise serialize on. Integer addition is
    /// associative and commutative and no sub-bin can overflow (≤ 1024
    /// summands below 2⁵³), so summing the sub-bins at flush
    /// reproduces the single-bin total bit for bit — the canonical
    /// state is **bitwise identical** to
    /// [`ExactAccumulator::add_slice_scalar`] (the property suite
    /// diffs them on adversarial streams).
    ///
    /// The bin table is a thread-local scratch reused across calls.
    /// That reuse is sound because the table is all-zero at every exit
    /// point: each flush re-zeroes exactly the hull its batch wrote,
    /// and the only panic (the finiteness check, read off the fused
    /// hull max) re-zeroes whatever hull its batch had scattered
    /// before it fires.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinite input.
    pub fn add_slice(&mut self, xs: &[f64]) {
        /// Elements per bin-flush cycle: `1024 · (2⁵³ − 1) < 2⁶³` keeps
        /// every bin (and every sub-bin) exactly representable.
        const FLUSH_EVERY: usize = 1024;
        /// Below this length the binned path's setup is not worth it.
        const BINNED_MIN: usize = 1024;
        /// Extraction-pass lane width.
        const LANES: usize = 64;
        /// Interleaved sub-bins per exponent — enough independent
        /// accumulation chains to hide store-forwarding latency.
        const WAYS: usize = 8;
        if xs.len() < BINNED_MIN {
            for &x in xs {
                self.add(x);
            }
            return;
        }
        std::thread_local! {
            /// WAYS sub-bins per biased exponent (0..=2046; 2047 is
            /// non-finite and rejected per batch below). All-zero
            /// between `add_slice` calls — see the method docs.
            static BINS: std::cell::RefCell<Vec<i64>> =
                std::cell::RefCell::new(vec![0i64; 2048 * WAYS]);
        }
        BINS.with(|cell| {
            let mut bins_guard = cell.borrow_mut();
            let bins = bins_guard.as_mut_slice();
            let mut es = [0u32; LANES];
            let mut ms = [0i64; LANES];
            for batch in xs.chunks(FLUSH_EVERY) {
                let mut blo = 2048usize;
                let mut bhi = 0usize;
                for chunk in batch.chunks(LANES) {
                    let n = chunk.len();
                    // Pass 1: branch-free field extraction into fixed
                    // lanes (`(m ^ s) − s` is the branchless
                    // ±mantissa) with a fused exponent-hull reduction.
                    let (mut clo, mut chi) = (0x7ffu32, 0u32);
                    for (j, &x) in chunk.iter().enumerate() {
                        let bits = x.to_bits();
                        let e = ((bits >> 52) & 0x7ff) as u32;
                        let frac = bits & 0x000f_ffff_ffff_ffff;
                        let mant = (frac | (u64::from(e != 0) << 52)) as i64;
                        let sm = -((bits >> 63) as i64);
                        es[j] = e;
                        ms[j] = (mant ^ sm) - sm;
                        clo = clo.min(e);
                        chi = chi.max(e);
                    }
                    // Finiteness check for free off the fused hull max
                    // (a NaN/inf has biased exponent 0x7ff), *before*
                    // this chunk scatters. Earlier chunks of the batch
                    // may have written `bins` already, so the cold
                    // panic path re-zeroes the hull written so far to
                    // keep the thread-local table clean.
                    if chi == 0x7ff {
                        if blo < bhi {
                            bins[blo * WAYS..bhi * WAYS].fill(0);
                        }
                        panic!("ExactAccumulator::add requires finite input");
                    }
                    blo = blo.min(clo as usize);
                    bhi = bhi.max(chi as usize + 1);
                    // Pass 2: scatter through WAYS independent chains.
                    // The full-block arm is unrolled so each sub-bin
                    // stream is explicit; the tail arm computes the
                    // same `j mod WAYS` mapping.
                    if n == LANES {
                        for g in 0..LANES / WAYS {
                            let j = g * WAYS;
                            bins[es[j] as usize * WAYS] += ms[j];
                            bins[es[j + 1] as usize * WAYS + 1] += ms[j + 1];
                            bins[es[j + 2] as usize * WAYS + 2] += ms[j + 2];
                            bins[es[j + 3] as usize * WAYS + 3] += ms[j + 3];
                            bins[es[j + 4] as usize * WAYS + 4] += ms[j + 4];
                            bins[es[j + 5] as usize * WAYS + 5] += ms[j + 5];
                            bins[es[j + 6] as usize * WAYS + 6] += ms[j + 6];
                            bins[es[j + 7] as usize * WAYS + 7] += ms[j + 7];
                        }
                    } else {
                        for j in 0..n {
                            bins[(es[j] as usize) * WAYS + (j & (WAYS - 1))] += ms[j];
                        }
                    }
                }
                // Scatter the touched exponent hull into the limbs.
                // Each bin total is a signed multiple of
                // 2^(offset − 1074) below 2⁶³ in magnitude, so it
                // lands in three consecutive limbs exactly like a
                // single add (lower digits zero-extended, top digit
                // arithmetic so it carries the sign) and charges one
                // unit of normalization headroom.
                let mut flushed = 0u32;
                let mut lo = self.lo;
                let mut hi = self.hi;
                for i in blo..bhi.max(blo) {
                    // Refold the sub-bins: same summands, integer adds
                    // — exactly the single-bin total. Sub-bins that
                    // cancel to zero still need resetting.
                    let w = &mut bins[i * WAYS..(i + 1) * WAYS];
                    let msum = w.iter().sum::<i64>();
                    w.fill(0);
                    if msum == 0 {
                        continue;
                    }
                    let offset = (i as u32).saturating_sub(1);
                    // `offset ≤ 2046` ⇒ `limb ≤ 63`; the mask is a
                    // no-op that lets the compiler drop the slice
                    // bounds check.
                    let limb = ((offset / LIMB_BITS) as usize) & 63;
                    let shift = offset % LIMB_BITS;
                    let chunk = (msum as i128) << shift; // ≤ 94 bits
                    let window = &mut self.limbs[limb..limb + 3];
                    window[0] += (chunk as u32) as i64;
                    window[1] += ((chunk >> LIMB_BITS) as u32) as i64;
                    window[2] += (chunk >> (2 * LIMB_BITS)) as i64;
                    lo = lo.min(limb as u32);
                    hi = hi.max(limb as u32 + 3);
                    flushed += 1;
                }
                self.lo = lo;
                self.hi = hi;
                self.pending = self.pending.saturating_add(flushed);
                if self.pending >= NORMALIZE_EVERY {
                    self.normalize();
                }
            }
        });
    }

    /// The pre-lane-loop `add_slice`: single-bin exponent binning with
    /// a scalar element loop. Kept verbatim as the reference the
    /// property suite diffs the vectorized [`ExactAccumulator::add_slice`]
    /// against — the two must leave **bitwise identical** state for
    /// every finite input stream.
    #[doc(hidden)]
    pub fn add_slice_scalar(&mut self, xs: &[f64]) {
        const FLUSH_EVERY: usize = 1024;
        const BINNED_MIN: usize = 1024;
        if xs.len() < BINNED_MIN {
            for &x in xs {
                self.add(x);
            }
            return;
        }
        let mut bins = vec![0i64; 2048];
        for batch in xs.chunks(FLUSH_EVERY) {
            assert!(
                batch.iter().all(|x| x.is_finite()),
                "ExactAccumulator::add requires finite input"
            );
            let mut blo = bins.len();
            let mut bhi = 0usize;
            for &x in batch {
                let bits = x.to_bits();
                let e = ((bits >> 52) & 0x7ff) as usize;
                let frac = bits & 0x000f_ffff_ffff_ffff;
                let mant = (frac | ((u64::from(e != 0)) << 52)) as i64;
                let sm = -((bits >> 63) as i64);
                bins[e] += (mant ^ sm) - sm;
                blo = blo.min(e);
                bhi = bhi.max(e + 1);
            }
            let mut flushed = 0u32;
            let mut lo = self.lo;
            let mut hi = self.hi;
            for (i, bin) in bins[blo..bhi.max(blo)].iter_mut().enumerate() {
                let msum = *bin;
                if msum == 0 {
                    continue;
                }
                *bin = 0;
                let offset = ((blo + i) as u32).saturating_sub(1);
                let limb = ((offset / LIMB_BITS) as usize) & 63;
                let shift = offset % LIMB_BITS;
                let chunk = (msum as i128) << shift;
                let window = &mut self.limbs[limb..limb + 3];
                window[0] += (chunk as u32) as i64;
                window[1] += ((chunk >> LIMB_BITS) as u32) as i64;
                window[2] += (chunk >> (2 * LIMB_BITS)) as i64;
                lo = lo.min(limb as u32);
                hi = hi.max(limb as u32 + 3);
                flushed += 1;
            }
            self.lo = lo;
            self.hi = hi;
            self.pending = self.pending.saturating_add(flushed);
            if self.pending >= NORMALIZE_EVERY {
                self.normalize();
            }
        }
    }

    /// Merge another accumulator into this one (exact; used by the
    /// parallel reproducible sum and the reproducible collectives).
    ///
    /// Never clones: only `other`'s occupied span is folded in, the
    /// spans are unioned, and carry propagation stays deferred. The
    /// headroom bookkeeping charges a canonical right-hand side
    /// (`pending == 0`, every limb below 2³¹ — e.g. it arrived
    /// serialized off the wire, or a worker normalized its partial
    /// before hand-off) like two adds; a raw right-hand side carries
    /// its own `pending` count, so limb magnitudes stay bounded even
    /// when **both** sides are non-canonical.
    pub fn merge(&mut self, other: &ExactAccumulator) {
        if other.lo >= other.hi {
            // The span is a superset of the nonzero limbs, so an empty
            // span means `other` is exactly zero.
            return;
        }
        let (olo, ohi) = (other.lo as usize, other.hi as usize);
        for (a, b) in self.limbs[olo..ohi].iter_mut().zip(&other.limbs[olo..ohi]) {
            *a += *b;
        }
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        // Each side's limbs are bounded by `pending · 2³² + 2³¹`, so
        // summing the pending counts keeps the bound valid; both
        // operands sit far below `NORMALIZE_EVERY`, so the fold cannot
        // overflow an i64 before the normalize below runs.
        self.pending = self.pending.saturating_add(other.pending.max(2));
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Carry-propagate into the canonical *balanced-digit* form: every
    /// limb ends in `[−2^31, 2^31)`. Balanced digits keep the index of
    /// the top nonzero limb aligned with the true magnitude for both
    /// signs (a two's-complement style form would fill all upper limbs
    /// for negative totals and overflow the `f64` conversion). The
    /// canonical form is a pure function of the exact accumulated
    /// value, which is what makes `round` permutation invariant.
    ///
    /// Only the occupied span `[lo, hi)` is walked (limbs outside it
    /// are zero by invariant, and processing a zero limb with zero
    /// carry is the identity), plus however far the final carry
    /// ripples; afterwards the span is tightened to the exact nonzero
    /// hull.
    ///
    /// Public so producers can canonicalize *before* a hand-off (worker
    /// partials, serialized wire messages), which keeps every limb
    /// small and the wire encoding tight.
    pub fn normalize(&mut self) {
        // The base is a power of two, so the euclidean quotient and
        // remainder are an arithmetic shift and a mask; the balanced
        // adjustment (fold remainders >= 2^31 into the next carry) is a
        // comparison turned into a 0/1 chunk, keeping the whole carry
        // chain branch-free.
        const BASE: i64 = 1i64 << LIMB_BITS;
        const HALF: i64 = BASE / 2;
        const MASK: i64 = BASE - 1;
        self.pending = 0;
        if self.lo >= self.hi {
            self.lo = LIMBS as u32;
            self.hi = 0;
            return;
        }
        let lo = self.lo as usize;
        let hi = self.hi as usize;
        // Pass 1: independent per-limb digit/carry split — `d ∈ [0,
        // 2³²)` by mask, `c` the floor quotient by arithmetic shift.
        // No cross-limb dependency, so the wide-integer work runs as
        // straight-line SIMD lanes over the span.
        let mut ds = [0i64; LIMBS];
        let mut cs = [0i64; LIMBS];
        for i in lo..hi {
            ds[i] = self.limbs[i] & MASK;
            cs[i] = self.limbs[i] >> LIMB_BITS;
        }
        // Pass 2: the serial carry fold, now over small digits. With
        // `v = limbs[i] + carry = (c·2³² + d) + carry`, masking gives
        // `v & MASK = (d + carry) & MASK` and the quotient splits as
        // `v >> 32 = c + ((d + carry) >> 32)` — so the digit written
        // and the carry recurrence are those of the one-pass walk
        // ([`ExactAccumulator::normalize_scalar`]) exactly, but the
        // loop-carried chain is a short add/mask/compare.
        let mut carry = 0i64;
        for i in lo..hi {
            let x = ds[i] + carry;
            let r = x & MASK; // in [0, 2^32)
            let adj = i64::from(r >= HALF);
            self.limbs[i] = r - (adj << LIMB_BITS);
            carry = cs[i] + (x >> LIMB_BITS) + adj;
        }
        // Carry ripple past the span (pass 1 never touched these
        // limbs, so this continues the one-pass walk verbatim).
        let mut i = hi;
        while carry != 0 && i < LIMBS {
            let v = self.limbs[i] + carry;
            let r = v & MASK;
            let q = v >> LIMB_BITS;
            let adj = i64::from(r >= HALF);
            self.limbs[i] = r - (adj << LIMB_BITS);
            carry = q + adj;
            i += 1;
        }
        debug_assert_eq!(carry, 0, "accumulator overflow");
        // Tighten to the exact nonzero hull.
        let mut new_lo = lo;
        let mut new_hi = i;
        while new_lo < new_hi && self.limbs[new_lo] == 0 {
            new_lo += 1;
        }
        while new_hi > new_lo && self.limbs[new_hi - 1] == 0 {
            new_hi -= 1;
        }
        if new_lo >= new_hi {
            self.lo = LIMBS as u32;
            self.hi = 0;
        } else {
            self.lo = new_lo as u32;
            self.hi = new_hi as u32;
        }
    }

    /// The pre-two-pass `normalize`: one serial walk carrying
    /// digit-split and carry fold together. Kept verbatim as the
    /// reference the property suite diffs the two-pass
    /// [`ExactAccumulator::normalize`] against — both must produce the
    /// identical canonical state from any reachable raw state.
    #[doc(hidden)]
    pub fn normalize_scalar(&mut self) {
        const BASE: i64 = 1i64 << LIMB_BITS;
        const HALF: i64 = BASE / 2;
        const MASK: i64 = BASE - 1;
        self.pending = 0;
        if self.lo >= self.hi {
            self.lo = LIMBS as u32;
            self.hi = 0;
            return;
        }
        let lo = self.lo as usize;
        let hi = self.hi as usize;
        let mut carry = 0i64;
        let mut i = lo;
        while i < hi || (carry != 0 && i < LIMBS) {
            let v = self.limbs[i] + carry;
            let r = v & MASK;
            let q = v >> LIMB_BITS;
            let adj = i64::from(r >= HALF);
            self.limbs[i] = r - (adj << LIMB_BITS);
            carry = q + adj;
            i += 1;
        }
        debug_assert_eq!(carry, 0, "accumulator overflow");
        let mut new_lo = lo;
        let mut new_hi = i;
        while new_lo < new_hi && self.limbs[new_lo] == 0 {
            new_lo += 1;
        }
        while new_hi > new_lo && self.limbs[new_hi - 1] == 0 {
            new_hi -= 1;
        }
        if new_lo >= new_hi {
            self.lo = LIMBS as u32;
            self.hi = 0;
        } else {
            self.lo = new_lo as u32;
            self.hi = new_hi as u32;
        }
    }

    /// `true` when the exact value is zero.
    pub fn is_zero(&self) -> bool {
        if self.pending == 0 {
            // Canonical: the span is tight, so zero ⇔ empty span; the
            // scan below also covers spans left loose by decoding.
            return self.limbs[self.lo as usize..self.hi.max(self.lo) as usize]
                .iter()
                .all(|&l| l == 0);
        }
        let mut probe = self.clone();
        probe.normalize();
        probe.lo >= probe.hi
    }

    /// Round the exact value to the nearest `f64` (faithful, ≤ 1 ulp;
    /// deterministic function of the accumulated multiset).
    pub fn round(&self) -> f64 {
        let probe;
        let acc = if self.pending == 0 {
            self
        } else {
            probe = {
                let mut p = self.clone();
                p.normalize();
                p
            };
            &probe
        };
        // Compensated top-down conversion over the occupied span only
        // (limbs outside contribute nothing): terms decay by 2^-32 per
        // limb, so the first three nonzero limbs already determine the
        // result; Neumaier compensation absorbs the tail exactly.
        let mut sum = 0.0f64;
        let mut comp = 0.0f64;
        for i in (acc.lo as usize..acc.hi.max(acc.lo) as usize).rev() {
            let l = acc.limbs[i];
            if l == 0 {
                continue;
            }
            let term = l as f64 * pow2(32 * i as i32 - 1074);
            let t = sum + term;
            if sum.abs() >= term.abs() {
                comp += (sum - t) + term;
            } else {
                comp += (term - t) + sum;
            }
            sum = t;
        }
        sum + comp
    }

    /// Exact encoded size in bytes of [`ExactAccumulator::to_wire_bytes`]
    /// for the current span: `2 + 8·(hi − lo)`. Tight after a
    /// [`ExactAccumulator::normalize`]; a loose span only overestimates
    /// (never under), so cost models stay safe.
    pub fn wire_len(&self) -> usize {
        let span = self.hi.saturating_sub(self.lo) as usize;
        2 + std::mem::size_of::<i64>() * span
    }

    /// Span-encoded wire serialization: a 2-byte `[lo, hi)` header
    /// followed by the occupied limbs as little-endian `i64`s. The
    /// state is canonicalized first (on a copy when needed), so the
    /// encoding is a pure function of the accumulated value and at
    /// most `2 + WIRE_BYTES` bytes; the zero value encodes as the
    /// 2-byte header `[0, 0]`.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let probe;
        let acc = if self.pending == 0 {
            self
        } else {
            probe = {
                let mut p = self.clone();
                p.normalize();
                p
            };
            &probe
        };
        if acc.lo >= acc.hi {
            return vec![0u8, 0u8];
        }
        let (lo, hi) = (acc.lo as usize, acc.hi as usize);
        let mut out = Vec::with_capacity(2 + 8 * (hi - lo));
        out.push(lo as u8);
        out.push(hi as u8);
        for &l in &acc.limbs[lo..hi] {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Decode a [`ExactAccumulator::to_wire_bytes`] message. Returns
    /// `None` when the header is out of range or the length does not
    /// match the span (a malformed or truncated message).
    pub fn from_wire_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 {
            return None;
        }
        let (lo, hi) = (bytes[0] as usize, bytes[1] as usize);
        if hi <= lo {
            return (bytes.len() == 2).then(ExactAccumulator::new);
        }
        if hi > LIMBS || bytes.len() != 2 + 8 * (hi - lo) {
            return None;
        }
        let mut acc = ExactAccumulator::new();
        for (i, raw) in bytes[2..].chunks_exact(8).enumerate() {
            acc.limbs[lo + i] = i64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
        }
        acc.lo = lo as u32;
        acc.hi = hi as u32;
        Some(acc)
    }

    /// The occupied limb span `[lo, hi)`, or `None` for the empty
    /// span. Exposed for the span-invariant property tests.
    #[doc(hidden)]
    pub fn span(&self) -> Option<(usize, usize)> {
        (self.lo < self.hi).then_some((self.lo as usize, self.hi as usize))
    }

    /// `true` when the span invariant holds: every nonzero limb lies
    /// inside `[lo, hi)`. Exposed for the property tests.
    #[doc(hidden)]
    pub fn span_covers_nonzero(&self) -> bool {
        self.limbs
            .iter()
            .enumerate()
            .all(|(i, &l)| l == 0 || ((self.lo as usize) <= i && i < self.hi as usize))
    }

    /// Bitwise state equality (limbs, span, pending) — for the wire
    /// round-trip tests.
    #[doc(hidden)]
    pub fn state_eq(&self, other: &ExactAccumulator) -> bool {
        self.limbs == other.limbs
            && self.pending == other.pending
            && self.lo == other.lo
            && self.hi == other.hi
    }
}

/// 2^k as f64, valid for the accumulator's exponent range.
fn pow2(k: i32) -> f64 {
    // f64::powi(2.0, k) is exact for |k| <= 1023; below that we build
    // subnormals by halving, which is also exact.
    if k >= -1022 {
        2.0f64.powi(k)
    } else {
        2.0f64.powi(-1022) * 2.0f64.powi(k + 1022)
    }
}

impl FromIterator<f64> for ExactAccumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = ExactAccumulator::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

/// Accumulate a slice exactly into one accumulator via the bulk
/// [`ExactAccumulator::add_slice`] loop.
pub(crate) fn accumulate_exact(xs: &[f64]) -> ExactAccumulator {
    let mut acc = ExactAccumulator::new();
    acc.add_slice(xs);
    acc
}

/// Exact, reproducible sum of a slice: the one-shot API.
pub fn exact_sum(xs: &[f64]) -> f64 {
    accumulate_exact(xs).round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::{permutation, SplitMix64};

    #[test]
    fn exact_on_cancelling_data() {
        assert_eq!(exact_sum(&[1e16, 1.0, -1e16, 1.0]), 2.0);
        assert_eq!(exact_sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
        assert_eq!(exact_sum(&[]), 0.0);
        assert_eq!(exact_sum(&[-0.5]), -0.5);
    }

    #[test]
    fn exact_on_tiny_and_huge() {
        let tiny = f64::MIN_POSITIVE * 0.5; // subnormal
        assert_eq!(exact_sum(&[tiny, tiny]), tiny * 2.0);
        assert_eq!(exact_sum(&[f64::MAX * 0.5, f64::MAX * 0.25]), f64::MAX * 0.75);
        assert_eq!(exact_sum(&[tiny, -tiny]), 0.0);
    }

    #[test]
    fn permutation_invariance_bitwise() {
        let mut rng = SplitMix64::new(42);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(40) as i32) - 20))
            .collect();
        let reference = exact_sum(&xs);
        for seed in 0..5 {
            let mut prng = SplitMix64::new(seed);
            let perm = permutation(xs.len(), &mut prng);
            let shuffled: Vec<f64> = perm.iter().map(|&i| xs[i as usize]).collect();
            assert_eq!(
                exact_sum(&shuffled).to_bits(),
                reference.to_bits(),
                "exact sum must be permutation invariant (seed {seed})"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut rng = SplitMix64::new(7);
        let a: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 1e6 - 5e5).collect();
        let b: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 1e-6).collect();
        let mut acc_a: ExactAccumulator = a.iter().copied().collect();
        let acc_b: ExactAccumulator = b.iter().copied().collect();
        acc_a.merge(&acc_b);
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(acc_a.round().to_bits(), exact_sum(&concat).to_bits());
    }

    #[test]
    fn merge_fast_path_matches_slow_path() {
        let mut rng = SplitMix64::new(21);
        let a: Vec<f64> = (0..2000).map(|_| rng.next_f64() * 1e9 - 5e8).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.next_f64() * 1e-9).collect();
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let expected = exact_sum(&concat);

        // Slow path: rhs has pending adds.
        let mut slow: ExactAccumulator = a.iter().copied().collect();
        let rhs_raw: ExactAccumulator = b.iter().copied().collect();
        slow.merge(&rhs_raw);
        assert_eq!(slow.round().to_bits(), expected.to_bits());

        // Fast path: rhs canonicalized first (pending == 0).
        let mut fast: ExactAccumulator = a.iter().copied().collect();
        let mut rhs_canonical: ExactAccumulator = b.iter().copied().collect();
        rhs_canonical.normalize();
        fast.merge(&rhs_canonical);
        assert_eq!(fast.round().to_bits(), expected.to_bits());

        // Chained fast-path merges (the collectives pattern: one merge
        // per received message) stay exact.
        let mut chain = ExactAccumulator::new();
        for piece in concat.chunks(173) {
            let mut acc: ExactAccumulator = piece.iter().copied().collect();
            acc.normalize();
            chain.merge(&acc);
        }
        assert_eq!(chain.round().to_bits(), expected.to_bits());
    }

    #[test]
    fn normalize_is_idempotent_and_preserves_value() {
        let mut rng = SplitMix64::new(22);
        let xs: Vec<f64> = (0..500)
            .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(60) as i32) - 30))
            .collect();
        let mut acc: ExactAccumulator = xs.iter().copied().collect();
        let before = acc.round();
        acc.normalize();
        assert_eq!(acc.round().to_bits(), before.to_bits());
        acc.normalize();
        assert_eq!(acc.round().to_bits(), before.to_bits());
    }

    #[test]
    fn negative_totals() {
        assert_eq!(exact_sum(&[1.0, -3.0]), -2.0);
        assert_eq!(exact_sum(&[-1e300, 1e299]), -9e299);
        let mut rng = SplitMix64::new(9);
        let xs: Vec<f64> = (0..1000).map(|_| -rng.next_f64()).collect();
        let e = exact_sum(&xs);
        assert!(e < 0.0);
        assert!((e - xs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn is_zero_detects_exact_cancellation() {
        let mut acc = ExactAccumulator::new();
        assert!(acc.is_zero());
        acc.add(3.5);
        assert!(!acc.is_zero());
        acc.add(-3.5);
        assert!(acc.is_zero());
    }

    #[test]
    fn agrees_with_serial_on_benign_data() {
        let mut rng = SplitMix64::new(11);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        let e = exact_sum(&xs);
        let s: f64 = xs.iter().sum();
        assert!((e - s).abs() / s < 1e-12);
    }

    #[test]
    fn round_is_faithful_on_known_values() {
        // exact value representable: sum of powers of two
        assert_eq!(exact_sum(&[0.5, 0.25, 0.125]), 0.875);
        // 0.1 alone must round-trip exactly
        assert_eq!(exact_sum(&[0.1]).to_bits(), 0.1f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_panics() {
        ExactAccumulator::new().add(f64::NAN);
    }

    #[test]
    fn bulk_nan_panics_and_leaves_scratch_clean() {
        // A NaN deep inside a bulk batch must (a) panic with the same
        // message as the per-element path and (b) re-zero whatever the
        // batch had already scattered into the thread-local bin table —
        // a later add_slice on this thread must still be bitwise right.
        let mut poisoned: Vec<f64> = (0..3000).map(|i| i as f64).collect();
        poisoned[2500] = f64::NAN;
        let err = std::panic::catch_unwind(|| {
            ExactAccumulator::new().add_slice(&poisoned);
        })
        .unwrap_err();
        assert!(err.downcast_ref::<&str>().is_some_and(|m| m.contains("finite")));
        let xs: Vec<f64> = (0..3000).map(|i| (i as f64) * 0.1 - 7.0).collect();
        let mut bulk = ExactAccumulator::new();
        bulk.add_slice(&xs);
        let mut scalar = ExactAccumulator::new();
        scalar.add_slice_scalar(&xs);
        assert_eq!(bulk.round().to_bits(), scalar.round().to_bits());
        bulk.normalize();
        scalar.normalize();
        assert!(bulk.state_eq(&scalar));
    }

    #[test]
    fn striped_accumulation_matches_element_order() {
        let mut rng = SplitMix64::new(33);
        for n in [0usize, 1, 7, 31, 32, 33, 1000, 12_345] {
            let xs: Vec<f64> = (0..n)
                .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(40) as i32) - 20))
                .collect();
            let serial = xs.iter().copied().collect::<ExactAccumulator>().round();
            assert_eq!(exact_sum(&xs).to_bits(), serial.to_bits(), "n={n}");
        }
    }

    #[test]
    fn span_tracks_occupied_limbs() {
        let mut acc = ExactAccumulator::new();
        assert!(acc.span().is_none());
        assert!(acc.span_covers_nonzero());
        acc.add(1.0);
        assert!(acc.span_covers_nonzero());
        let (lo, hi) = acc.span().unwrap();
        assert!(hi - lo <= 3, "one add occupies at most three limbs");
        acc.normalize();
        // 1.0 sits at bit 1074 => limb 33; the tight hull is 1 limb.
        assert_eq!(acc.span(), Some((33, 34)));
        // Exact cancellation collapses the span back to empty.
        acc.add(-1.0);
        acc.normalize();
        assert!(acc.span().is_none());
        assert!(acc.is_zero());
    }

    #[test]
    fn span_survives_wide_dynamic_range_and_carries() {
        let mut acc = ExactAccumulator::new();
        acc.add(1e300);
        acc.add(1e-300);
        acc.add(f64::MAX);
        for _ in 0..100 {
            acc.add(f64::MAX * 0.5);
        }
        assert!(acc.span_covers_nonzero());
        acc.normalize();
        assert!(acc.span_covers_nonzero());
        let (lo, hi) = acc.span().unwrap();
        assert!(lo < hi && hi <= LIMBS);
    }

    #[test]
    fn wire_round_trip_is_bitwise_lossless() {
        let mut rng = SplitMix64::new(44);
        for n in [0usize, 1, 10, 500] {
            let xs: Vec<f64> = (0..n)
                .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(60) as i32) - 30))
                .collect();
            let mut acc: ExactAccumulator = xs.iter().copied().collect();
            acc.normalize();
            let bytes = acc.to_wire_bytes();
            assert_eq!(bytes.len(), acc.wire_len(), "n={n}");
            assert!(bytes.len() <= 2 + ExactAccumulator::WIRE_BYTES);
            let decoded = ExactAccumulator::from_wire_bytes(&bytes).unwrap();
            assert!(decoded.state_eq(&acc), "n={n}");
            assert_eq!(decoded.round().to_bits(), acc.round().to_bits());
        }
    }

    #[test]
    fn wire_encoding_is_small_for_small_dynamic_range() {
        let mut rng = SplitMix64::new(45);
        let mut acc = ExactAccumulator::new();
        for _ in 0..1000 {
            acc.add(rng.next_f64() * 1e6 - 5e5);
        }
        acc.normalize();
        assert!(
            acc.wire_len() <= 2 + 8 * 8,
            "narrow-range data should occupy few limbs, got {}",
            acc.wire_len()
        );
    }

    #[test]
    fn wire_rejects_malformed_messages() {
        assert!(ExactAccumulator::from_wire_bytes(&[]).is_none());
        assert!(ExactAccumulator::from_wire_bytes(&[0]).is_none());
        // span says 2 limbs but only one limb of payload
        let mut short = vec![10u8, 12u8];
        short.extend_from_slice(&1i64.to_le_bytes());
        assert!(ExactAccumulator::from_wire_bytes(&short).is_none());
        // hi beyond the limb count
        let mut oob = vec![69u8, 71u8];
        oob.extend_from_slice(&1i64.to_le_bytes());
        oob.extend_from_slice(&1i64.to_le_bytes());
        assert!(ExactAccumulator::from_wire_bytes(&oob).is_none());
        // zero value round-trips through the bare header
        let zero = ExactAccumulator::new().to_wire_bytes();
        assert_eq!(zero, vec![0u8, 0u8]);
        assert!(ExactAccumulator::from_wire_bytes(&zero).unwrap().is_zero());
    }

    #[test]
    fn merge_without_normalizing_either_side_is_exact() {
        // Both sides raw (pending > 0): the no-clone fold must still be
        // exact and keep the span invariant.
        let mut rng = SplitMix64::new(46);
        let a: Vec<f64> = (0..500).map(|_| rng.next_f64() * 1e10 - 5e9).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.next_f64() * 1e-10).collect();
        let mut acc_a: ExactAccumulator = a.iter().copied().collect();
        let acc_b: ExactAccumulator = b.iter().copied().collect();
        acc_a.merge(&acc_b);
        assert!(acc_a.span_covers_nonzero());
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(acc_a.round().to_bits(), exact_sum(&concat).to_bits());
    }
}
