//! Multi-threaded reductions: the OpenMP analogue (§III-B, Table 3).
//!
//! OpenMP's `reduction(+:sum)` leaves the combine location and order
//! unspecified, so bitwise determinism is not guaranteed; adding the
//! `ordered` construct forces the combines into loop-iteration order
//! and restores determinism. We reproduce both flavours with real OS
//! threads:
//!
//! * [`unordered_threaded_sum`] — per-chunk partials combined in
//!   *thread finish order* (a `Mutex<f64>` each worker folds into as it
//!   completes). Run-to-run variability is genuine: it comes from the
//!   OS scheduler, exactly like the OpenMP "normal reduction" column of
//!   Table 3.
//! * [`atomic_cas_sum`] — every element added to a single shared
//!   accumulator with a compare-and-swap loop: the CPU twin of the
//!   GPU `atomicAdd`-only kernel (AO).
//! * [`ordered_threaded_sum`] — partials computed in parallel but
//!   combined in chunk-index order: deterministic regardless of thread
//!   timing, the `ordered` clause analogue.
//! * [`reproducible_threaded_sum`] — partials accumulated exactly via
//!   [`crate::exact::ExactAccumulator`] and merged: deterministic even
//!   across different chunk sizes and thread counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::exact::ExactAccumulator;
use crate::serial::serial_sum;

/// Split `n` elements into `pieces` nearly-equal contiguous ranges.
fn chunk_ranges(n: usize, pieces: usize) -> Vec<(usize, usize)> {
    assert!(pieces > 0, "need at least one chunk");
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Parallel sum with partials combined in **thread finish order** — the
/// OpenMP "normal reduction". Non-deterministic across runs whenever
/// `threads > 1` and the partials are rounding-sensitive.
pub fn unordered_threaded_sum(xs: &[f64], threads: usize) -> f64 {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || xs.len() < 2 {
        return serial_sum(xs);
    }
    let total = Mutex::new(0.0f64);
    let ranges = chunk_ranges(xs.len(), threads);
    std::thread::scope(|scope| {
        for &(lo, hi) in &ranges {
            let total = &total;
            scope.spawn(move || {
                let partial = serial_sum(&xs[lo..hi]);
                // Combine in completion order: whichever thread gets
                // here first folds in first. This is where the
                // non-determinism lives.
                let mut guard = total.lock().unwrap();
                *guard += partial;
            });
        }
    });
    total.into_inner().unwrap()
}

/// Parallel sum where **every element** is added to one shared
/// accumulator via a compare-and-swap loop — the CPU analogue of the
/// GPU `atomicAdd`-only (AO) kernel. Maximally non-deterministic and,
/// like AO in Table 4, dramatically slower than the alternatives
/// because it serialises every addition through one cache line.
pub fn atomic_cas_sum(xs: &[f64], threads: usize) -> f64 {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || xs.len() < 2 {
        return serial_sum(xs);
    }
    let total = AtomicU64::new(0.0f64.to_bits());
    let ranges = chunk_ranges(xs.len(), threads);
    std::thread::scope(|scope| {
        for &(lo, hi) in &ranges {
            let total = &total;
            scope.spawn(move || {
                for &x in &xs[lo..hi] {
                    let mut current = total.load(Ordering::Relaxed);
                    loop {
                        let updated = (f64::from_bits(current) + x).to_bits();
                        match total.compare_exchange_weak(
                            current,
                            updated,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(actual) => current = actual,
                        }
                    }
                }
            });
        }
    });
    f64::from_bits(total.load(Ordering::Relaxed))
}

/// Parallel sum with partials combined in **chunk-index order** — the
/// OpenMP `ordered` reduction. Deterministic for a fixed `(input,
/// threads)` pair no matter how the OS schedules the workers.
pub fn ordered_threaded_sum(xs: &[f64], threads: usize) -> f64 {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || xs.len() < 2 {
        return serial_sum(xs);
    }
    let ranges = chunk_ranges(xs.len(), threads);
    let mut partials = vec![0.0f64; ranges.len()];
    std::thread::scope(|scope| {
        for (slot, &(lo, hi)) in partials.iter_mut().zip(&ranges) {
            scope.spawn(move || {
                *slot = serial_sum(&xs[lo..hi]);
            });
        }
    });
    serial_sum(&partials)
}

/// Parallel **reproducible** sum: each worker accumulates its chunk
/// exactly, accumulators are merged exactly (in chunk-index order, via
/// [`fpna_core::executor::par_reduce_indexed`]), and the single final
/// rounding makes the result independent of both schedule *and*
/// partitioning (unlike [`ordered_threaded_sum`], whose bits change
/// with the thread count).
///
/// `threads` is the chunk-boundary hint; the executor primitive runs
/// the chunks on scoped threads, or serially when called inside
/// another executor worker (one shared budget) — the bits are the same
/// either way.
pub fn reproducible_threaded_sum(xs: &[f64], threads: usize) -> f64 {
    assert!(threads > 0, "need at least one thread");
    fpna_core::executor::par_reduce_indexed(
        threads,
        xs.len(),
        |_, range| {
            let mut acc = crate::exact::accumulate_exact(&xs[range]);
            // Canonicalize in parallel: keeps limbs small for the
            // chunk-ordered merges and the merges cheap (span-only).
            acc.normalize();
            acc
        },
        |mut total, part| {
            total.merge(&part);
            total
        },
    )
    .map(|acc| acc.round())
    .unwrap_or_else(|| ExactAccumulator::new().round())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_sum;
    use fpna_core::rng::SplitMix64;

    fn test_data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 1e6 - 5e5).collect()
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, p) in [(10, 3), (0, 2), (7, 7), (100, 1), (5, 8)] {
            let r = chunk_ranges(n, p);
            assert_eq!(r.len(), p);
            assert_eq!(r[0].0, 0);
            assert_eq!(r.last().unwrap().1, n);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
        }
    }

    #[test]
    fn all_variants_agree_to_rounding() {
        let xs = test_data(100_000, 1);
        let reference = exact_sum(&xs);
        let tol = 1e-10 * reference.abs().max(1.0);
        for t in [1, 2, 4, 8] {
            assert!((unordered_threaded_sum(&xs, t) - reference).abs() < tol);
            assert!((ordered_threaded_sum(&xs, t) - reference).abs() < tol);
            assert!((reproducible_threaded_sum(&xs, t) - reference).abs() < tol);
        }
        assert!((atomic_cas_sum(&xs, 4) - reference).abs() < tol);
    }

    #[test]
    fn ordered_is_deterministic_across_runs() {
        let xs = test_data(200_000, 2);
        let first = ordered_threaded_sum(&xs, 8);
        for _ in 0..5 {
            assert_eq!(ordered_threaded_sum(&xs, 8).to_bits(), first.to_bits());
        }
    }

    #[test]
    fn reproducible_is_invariant_to_thread_count() {
        let xs = test_data(50_000, 3);
        let r1 = reproducible_threaded_sum(&xs, 1);
        for t in [2, 3, 4, 7, 16] {
            assert_eq!(
                reproducible_threaded_sum(&xs, t).to_bits(),
                r1.to_bits(),
                "threads={t}"
            );
        }
        // ordered is deterministic per thread count but NOT across
        // thread counts — that's the gap the exact accumulator closes.
        assert_eq!(exact_sum(&xs).to_bits(), r1.to_bits());
    }

    #[test]
    fn unordered_varies_across_runs_eventually() {
        // Not guaranteed per run; assert that over many runs we see at
        // least two distinct bit patterns (overwhelmingly likely with
        // 8 threads on rounding-sensitive data).
        let xs = test_data(400_000, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            seen.insert(unordered_threaded_sum(&xs, 8).to_bits());
        }
        assert!(
            seen.len() > 1,
            "expected run-to-run variability, got a single value"
        );
    }

    #[test]
    fn single_thread_matches_serial() {
        let xs = test_data(1000, 5);
        assert_eq!(
            unordered_threaded_sum(&xs, 1).to_bits(),
            serial_sum(&xs).to_bits()
        );
        assert_eq!(
            ordered_threaded_sum(&xs, 1).to_bits(),
            serial_sum(&xs).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ordered_threaded_sum(&[1.0], 0);
    }
}
