//! Compensated summation: Kahan, Neumaier, Klein.
//!
//! Compensated sums track the rounding error of every addition with an
//! error-free transform and re-inject it, reducing the error constant
//! from `O(ε·n)` to `O(ε)` (Kahan/Neumaier) or `O(ε²·n)` (Klein's
//! second-order variant). They are *deterministic for a fixed order*
//! but still order-sensitive at the bit level — the paper's
//! deterministic kernels rely on fixed ordering, not compensation; we
//! provide both so benches can compare the two mitigation families.

use fpna_core::fp::two_sum;

/// Kahan's compensated sum. Single running compensation term; loses
/// the correction when a summand exceeds the running sum in magnitude
/// (Neumaier fixes that).
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in xs {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Neumaier's improvement: branches on magnitude so the compensation is
/// captured regardless of which operand is larger, then adds the
/// accumulated correction once at the end.
pub fn neumaier_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in xs {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            c += (sum - t) + x;
        } else {
            c += (x - t) + sum;
        }
        sum = t;
    }
    sum + c
}

/// Klein's second-order ("iterative Kahan–Babuška") sum: two levels of
/// compensation, error `O(ε²·n)`.
pub fn klein_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0f64;
    let mut cs = 0.0f64;
    let mut ccs = 0.0f64;
    for &x in xs {
        let (t, c) = two_sum(s, x);
        let (t2, cc) = two_sum(cs, c);
        s = t;
        cs = t2;
        ccs += cc;
    }
    s + cs + ccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactAccumulator;
    use crate::serial::serial_sum;
    use fpna_core::rng::SplitMix64;

    fn exact_sum(xs: &[f64]) -> f64 {
        xs.iter().copied().collect::<ExactAccumulator>().round()
    }

    fn ill_conditioned(n: usize, seed: u64) -> Vec<f64> {
        // large cancellations: pairs (big, -big + small)
        let mut rng = SplitMix64::new(seed);
        let mut xs = Vec::with_capacity(2 * n);
        for _ in 0..n {
            let big = (rng.next_f64() - 0.5) * 1e12;
            let small = (rng.next_f64() - 0.5) * 1e-3;
            xs.push(big);
            xs.push(-big + small);
        }
        xs
    }

    #[test]
    fn classic_kahan_example() {
        // 1.0 + 1e-16 repeated: serial drops every tiny term, Kahan keeps them.
        let mut xs = vec![1.0f64];
        xs.extend(std::iter::repeat_n(1e-16, 10_000));
        let exact = 1.0 + 1e-12;
        assert_eq!(serial_sum(&xs), 1.0); // all tiny terms lost
        assert!((kahan_sum(&xs) - exact).abs() < 1e-18);
        assert!((neumaier_sum(&xs) - exact).abs() < 1e-18);
        assert!((klein_sum(&xs) - exact).abs() < 1e-18);
    }

    #[test]
    fn neumaier_beats_kahan_on_swamping() {
        // Kahan's classic failure: [1, huge, 1, -huge] -> Kahan loses the 1s.
        let xs = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(&xs), 2.0);
        assert_eq!(klein_sum(&xs), 2.0);
        assert_eq!(kahan_sum(&xs), 0.0); // documented deficiency
    }

    #[test]
    fn compensated_sums_match_exact_on_hard_data() {
        let xs = ill_conditioned(5000, 1);
        let exact = exact_sum(&xs);
        let k = neumaier_sum(&xs);
        let kl = klein_sum(&xs);
        let rel = |v: f64| (v - exact).abs() / exact.abs().max(1e-300);
        assert!(rel(k) < 1e-12, "neumaier rel err {}", rel(k));
        assert!(rel(kl) < 1e-12, "klein rel err {}", rel(kl));
    }

    #[test]
    fn deterministic_for_fixed_order() {
        let xs = ill_conditioned(1000, 2);
        assert_eq!(kahan_sum(&xs).to_bits(), kahan_sum(&xs).to_bits());
        assert_eq!(neumaier_sum(&xs).to_bits(), neumaier_sum(&xs).to_bits());
        assert_eq!(klein_sum(&xs).to_bits(), klein_sum(&xs).to_bits());
    }

    #[test]
    fn empty_and_single() {
        for f in [kahan_sum, neumaier_sum, klein_sum] {
            assert_eq!(f(&[]), 0.0);
            assert_eq!(f(&[3.25]), 3.25);
        }
    }
}
