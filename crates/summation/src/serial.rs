//! Serial (left-to-right) summation and permutation experiments.
//!
//! The paper's framing (§III): a deterministic sum `S_D = Σ xᵢ` adds
//! the numbers in storage order; a parallel sum with unspecified
//! execution order is equivalent to first applying a random permutation
//! `P` and then summing serially, `S_ND = Σ x_{P(i)}`. Table 1
//! quantifies `S_ND − S_D` and `Vs` for lists of various sizes.

use fpna_core::rng::{permutation, SplitMix64};

/// Left-to-right serial sum — the deterministic reference order.
#[inline]
pub fn serial_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0f64;
    for &x in xs {
        s += x;
    }
    s
}

/// Serial sum in the order given by `perm` (indices into `xs`).
///
/// # Panics
///
/// Panics if `perm` addresses out-of-range elements. A permutation of
/// the wrong length is a logic error in the experiment setup.
pub fn permuted_sum(xs: &[f64], perm: &[u32]) -> f64 {
    assert_eq!(perm.len(), xs.len(), "permutation length mismatch");
    let mut s = 0.0f64;
    for &i in perm {
        s += xs[i as usize];
    }
    s
}

/// Serial sum after a seeded random shuffle — the `S_ND` of Table 1.
pub fn randomly_permuted_sum(xs: &[f64], seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let perm = permutation(xs.len(), &mut rng);
    permuted_sum(xs, &perm)
}

/// Serial sum of `xs` reversed — a deterministic adversarial order used
/// in failure-injection tests.
pub fn reversed_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0f64;
    for &x in xs.iter().rev() {
        s += x;
    }
    s
}

/// Sum in ascending order of magnitude — the most accurate simple
/// ordering; used as an adversarial bound in tests.
pub fn magnitude_sorted_sum(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.abs().total_cmp(&b.abs()));
    serial_sum(&sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect()
    }

    #[test]
    fn serial_sum_simple() {
        assert_eq!(serial_sum(&[]), 0.0);
        assert_eq!(serial_sum(&[1.5]), 1.5);
        assert_eq!(serial_sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn identity_permutation_matches_serial() {
        let xs = test_data(1000, 1);
        let id: Vec<u32> = (0..1000).collect();
        assert_eq!(serial_sum(&xs).to_bits(), permuted_sum(&xs, &id).to_bits());
    }

    #[test]
    fn random_permutation_changes_the_sum() {
        // The core FPNA phenomenon: for a generic list, a permuted sum
        // differs bitwise from the in-order sum.
        let xs = test_data(10_000, 2);
        let sd = serial_sum(&xs);
        let mut any_differ = false;
        for seed in 0..10 {
            if randomly_permuted_sum(&xs, seed).to_bits() != sd.to_bits() {
                any_differ = true;
            }
        }
        assert!(any_differ, "10k-element permuted sums should differ");
    }

    #[test]
    fn permuted_sum_is_deterministic_given_seed() {
        let xs = test_data(5000, 3);
        assert_eq!(
            randomly_permuted_sum(&xs, 99).to_bits(),
            randomly_permuted_sum(&xs, 99).to_bits()
        );
    }

    #[test]
    fn permutation_preserves_sum_to_rounding() {
        let xs = test_data(10_000, 4);
        let sd = serial_sum(&xs);
        let snd = randomly_permuted_sum(&xs, 5);
        // differs bitwise but only at rounding level
        assert!((sd - snd).abs() < 1e-9 * xs.len() as f64 * f64::EPSILON * 1e12);
        assert!((sd - snd).abs() / sd.abs().max(1.0) < 1e-10);
    }

    #[test]
    fn reversed_and_sorted_orders() {
        let xs = test_data(101, 6);
        let r = reversed_sum(&xs);
        let m = magnitude_sorted_sum(&xs);
        let s = serial_sum(&xs);
        for v in [r, m] {
            assert!((v - s).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_permutation_length_panics() {
        permuted_sum(&[1.0, 2.0], &[0]);
    }
}
