//! Unified dispatch over every summation algorithm in the crate, for
//! parameter sweeps and benches.

use crate::compensated::{kahan_sum, klein_sum, neumaier_sum};
use crate::exact::exact_sum;
use crate::pairwise::pairwise_sum_with_leaf;
use crate::parallel::{
    atomic_cas_sum, ordered_threaded_sum, reproducible_threaded_sum, unordered_threaded_sum,
};
use crate::serial::serial_sum;

/// Every summation algorithm in the crate, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumAlgorithm {
    /// Left-to-right serial sum.
    Serial,
    /// Pairwise/tree sum with the given leaf size.
    Pairwise {
        /// Leaf size at which recursion falls back to a serial loop.
        leaf: usize,
    },
    /// Kahan compensated sum.
    Kahan,
    /// Neumaier compensated sum.
    Neumaier,
    /// Klein second-order compensated sum.
    Klein,
    /// Exact long-accumulator sum.
    Exact,
    /// Threaded, partials combined in finish order (non-deterministic).
    UnorderedThreaded {
        /// Worker thread count.
        threads: usize,
    },
    /// Threaded, partials combined in chunk order (deterministic).
    OrderedThreaded {
        /// Worker thread count.
        threads: usize,
    },
    /// Threaded, exact accumulation (deterministic and
    /// partition-invariant).
    ReproducibleThreaded {
        /// Worker thread count.
        threads: usize,
    },
    /// Every element CAS-added to one shared accumulator (the CPU AO).
    AtomicCas {
        /// Worker thread count.
        threads: usize,
    },
}

impl SumAlgorithm {
    /// Run the algorithm.
    pub fn sum(&self, xs: &[f64]) -> f64 {
        match *self {
            SumAlgorithm::Serial => serial_sum(xs),
            SumAlgorithm::Pairwise { leaf } => pairwise_sum_with_leaf(xs, leaf),
            SumAlgorithm::Kahan => kahan_sum(xs),
            SumAlgorithm::Neumaier => neumaier_sum(xs),
            SumAlgorithm::Klein => klein_sum(xs),
            SumAlgorithm::Exact => exact_sum(xs),
            SumAlgorithm::UnorderedThreaded { threads } => unordered_threaded_sum(xs, threads),
            SumAlgorithm::OrderedThreaded { threads } => ordered_threaded_sum(xs, threads),
            SumAlgorithm::ReproducibleThreaded { threads } => {
                reproducible_threaded_sum(xs, threads)
            }
            SumAlgorithm::AtomicCas { threads } => atomic_cas_sum(xs, threads),
        }
    }

    /// Whether repeated executions on the same input are guaranteed to
    /// be bitwise identical.
    pub fn is_deterministic(&self) -> bool {
        !matches!(
            self,
            SumAlgorithm::UnorderedThreaded { .. } | SumAlgorithm::AtomicCas { .. }
        )
    }

    /// Short display name for reports.
    pub fn name(&self) -> String {
        match *self {
            SumAlgorithm::Serial => "serial".into(),
            SumAlgorithm::Pairwise { leaf } => format!("pairwise(leaf={leaf})"),
            SumAlgorithm::Kahan => "kahan".into(),
            SumAlgorithm::Neumaier => "neumaier".into(),
            SumAlgorithm::Klein => "klein".into(),
            SumAlgorithm::Exact => "exact".into(),
            SumAlgorithm::UnorderedThreaded { threads } => format!("unordered(t={threads})"),
            SumAlgorithm::OrderedThreaded { threads } => format!("ordered(t={threads})"),
            SumAlgorithm::ReproducibleThreaded { threads } => {
                format!("reproducible(t={threads})")
            }
            SumAlgorithm::AtomicCas { threads } => format!("atomic-cas(t={threads})"),
        }
    }

    /// The full roster with default parameters, for sweeps.
    pub fn roster(threads: usize) -> Vec<SumAlgorithm> {
        vec![
            SumAlgorithm::Serial,
            SumAlgorithm::Pairwise { leaf: 128 },
            SumAlgorithm::Kahan,
            SumAlgorithm::Neumaier,
            SumAlgorithm::Klein,
            SumAlgorithm::Exact,
            SumAlgorithm::UnorderedThreaded { threads },
            SumAlgorithm::OrderedThreaded { threads },
            SumAlgorithm::ReproducibleThreaded { threads },
            SumAlgorithm::AtomicCas { threads },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;

    #[test]
    fn roster_agrees_on_value() {
        let mut rng = SplitMix64::new(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.next_f64() - 0.5).collect();
        let reference = SumAlgorithm::Exact.sum(&xs);
        for alg in SumAlgorithm::roster(4) {
            let v = alg.sum(&xs);
            assert!(
                (v - reference).abs() < 1e-9,
                "{} = {v}, reference {reference}",
                alg.name()
            );
        }
    }

    #[test]
    fn determinism_flags() {
        assert!(SumAlgorithm::Serial.is_deterministic());
        assert!(SumAlgorithm::Exact.is_deterministic());
        assert!(SumAlgorithm::OrderedThreaded { threads: 8 }.is_deterministic());
        assert!(!SumAlgorithm::UnorderedThreaded { threads: 8 }.is_deterministic());
        assert!(!SumAlgorithm::AtomicCas { threads: 8 }.is_deterministic());
    }

    #[test]
    fn deterministic_algorithms_are_bitwise_stable() {
        let mut rng = SplitMix64::new(2);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.next_f64() * 100.0).collect();
        for alg in SumAlgorithm::roster(4)
            .into_iter()
            .filter(|a| a.is_deterministic())
        {
            let a = alg.sum(&xs);
            let b = alg.sum(&xs);
            assert_eq!(a.to_bits(), b.to_bits(), "{}", alg.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = SumAlgorithm::roster(2).iter().map(|a| a.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
