//! Pairwise (tree) summation.
//!
//! The deterministic GPU kernels in the paper (§III-A) perform a
//! pairwise reduction inside each thread block: each step adds elements
//! in pairs `tᵢ = xᵢ + x_{i+n/2}`, repeated `log₂ n` times. Pairwise
//! summation has an `O(ε·log n)` error bound versus `O(ε·n)` for serial
//! summation (Higham), and — crucially for this study — a *fixed* tree
//! shape, so it is bitwise deterministic no matter how its independent
//! subtrees are scheduled.

use crate::serial::serial_sum;

/// Default leaf size below which the recursion falls back to serial
/// summation. 128 balances tree depth against loop overhead and is the
/// value the bench ablation (`ablation_block_size`) identifies as flat.
pub const DEFAULT_LEAF: usize = 128;

/// Pairwise sum with the default leaf size.
#[inline]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    pairwise_sum_with_leaf(xs, DEFAULT_LEAF)
}

/// Pairwise sum with an explicit leaf size (the recursion switches to a
/// serial loop once a segment is `<= leaf` long).
///
/// # Panics
///
/// Panics if `leaf == 0`.
pub fn pairwise_sum_with_leaf(xs: &[f64], leaf: usize) -> f64 {
    assert!(leaf > 0, "leaf size must be positive");
    if xs.len() <= leaf {
        return serial_sum(xs);
    }
    let mid = xs.len() / 2;
    pairwise_sum_with_leaf(&xs[..mid], leaf) + pairwise_sum_with_leaf(&xs[mid..], leaf)
}

/// The exact reduction tree used by the simulated GPU block kernels:
/// strict power-of-two halving over a buffer padded with zeros, `tᵢ =
/// xᵢ + x_{i+m/2}`. Exposed so CPU tests can pin down the bitwise
/// output of the device kernels.
pub fn block_tree_sum(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = xs.len().next_power_of_two();
    let mut buf = vec![0.0f64; m];
    buf[..xs.len()].copy_from_slice(xs);
    let mut half = m / 2;
    while half > 0 {
        for i in 0..half {
            buf[i] += buf[i + half];
        }
        half /= 2;
    }
    buf[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;

    fn test_data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    #[test]
    fn matches_serial_for_small_inputs() {
        for n in 0..=16 {
            let xs = test_data(n, n as u64);
            assert_eq!(
                pairwise_sum_with_leaf(&xs, 32).to_bits(),
                serial_sum(&xs).to_bits(),
                "below the leaf size pairwise IS serial (n={n})"
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let xs = test_data(100_000, 1);
        let a = pairwise_sum(&xs);
        let b = pairwise_sum(&xs);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn close_to_serial_large() {
        let xs = test_data(1_000_000, 2);
        let p = pairwise_sum(&xs);
        let s = serial_sum(&xs);
        assert!((p - s).abs() < 1e-7, "p={p} s={s}");
    }

    #[test]
    fn pairwise_is_more_accurate_than_serial() {
        // Sum n copies of 0.1: serial error grows ~n, pairwise ~log n.
        let n = 1 << 20;
        let xs = vec![0.1f64; n];
        let exact = 0.1 * n as f64; // representable product, close enough as reference
        let serial_err = (serial_sum(&xs) - exact).abs();
        let pairwise_err = (pairwise_sum(&xs) - exact).abs();
        assert!(
            pairwise_err <= serial_err,
            "pairwise {pairwise_err} vs serial {serial_err}"
        );
    }

    #[test]
    fn leaf_size_changes_bits_but_not_value() {
        let xs = test_data(4096, 3);
        let a = pairwise_sum_with_leaf(&xs, 1);
        let b = pairwise_sum_with_leaf(&xs, 64);
        let c = pairwise_sum_with_leaf(&xs, 4096);
        // all close...
        assert!((a - b).abs() < 1e-10);
        assert!((a - c).abs() < 1e-10);
        // ...and each individually reproducible
        assert_eq!(a.to_bits(), pairwise_sum_with_leaf(&xs, 1).to_bits());
    }

    #[test]
    fn block_tree_handles_non_power_of_two() {
        for n in [0usize, 1, 2, 3, 5, 31, 33, 1000] {
            let xs = test_data(n, 10 + n as u64);
            let t = block_tree_sum(&xs);
            let s = serial_sum(&xs);
            assert!((t - s).abs() < 1e-10, "n={n}");
            // determinism
            assert_eq!(t.to_bits(), block_tree_sum(&xs).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "leaf size")]
    fn zero_leaf_panics() {
        pairwise_sum_with_leaf(&[1.0], 0);
    }
}
