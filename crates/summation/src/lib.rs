//! # fpna-summation
//!
//! Summation algorithms for studying (and defeating) floating-point
//! non-associativity on the CPU — the §III substrate of the paper.
//!
//! * [`serial`] — the reference left-to-right sum and permutation
//!   helpers (Table 1: the same list summed in a different order gives a
//!   different answer);
//! * [`pairwise`] — pairwise/tree summation with a configurable leaf
//!   size, the algorithm underlying the deterministic GPU kernels;
//! * [`compensated`] — Kahan, Neumaier and Klein compensated sums:
//!   order-*sensitive* but far more accurate;
//! * [`exact`] — a Kulisch-style long accumulator: exact, therefore
//!   bitwise reproducible under **any** permutation of the inputs (the
//!   strongest answer to FPNA, in the spirit of the reproducible-sums
//!   work the paper cites);
//! * [`parallel`] — multi-threaded reductions in both the OpenMP
//!   "normal" flavour (combine order = thread finish order ⇒
//!   non-deterministic) and the "ordered" flavour (combine in chunk
//!   index order ⇒ deterministic), plus a CAS-loop `atomicAdd` sum
//!   (Table 3);
//! * [`algorithm`] — an enum unifying all of the above for sweeps and
//!   benches.
//!
//! ```
//! use fpna_summation::{serial_sum, pairwise_sum, exact::ExactAccumulator};
//!
//! let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
//! let s = serial_sum(&xs);
//! let p = pairwise_sum(&xs);
//! let e: f64 = xs.iter().copied().collect::<ExactAccumulator>().round();
//! // All three are deterministic; they differ from each other by
//! // rounding, but each is bitwise stable run to run.
//! assert!((s - p).abs() < 1e-9);
//! assert!((s - e).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod compensated;
pub mod exact;
pub mod pairwise;
pub mod parallel;
pub mod serial;

pub use algorithm::SumAlgorithm;
pub use compensated::{kahan_sum, klein_sum, neumaier_sum};
pub use exact::ExactAccumulator;
pub use pairwise::{pairwise_sum, pairwise_sum_with_leaf};
pub use parallel::{atomic_cas_sum, ordered_threaded_sum, unordered_threaded_sum};
pub use serial::{permuted_sum, serial_sum};
