//! Property tests for the tentpole invariant: merging the shard files
//! of **any** partition of a sweep's runs — any shard count, any
//! uneven boundaries — reproduces the single-process row set and every
//! derived statistic bitwise.
//!
//! The synthetic experiment here has the same shape as the real ones
//! (per-run seeded work keyed by global run index, a few metric
//! columns per cell) but runs in microseconds, so proptest can push
//! hundreds of partitions through the full encode → decode → merge
//! path.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_core::rng::{derive_seed, SplitMix64};
use fpna_sweep::rows::{ExactStats, SweepRows};
use fpna_sweep::spec::{shard_assignments, SweepSpec};
use fpna_sweep::store::{decode_shard, encode_shard};

/// Synthetic experiment: index-pure rows across two cells with
/// different column widths.
fn compute(seed: u64, range: std::ops::Range<usize>) -> SweepRows {
    let mut rows = SweepRows::new();
    for run in range {
        let mut rng = SplitMix64::new(derive_seed(seed, run as u64));
        let a = rng.next_f64() * 2.0 - 1.0;
        let b = rng.next_f64() * 1e6;
        rows.push("alpha", run, vec![a, a * b, b - a, 4.0]);
        rows.push("beta", run, vec![b]);
    }
    rows
}

/// Merge a partition (list of cut points) through the real shard-file
/// wire format.
fn merge_partition(spec: &SweepSpec, seed: u64, cuts: &[usize]) -> (SweepRows, ExactStats) {
    let mut rows = SweepRows::new();
    let mut stats = ExactStats::default();
    for (shard_id, w) in cuts.windows(2).enumerate() {
        let shard_rows = compute(seed, w[0]..w[1]);
        let text = encode_shard(spec, shard_id, w[0]..w[1], &shard_rows);
        let decoded = decode_shard(&text).expect("wire round trip");
        assert_eq!(decoded.run_range, w[0]..w[1]);
        rows.absorb(decoded.rows).expect("disjoint shards");
        stats.merge_from(&decoded.stats);
    }
    (rows, stats)
}

fn reports_bitwise_equal(a: &SweepRows, b: &SweepRows, cell: &str) -> bool {
    let (ra, rb) = (a.variability_report(cell), b.variability_report(cell));
    let eq = |x: f64, y: f64| x.to_bits() == y.to_bits();
    ra.per_run.len() == rb.per_run.len()
        && ra.bitwise_identical_runs == rb.bitwise_identical_runs
        && eq(ra.vermv.mean, rb.vermv.mean)
        && eq(ra.vermv.std_dev, rb.vermv.std_dev)
        && eq(ra.vc.mean, rb.vc.mean)
        && eq(ra.max_abs_diff.max, rb.max_abs_diff.max)
        && ra
            .per_run
            .iter()
            .zip(&rb.per_run)
            .all(|(p, q)| eq(p.0, q.0) && eq(p.1, q.1))
}

#[test]
fn fixed_shard_counts_merge_identically() {
    let seed = 0xD15C0;
    let spec = SweepSpec::new("prop", 21).arg("seed", seed);
    let full = compute(seed, 0..21);
    let full_stats = ExactStats::from_rows(&full);
    for shards in [1usize, 2, 3, 7] {
        let cuts: Vec<usize> = {
            let assignments = shard_assignments(&spec, shards);
            let mut c: Vec<usize> = assignments.iter().map(|a| a.run_range.start).collect();
            c.push(21);
            c
        };
        let (rows, stats) = merge_partition(&spec, seed, &cuts);
        assert_eq!(rows, full, "shards={shards}");
        assert_eq!(stats.fingerprint(), full_stats.fingerprint(), "shards={shards}");
        assert!(reports_bitwise_equal(&rows, &full, "alpha"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ANY partition — arbitrary uneven cut points, including empty
    /// shards — merges to the bitwise single-process result.
    #[test]
    fn arbitrary_partitions_merge_identically(
        runs in 1usize..40,
        seed in any::<u64>(),
        raw_cuts in vec(0usize..40, 0..6),
    ) {
        let spec = SweepSpec::new("prop", runs).arg("seed", seed);
        let mut cuts: Vec<usize> = raw_cuts.into_iter().map(|c| c % (runs + 1)).collect();
        cuts.push(0);
        cuts.push(runs);
        cuts.sort_unstable();
        cuts.dedup();

        let full = compute(seed, 0..runs);
        let (rows, stats) = merge_partition(&spec, seed, &cuts);
        prop_assert_eq!(&rows, &full, "cuts={:?}", &cuts);
        prop_assert_eq!(
            stats.fingerprint(),
            ExactStats::from_rows(&full).fingerprint()
        );
        prop_assert!(reports_bitwise_equal(&rows, &full, "alpha"));
        let (sa, sb) = (rows.run_summary("beta", 0), full.run_summary("beta", 0));
        prop_assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
        prop_assert_eq!(sa.std_dev.to_bits(), sb.std_dev.to_bits());
    }

    /// Merging in a different shard arrival order must either produce
    /// the same result (rows are keyed by run index) — shuffled merge
    /// order is how cross-machine collection actually happens.
    #[test]
    fn merge_order_is_irrelevant(
        runs in 2usize..30,
        seed in any::<u64>(),
        swap in any::<bool>(),
    ) {
        let spec = SweepSpec::new("prop", runs).arg("seed", seed);
        let mid = runs / 2;
        let mut order = vec![(0usize, 0..mid), (1usize, mid..runs)];
        if swap {
            order.reverse();
        }
        let mut rows = SweepRows::new();
        for (shard_id, range) in order {
            let text = encode_shard(&spec, shard_id, range.clone(), &compute(seed, range));
            rows.absorb(decode_shard(&text).unwrap().rows).unwrap();
        }
        prop_assert_eq!(rows, compute(seed, 0..runs));
    }
}
