//! End-to-end process tests for the `sweep` coordinator, driven
//! against the `sweep_selftest` experiment binary: byte-identical
//! sharded reports, warm-cache answers, resume after a killed shard,
//! and stale-partition recovery when the shard count changes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");
const SELFTEST: &str = env!("CARGO_BIN_EXE_sweep_selftest");

const EXP_ARGS: &[&str] = &["--runs", "9", "--len", "400", "--seed", "23"];

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fpna-sweep-e2e-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Single-process reference run of the experiment binary itself.
fn single_process_report() -> Vec<u8> {
    let out = Command::new(SELFTEST)
        .args(EXP_ARGS)
        .output()
        .expect("run selftest");
    assert!(out.status.success(), "selftest failed: {out:?}");
    assert!(!out.stdout.is_empty());
    out.stdout
}

fn run_sweep(store: &Path, shards: usize, extra: &[&str]) -> Output {
    let bin_dir = Path::new(SELFTEST).parent().unwrap();
    let mut cmd = Command::new(SWEEP);
    cmd.args([
        "--bin",
        "sweep_selftest",
        "--bin-dir",
        &bin_dir.display().to_string(),
        "--store",
        &store.display().to_string(),
        "--shards",
        &shards.to_string(),
    ]);
    cmd.args(extra);
    cmd.arg("--");
    cmd.args(EXP_ARGS);
    let out = cmd.output().expect("run sweep coordinator");
    assert!(
        out.status.success(),
        "sweep failed: status={:?} stderr={}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn sharded_report_is_byte_identical_to_single_process() {
    let store = temp_store("identical");
    let reference = single_process_report();
    for shards in [2usize, 3] {
        let out = run_sweep(&store, shards, &["--refresh"]);
        assert_eq!(
            out.stdout,
            reference,
            "merged report diverged at {shards} shards"
        );
        let log = stderr_of(&out);
        assert!(log.contains("report merged from"), "{log}");
    }
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn warm_cache_answers_without_recompute() {
    let store = temp_store("warmcache");
    let cold = run_sweep(&store, 2, &[]);
    assert!(stderr_of(&cold).contains("computing"));

    let warm = run_sweep(&store, 2, &[]);
    let log = stderr_of(&warm);
    assert!(log.contains("report from cache"), "{log}");
    assert!(!log.contains("computing"), "warm run recomputed: {log}");
    assert_eq!(warm.stdout, cold.stdout);

    // --no-cache forces recompute and ignores the cached report…
    let forced = run_sweep(&store, 2, &["--no-cache"]);
    let log = stderr_of(&forced);
    assert!(log.contains("computing"), "{log}");
    assert!(!log.contains("report from cache"), "{log}");
    // …but the answer is still byte-identical.
    assert_eq!(forced.stdout, cold.stdout);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn killed_shard_resumes_without_redoing_completed_work() {
    let store = temp_store("resume");
    let full = run_sweep(&store, 3, &[]);

    // Simulate a shard killed before finishing: its result file is
    // missing while the others survive. Drop the cached report too —
    // the coordinator must re-merge, not answer from cache.
    let sweep_dir = {
        let mut dirs = std::fs::read_dir(&store)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_dir())
            .collect::<Vec<_>>();
        assert_eq!(dirs.len(), 1, "one spec directory expected");
        dirs.pop().unwrap()
    };
    std::fs::remove_file(sweep_dir.join("shard-1.json")).unwrap();
    std::fs::remove_file(sweep_dir.join("report.txt")).unwrap();

    let resumed = run_sweep(&store, 3, &[]);
    let log = stderr_of(&resumed);
    assert!(log.contains("shard 0 [0..3) cached"), "{log}");
    assert!(log.contains("shard 1 [3..6) computing"), "{log}");
    assert!(log.contains("shard 2 [6..9) cached"), "{log}");
    assert_eq!(resumed.stdout, full.stdout, "resumed report diverged");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn changing_shard_count_reuses_store_without_mismerging() {
    let store = temp_store("reshard");
    let two = run_sweep(&store, 2, &[]);
    // Same store, different partition: stale 2-shard files must be
    // pruned, not merged alongside the 4-shard ones. Remove the report
    // cache so the merge actually happens.
    let report = std::fs::read_dir(&store)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.is_dir())
        .unwrap()
        .join("report.txt");
    std::fs::remove_file(&report).unwrap();
    let four = run_sweep(&store, 4, &[]);
    assert_eq!(four.stdout, two.stdout);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn manifest_lists_the_partition() {
    let store = temp_store("manifest");
    let bin_dir = Path::new(SELFTEST).parent().unwrap();
    let out = Command::new(SWEEP)
        .args([
            "--bin",
            "sweep_selftest",
            "--bin-dir",
            &bin_dir.display().to_string(),
            "--store",
            &store.display().to_string(),
            "--shards",
            "3",
            "--manifest",
            "-",
            "--",
        ])
        .args(EXP_ARGS)
        .output()
        .expect("run sweep --manifest");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"schema\":\"fpna-sweep-manifest-v1\""), "{text}");
    assert!(text.contains("\"run_start\":0"), "{text}");
    assert!(text.contains("\"run_end\":9"), "{text}");
    assert!(text.contains("\"base_seed\":23"), "{text}");
    // no store entry is created by a manifest-only invocation
    assert!(!store.exists());
}
