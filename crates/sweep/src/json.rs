//! Minimal JSON reader/writer for the sweep store's own files.
//!
//! The workspace's `serde` is an offline no-op shim (see `vendor/`),
//! so shard result files, sweep specs and manifests are read and
//! written with this hand-rolled value model instead. It supports
//! exactly the JSON subset those files use — objects, arrays, strings,
//! numbers, booleans, null — and keeps object keys in insertion order
//! so written files are deterministic byte for byte.
//!
//! Floating-point **payloads** never travel as JSON numbers: shard
//! files encode every `f64` as its 16-hex-digit bit pattern (see
//! [`crate::rows`]), so decode → encode round-trips are bitwise exact
//! by construction. The numbers this module parses are small integers
//! (run indices, counts), which `f64` represents exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`; the store only uses
    /// integers small enough to be exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is
    /// one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number representing one
    /// exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if the value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if the value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize to compact JSON (no whitespace), keys in stored
    /// order. Deterministic: the same value always produces the same
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and a short
/// description — enough to diagnose a truncated or hand-edited shard
/// file.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        // The store never writes surrogate pairs; a
                        // lone surrogate decodes to the replacement
                        // character rather than failing the file.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                    .map_err(|_| format!("invalid UTF-8 at offset {pos}"))?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a":[1,2,{"b":"x/y=z","c":true}],"d":null,"e":-3.5}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(),
            Some("x/y=z")
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_are_exact() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("1.5").unwrap().as_usize(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn object_lookup_misses_cleanly() {
        let v = parse(r#"{"a":1}"#).unwrap();
        assert!(v.get("b").is_none());
        assert!(Value::Null.get("a").is_none());
    }
}
