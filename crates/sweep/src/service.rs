//! Ref-counted in-process shard sharing.
//!
//! When several sweep requests run inside one process (a notebook-like
//! driver, a test harness, a long-lived analysis service) and their
//! shard sets overlap, each shard should be computed **once** and its
//! rows shared. [`SweepService`] provides that: requests ask for a
//! shard by `(spec, run range)` and get back a [`ShardHandle`];
//! concurrent requests for the same shard block on the single
//! in-flight computation instead of duplicating it, and the cached
//! rows live exactly as long as at least one handle does (the registry
//! holds only weak references, so dropping the last handle frees the
//! memory).
//!
//! Because rows are index-pure, sharing computed shards across
//! requests cannot change any report — it only removes duplicate work.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::rows::SweepRows;
use crate::spec::SweepSpec;

type ShardKey = (String, usize, usize);

#[derive(Debug, Default)]
struct ShardCell {
    rows: OnceLock<SweepRows>,
}

/// Shared registry of in-flight / in-use shard computations.
#[derive(Debug, Default)]
pub struct SweepService {
    cells: Mutex<HashMap<ShardKey, Weak<ShardCell>>>,
}

/// A live reference to one shard's rows. Clone-cheap; the underlying
/// rows are freed when the last handle for the shard drops.
#[derive(Debug, Clone)]
pub struct ShardHandle {
    cell: Arc<ShardCell>,
}

impl ShardHandle {
    /// The shard's rows.
    pub fn rows(&self) -> &SweepRows {
        self.cell.rows.get().expect("initialized before handing out")
    }
}

impl SweepService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get the rows for `(spec, range)`, computing them with `compute`
    /// only if no live or in-flight copy exists. Concurrent callers
    /// for the same shard block until the one computation finishes and
    /// then share its result.
    pub fn shard<F>(&self, spec: &SweepSpec, range: Range<usize>, compute: F) -> ShardHandle
    where
        F: FnOnce() -> SweepRows,
    {
        let key: ShardKey = (spec.hash_hex(), range.start, range.end);
        let cell = {
            let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
            cells.retain(|_, weak| weak.strong_count() > 0);
            match cells.get(&key).and_then(Weak::upgrade) {
                Some(cell) => cell,
                None => {
                    let cell = Arc::new(ShardCell::default());
                    cells.insert(key, Arc::downgrade(&cell));
                    cell
                }
            }
        };
        // OnceLock::get_or_init blocks every concurrent requester on
        // the single in-flight `compute`, which is exactly the "shared
        // shards compute once" contract. The registry lock is NOT held
        // here, so unrelated shards compute in parallel.
        cell.rows.get_or_init(compute);
        ShardHandle { cell }
    }

    /// Number of shards currently alive (still referenced by at least
    /// one handle). For tests and diagnostics.
    pub fn live_shards(&self) -> usize {
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        cells.retain(|_, weak| weak.strong_count() > 0);
        cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spec() -> SweepSpec {
        SweepSpec::new("svc", 12).arg("seed", 3)
    }

    fn rows_for(range: Range<usize>) -> SweepRows {
        let mut rows = SweepRows::new();
        for run in range {
            rows.push("c", run, vec![run as f64]);
        }
        rows
    }

    #[test]
    fn shared_shards_compute_once_across_threads() {
        let service = Arc::new(SweepService::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let service = Arc::clone(&service);
                let computes = Arc::clone(&computes);
                std::thread::spawn(move || {
                    let h = service.shard(&spec(), 0..6, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        rows_for(0..6)
                    });
                    assert_eq!(h.rows(), &rows_for(0..6));
                    h
                })
            })
            .collect();
        let held: Vec<ShardHandle> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        assert_eq!(service.live_shards(), 1);
        drop(held);
        assert_eq!(service.live_shards(), 0);
    }

    #[test]
    fn distinct_ranges_and_specs_are_distinct_shards() {
        let service = SweepService::new();
        let computes = AtomicUsize::new(0);
        let mk = |r: Range<usize>| {
            service.shard(&spec(), r.clone(), || {
                computes.fetch_add(1, Ordering::SeqCst);
                rows_for(r)
            })
        };
        let a = mk(0..6);
        let b = mk(6..12);
        let a2 = mk(0..6); // shared with `a`, no recompute
        assert_eq!(computes.load(Ordering::SeqCst), 2);
        assert_eq!(a.rows(), a2.rows());
        assert_ne!(a.rows(), b.rows());

        let other = spec().arg("seed", 4);
        let c = service.shard(&other, 0..6, || {
            computes.fetch_add(1, Ordering::SeqCst);
            rows_for(0..6)
        });
        assert_eq!(computes.load(Ordering::SeqCst), 3);
        assert_eq!(service.live_shards(), 3);
        drop((a, b, a2, c));
        assert_eq!(service.live_shards(), 0);
    }

    #[test]
    fn recompute_after_all_handles_drop() {
        let service = SweepService::new();
        let computes = AtomicUsize::new(0);
        let h = service.shard(&spec(), 0..3, || {
            computes.fetch_add(1, Ordering::SeqCst);
            rows_for(0..3)
        });
        drop(h);
        let _h2 = service.shard(&spec(), 0..3, || {
            computes.fetch_add(1, Ordering::SeqCst);
            rows_for(0..3)
        });
        // memory was released, so the shard is computed again
        assert_eq!(computes.load(Ordering::SeqCst), 2);
    }
}
