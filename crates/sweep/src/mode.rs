//! The sharding protocol experiment binaries speak.
//!
//! Any binary wired through [`SweepMode`] gains four modes from one
//! small flag set, while staying the single source of truth for its
//! own spec:
//!
//! * **Full** (no protocol flags): compute every run and print the
//!   report — exactly the pre-sweep behaviour.
//! * **`--emit-spec`**: print the canonical [`SweepSpec`] JSON on
//!   stdout and exit. The coordinator calls this instead of guessing a
//!   binary's flags.
//! * **`--shard-id N --shard-start A --shard-end B [--shard-out PATH]`**:
//!   compute only global runs `[A, B)`, write a self-describing shard
//!   file, print **nothing** on stdout.
//! * **`--from-shards STORE_ROOT`**: skip all computation, load and
//!   merge the shard files for this spec from the store, and print the
//!   report — byte-identical to Full mode's output.
//!
//! The intended `main` skeleton:
//!
//! ```ignore
//! let mode = SweepMode::from_args_or_exit(&raw_args);
//! let spec = /* built from parsed flags */;
//! if mode.emit_spec(&spec) { return; }
//! let rows = match mode.compute_range(spec.runs) {
//!     Some(range) => compute(range),            // Full or Shard
//!     None => mode.load_rows_or_exit(&spec),    // Merge
//! };
//! if mode.finish_shard_or_exit(&spec, &rows) { return; }
//! report(&rows);                                // Full or Merge
//! ```

use std::ops::Range;
use std::path::PathBuf;

use crate::rows::SweepRows;
use crate::spec::SweepSpec;
use crate::store::SweepStore;

/// Which of the four protocol modes the process is running in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepMode {
    /// Compute all runs and report (no protocol flags present).
    Full,
    /// Print the spec JSON and exit.
    EmitSpec,
    /// Compute one shard's run range and write its shard file.
    Shard {
        /// Shard index.
        id: usize,
        /// Global run range `[start, end)` to compute.
        start: usize,
        /// End of the global run range.
        end: usize,
        /// Where to write the shard file; defaults to the standard
        /// store path under `target/sweeps`.
        out: Option<PathBuf>,
    },
    /// Merge shard files from the store root and report.
    Merge {
        /// Results store root (the directory holding `<spec-hash>/`).
        root: PathBuf,
    },
}

impl SweepMode {
    /// Parse the protocol flags out of an argument list. Unrelated
    /// flags are ignored (experiment binaries parse those themselves).
    pub fn from_args(args: &[String]) -> Result<SweepMode, String> {
        let value_of = |flag: &str| -> Result<Option<&String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .map(Some)
                    .ok_or_else(|| format!("{flag} needs a value")),
            }
        };
        let usize_of = |flag: &str| -> Result<Option<usize>, String> {
            value_of(flag)?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("{flag} {v:?}: {e}"))
                })
                .transpose()
        };

        let emit = args.iter().any(|a| a == "--emit-spec");
        let shard_id = usize_of("--shard-id")?;
        let from_shards = value_of("--from-shards")?;

        let modes_requested =
            usize::from(emit) + usize::from(shard_id.is_some()) + usize::from(from_shards.is_some());
        if modes_requested > 1 {
            return Err(
                "--emit-spec, --shard-id and --from-shards are mutually exclusive".into(),
            );
        }

        if emit {
            return Ok(SweepMode::EmitSpec);
        }
        if let Some(root) = from_shards {
            return Ok(SweepMode::Merge {
                root: PathBuf::from(root),
            });
        }
        if let Some(id) = shard_id {
            let start =
                usize_of("--shard-start")?.ok_or("--shard-id requires --shard-start")?;
            let end = usize_of("--shard-end")?.ok_or("--shard-id requires --shard-end")?;
            if end < start {
                return Err(format!("--shard-end {end} < --shard-start {start}"));
            }
            return Ok(SweepMode::Shard {
                id,
                start,
                end,
                out: value_of("--shard-out")?.map(PathBuf::from),
            });
        }
        Ok(SweepMode::Full)
    }

    /// [`SweepMode::from_args`], exiting with status 2 and a message
    /// on stderr when the flags are malformed.
    pub fn from_args_or_exit(args: &[String]) -> SweepMode {
        SweepMode::from_args(args).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// In `EmitSpec` mode: print the spec and return `true` (caller
    /// returns immediately). `false` in every other mode.
    pub fn emit_spec(&self, spec: &SweepSpec) -> bool {
        if matches!(self, SweepMode::EmitSpec) {
            println!("{}", spec.canonical_json());
            true
        } else {
            false
        }
    }

    /// The global run range this process must compute, or `None` in
    /// `Merge` mode (nothing is computed there).
    ///
    /// # Panics
    ///
    /// Panics if a shard range reaches past `total_runs` — the
    /// coordinator and the binary disagree about the spec, which must
    /// not be papered over.
    pub fn compute_range(&self, total_runs: usize) -> Option<Range<usize>> {
        match self {
            SweepMode::Full | SweepMode::EmitSpec => Some(0..total_runs),
            SweepMode::Shard { start, end, .. } => {
                assert!(
                    *end <= total_runs,
                    "shard range {start}..{end} exceeds --runs {total_runs}"
                );
                Some(*start..*end)
            }
            SweepMode::Merge { .. } => None,
        }
    }

    /// `true` when running as a shard (used to silence stdout and
    /// namespace observability output).
    pub fn is_shard(&self) -> bool {
        matches!(self, SweepMode::Shard { .. })
    }

    /// The shard id, when in shard mode.
    pub fn shard_id(&self) -> Option<usize> {
        match self {
            SweepMode::Shard { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// `true` when a report will be printed (Full or Merge mode).
    pub fn reports(&self) -> bool {
        matches!(self, SweepMode::Full | SweepMode::Merge { .. })
    }

    /// In `Merge` mode: load and merge this spec's shard files from
    /// the store, exiting with a diagnostic if they are absent,
    /// corrupt, or not an exact partition.
    ///
    /// # Panics
    ///
    /// Panics if called in a non-merge mode (`compute_range` returned
    /// a range, so there is nothing to load).
    pub fn load_rows_or_exit(&self, spec: &SweepSpec) -> SweepRows {
        let SweepMode::Merge { root } = self else {
            panic!("load_rows_or_exit outside merge mode");
        };
        match SweepStore::new(root).load_merged(spec) {
            Ok((rows, _stats)) => rows,
            Err(e) => {
                eprintln!("error: cannot merge shards for spec {}: {e}", spec.hash_hex());
                std::process::exit(1);
            }
        }
    }

    /// In `Shard` mode: write the shard file and return `true` (caller
    /// returns without reporting). `false` in every other mode.
    /// Exits with a diagnostic if the file cannot be written.
    pub fn finish_shard_or_exit(&self, spec: &SweepSpec, rows: &SweepRows) -> bool {
        let SweepMode::Shard { id, start, end, out } = self else {
            return false;
        };
        let result = match out {
            Some(path) => crate::store::write_atomic(
                path,
                crate::store::encode_shard(spec, *id, *start..*end, rows).as_bytes(),
            )
            .map(|()| path.clone()),
            None => SweepStore::default_root().write_shard(spec, *id, *start..*end, rows),
        };
        match result {
            Ok(path) => {
                eprintln!(
                    "shard {id} [{start}..{end}) of spec {} -> {}",
                    spec.hash_hex(),
                    path.display()
                );
                true
            }
            Err(e) => {
                eprintln!("error: cannot write shard file: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_mode_when_no_protocol_flags() {
        let m = SweepMode::from_args(&args(&["--runs", "8", "--seed", "3"])).unwrap();
        assert_eq!(m, SweepMode::Full);
        assert_eq!(m.compute_range(8), Some(0..8));
        assert!(m.reports());
        assert!(!m.is_shard());
    }

    #[test]
    fn shard_mode_parses_range_and_out() {
        let m = SweepMode::from_args(&args(&[
            "--runs", "8", "--shard-id", "1", "--shard-start", "4", "--shard-end", "8",
            "--shard-out", "/tmp/x.json",
        ]))
        .unwrap();
        assert_eq!(m.compute_range(8), Some(4..8));
        assert_eq!(m.shard_id(), Some(1));
        assert!(m.is_shard());
        assert!(!m.reports());
    }

    #[test]
    fn merge_mode_has_no_compute_range() {
        let m = SweepMode::from_args(&args(&["--from-shards", "/tmp/store"])).unwrap();
        assert_eq!(m.compute_range(8), None);
        assert!(m.reports());
    }

    #[test]
    fn malformed_flags_are_rejected() {
        assert!(SweepMode::from_args(&args(&["--shard-id", "0"])).is_err());
        assert!(SweepMode::from_args(&args(&["--shard-id"])).is_err());
        assert!(SweepMode::from_args(&args(&[
            "--shard-id", "0", "--shard-start", "5", "--shard-end", "2",
        ]))
        .is_err());
        assert!(SweepMode::from_args(&args(&["--emit-spec", "--from-shards", "x"])).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn shard_range_beyond_runs_panics() {
        let m = SweepMode::from_args(&args(&[
            "--shard-id", "0", "--shard-start", "0", "--shard-end", "9",
        ]))
        .unwrap();
        let _ = m.compute_range(8);
    }
}
