//! The process-sharding coordinator.
//!
//! Given an experiment binary and its arguments, the coordinator:
//!
//! 1. asks the binary for its [`SweepSpec`] (`--emit-spec`) — the
//!    binary stays the single source of truth for what it computes;
//! 2. answers from the cached merged report if the store already has
//!    one for this spec hash;
//! 3. otherwise partitions the runs with [`shard_assignments`], skips
//!    every shard whose valid result file is already in the store
//!    (resumability), and spawns one OS process per missing shard,
//!    at most `jobs` at a time;
//! 4. removes shard files left over from a different partition, then
//!    spawns the binary once more in `--from-shards` mode to merge and
//!    print the report — byte-identical to a single-process run;
//! 5. caches the report bytes for the next identical query.
//!
//! Shard boundaries and per-run seeds are pure functions of the spec,
//! so the same manifest can be split across machines: run the listed
//! shard commands anywhere, copy the shard files into one store, and
//! re-run the coordinator — completed shards are skipped and the merge
//! is unchanged.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use crate::spec::{shard_assignments, ShardAssignment, SweepSpec};
use crate::store::SweepStore;

/// Configuration for one coordinated sweep.
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// Experiment binary: a bare name resolved against `bin_dir`, or a
    /// path (anything containing a separator) used as-is.
    pub bin: String,
    /// Directory holding experiment binaries. Defaults to the
    /// directory of the current executable — the coordinator normally
    /// lives next to the experiments in `target/release`.
    pub bin_dir: Option<PathBuf>,
    /// The experiment's own arguments (everything after `--`).
    pub user_args: Vec<String>,
    /// Number of shards to partition the runs into.
    pub shards: usize,
    /// Maximum concurrently running shard processes.
    pub jobs: usize,
    /// Delete this spec's store entry first and recompute everything.
    pub refresh: bool,
    /// Ignore cached shard files and the cached report; recompute all
    /// shards. (Shard files are still written — they are the merge
    /// transport — but the report cache is neither read nor written.)
    pub no_cache: bool,
    /// The results store.
    pub store: SweepStore,
}

/// What a coordinated run did and produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The spec the binary reported.
    pub spec: SweepSpec,
    /// Merged report bytes (the binary's Full-mode stdout, byte for
    /// byte).
    pub report: Vec<u8>,
    /// Shard ids that were computed this run.
    pub computed_shards: Vec<usize>,
    /// Shard ids answered from existing store files.
    pub cached_shards: Vec<usize>,
    /// `true` when the report came straight from the report cache (no
    /// shard work, no merge process).
    pub report_from_cache: bool,
    /// Exit code of the merge process (0 when the report was cached).
    /// Experiments use a non-zero exit to flag failed internal checks;
    /// the coordinator propagates it.
    pub merge_status: i32,
}

impl Coordinator {
    /// A coordinator with default store, jobs = available parallelism,
    /// and caching on.
    pub fn new(bin: impl Into<String>, user_args: Vec<String>, shards: usize) -> Self {
        Coordinator {
            bin: bin.into(),
            bin_dir: None,
            user_args,
            shards,
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            refresh: false,
            no_cache: false,
            store: SweepStore::default_root(),
        }
    }

    fn resolve_bin(&self) -> Result<PathBuf, String> {
        if self.bin.contains(std::path::MAIN_SEPARATOR) || self.bin.contains('/') {
            return Ok(PathBuf::from(&self.bin));
        }
        let dir = match &self.bin_dir {
            Some(d) => d.clone(),
            None => std::env::current_exe()
                .map_err(|e| format!("cannot locate own executable: {e}"))?
                .parent()
                .ok_or("executable has no parent directory")?
                .to_path_buf(),
        };
        let mut path = dir.join(&self.bin);
        if !path.exists() {
            let exe = format!("{}{}", self.bin, std::env::consts::EXE_SUFFIX);
            path = path.with_file_name(exe);
        }
        Ok(path)
    }

    fn command(&self) -> Result<Command, String> {
        let mut cmd = Command::new(self.resolve_bin()?);
        cmd.args(&self.user_args);
        Ok(cmd)
    }

    /// Ask the experiment binary for its spec (`--emit-spec`).
    pub fn emit_spec(&self) -> Result<SweepSpec, String> {
        let mut cmd = self.command()?;
        cmd.arg("--emit-spec");
        let out = cmd
            .stderr(Stdio::inherit())
            .output()
            .map_err(|e| format!("cannot run {}: {e}", self.bin))?;
        if !out.status.success() {
            return Err(format!("{} --emit-spec failed: {}", self.bin, out.status));
        }
        let text = String::from_utf8(out.stdout)
            .map_err(|_| "spec output is not UTF-8".to_string())?;
        SweepSpec::from_json_str(text.trim())
            .map_err(|e| format!("{} emitted an invalid spec: {e}", self.bin))
    }

    /// The manifest JSON for this sweep (spec + per-shard run ranges).
    pub fn manifest(&self) -> Result<String, String> {
        let spec = self.emit_spec()?;
        Ok(crate::spec::manifest_json(&spec, self.shards))
    }

    /// Run the coordinated sweep. Progress lines go to stderr; the
    /// merged report is returned (and cached) — printing it is the
    /// caller's job.
    pub fn run(&self) -> Result<RunOutcome, String> {
        let spec = self.emit_spec()?;
        eprintln!(
            "sweep: {} spec {} ({} runs, {} shards)",
            spec.experiment,
            spec.hash_hex(),
            spec.runs,
            self.shards
        );
        if self.refresh {
            self.store
                .clear(&spec)
                .map_err(|e| format!("cannot clear store entry: {e}"))?;
            eprintln!("sweep: cleared store entry (--refresh)");
        }

        if !self.no_cache && !self.refresh {
            if let Some(report) = self.store.read_report(&spec) {
                eprintln!("sweep: report from cache");
                return Ok(RunOutcome {
                    spec,
                    report,
                    computed_shards: Vec::new(),
                    cached_shards: Vec::new(),
                    report_from_cache: true,
                    merge_status: 0,
                });
            }
        }

        let assignments = shard_assignments(&spec, self.shards);
        let mut cached_shards = Vec::new();
        let mut to_compute: Vec<&ShardAssignment> = Vec::new();
        for a in &assignments {
            let reusable = !self.no_cache
                && self
                    .store
                    .read_valid_shard(&spec, a.shard_id, a.run_range.clone())
                    .is_some();
            if reusable {
                eprintln!(
                    "sweep: shard {} [{}..{}) cached",
                    a.shard_id, a.run_range.start, a.run_range.end
                );
                cached_shards.push(a.shard_id);
            } else {
                to_compute.push(a);
            }
        }

        let computed_shards = self.run_shards(&spec, &to_compute)?;
        self.store
            .remove_stale_shards(&spec, &assignments)
            .map_err(|e| format!("cannot prune stale shard files: {e}"))?;

        // Validate the partition before paying for the merge process;
        // also yields the exact-stats fingerprint for the summary.
        let (_rows, stats) = self.store.load_merged(&spec)?;
        eprintln!("sweep: exact-stats fingerprint {:016x}", stats.fingerprint());

        let (report, merge_status) = self.merge(&spec)?;
        if !self.no_cache && merge_status == 0 {
            self.store
                .write_report(&spec, &report)
                .map_err(|e| format!("cannot cache report: {e}"))?;
        }
        eprintln!(
            "sweep: report merged from {} shards ({} computed, {} cached)",
            assignments.len(),
            computed_shards.len(),
            cached_shards.len()
        );
        Ok(RunOutcome {
            spec,
            report,
            computed_shards,
            cached_shards,
            report_from_cache: false,
            merge_status,
        })
    }

    /// Spawn shard processes, at most `jobs` concurrently. Returns the
    /// computed shard ids.
    fn run_shards(
        &self,
        spec: &SweepSpec,
        shards: &[&ShardAssignment],
    ) -> Result<Vec<usize>, String> {
        let jobs = self.jobs.max(1);
        let mut computed = Vec::new();
        let mut running: Vec<(usize, std::process::Child)> = Vec::new();
        let mut queue = shards.iter();

        let wait_one =
            |running: &mut Vec<(usize, std::process::Child)>| -> Result<(), String> {
                let (id, mut child) = running.remove(0);
                let status = child
                    .wait()
                    .map_err(|e| format!("waiting for shard {id}: {e}"))?;
                if !status.success() {
                    return Err(format!("shard {id} failed: {status}"));
                }
                Ok(())
            };

        loop {
            while running.len() < jobs {
                let Some(a) = queue.next() else { break };
                let out = self.store.shard_path(spec, a.shard_id);
                let mut cmd = self.command()?;
                cmd.args([
                    "--shard-id".to_string(),
                    a.shard_id.to_string(),
                    "--shard-start".to_string(),
                    a.run_range.start.to_string(),
                    "--shard-end".to_string(),
                    a.run_range.end.to_string(),
                    "--shard-out".to_string(),
                    out.display().to_string(),
                ]);
                // Shard mode prints nothing on stdout by contract;
                // discard it anyway so a stray print can never corrupt
                // the coordinator's own stdout (the merged report).
                cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
                eprintln!(
                    "sweep: shard {} [{}..{}) computing",
                    a.shard_id, a.run_range.start, a.run_range.end
                );
                let child = cmd
                    .spawn()
                    .map_err(|e| format!("cannot spawn shard {}: {e}", a.shard_id))?;
                running.push((a.shard_id, child));
                computed.push(a.shard_id);
            }
            if running.is_empty() {
                break;
            }
            wait_one(&mut running)?;
        }
        Ok(computed)
    }

    /// Spawn the merge process and capture the report bytes.
    fn merge(&self, _spec: &SweepSpec) -> Result<(Vec<u8>, i32), String> {
        let mut cmd = self.command()?;
        cmd.args([
            "--from-shards".to_string(),
            self.store.root().display().to_string(),
        ]);
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn merge process: {e}"))?;
        let mut report = Vec::new();
        child
            .stdout
            .take()
            .expect("stdout piped")
            .read_to_end(&mut report)
            .map_err(|e| format!("reading merged report: {e}"))?;
        let status = child
            .wait()
            .map_err(|e| format!("waiting for merge process: {e}"))?;
        Ok((report, status.code().unwrap_or(1)))
    }
}
