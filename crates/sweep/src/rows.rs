//! The shardable result model: per-(cell, run) metric rows.
//!
//! Every experiment wired through the sweep protocol is reduced to the
//! same shape: a set of named **cells** (one per table cell / figure
//! series — e.g. `"p32/fat-tree/s4/load0.5/ao0.1"`), each holding one
//! small `Vec<f64>` of metric values per **global run index**. Rows
//! are index-pure — the values at `(cell, run)` depend only on the
//! sweep spec and the global run index, never on which process
//! computed them — so concatenating any partition of the run range in
//! index order reproduces the single-process row set bit for bit, and
//! every report derived from rows is byte-identical too.
//!
//! Values cross process boundaries as 16-hex-digit [`f64::to_bits`]
//! strings ([`f64_to_hex`] / [`f64_from_hex`]), never as decimal
//! text, so serialization is lossless by construction.
//!
//! [`ExactStats`] folds every column of every cell into an
//! [`ExactAccumulator`] — the error-free summation primitive from
//! `fpna-summation` — giving cross-shard statistics whose merge is
//! provably partition-invariant and a cheap [`ExactStats::fingerprint`]
//! for coordinator summaries and store validation.

use std::collections::BTreeMap;

use fpna_core::harness::{RunSummary, VariabilityReport};
use fpna_core::metrics::ArrayComparison;
use fpna_summation::ExactAccumulator;

/// Encode an `f64` as its 16-hex-digit bit pattern.
#[inline]
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decode a [`f64_to_hex`] string back to the identical `f64`.
pub fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits, got {:?}", s));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 hex {s:?}: {e}"))
}

/// Per-(cell, run) metric rows for one sweep (or one shard of one).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepRows {
    cells: BTreeMap<String, BTreeMap<usize, Vec<f64>>>,
}

impl SweepRows {
    /// An empty row set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the values for `(cell, run)`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already filled — within one process that
    /// is a compute-loop bug, not a data condition.
    pub fn push(&mut self, cell: &str, run: usize, values: Vec<f64>) {
        let prev = self
            .cells
            .entry(cell.to_string())
            .or_default()
            .insert(run, values);
        assert!(
            prev.is_none(),
            "duplicate row for cell {cell:?} run {run}"
        );
    }

    /// Number of distinct cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total number of (cell, run) rows.
    pub fn row_count(&self) -> usize {
        self.cells.values().map(BTreeMap::len).sum()
    }

    /// `true` when no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate cells in name order; each item is
    /// `(cell, runs-in-index-order)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BTreeMap<usize, Vec<f64>>)> {
        self.cells.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The runs recorded for `cell`, in index order. Empty for an
    /// unknown cell.
    pub fn runs(&self, cell: &str) -> Vec<usize> {
        self.cells
            .get(cell)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The values stored at `(cell, run)`.
    pub fn values(&self, cell: &str, run: usize) -> Option<&[f64]> {
        self.cells.get(cell)?.get(&run).map(Vec::as_slice)
    }

    /// Column `col` of `cell` across its runs, in run-index order.
    ///
    /// # Panics
    ///
    /// Panics if any row of the cell is too short — columns are part
    /// of a cell's schema, so a ragged cell is corrupt data.
    pub fn column(&self, cell: &str, col: usize) -> Vec<f64> {
        match self.cells.get(cell) {
            None => Vec::new(),
            Some(m) => m
                .iter()
                .map(|(run, v)| {
                    *v.get(col).unwrap_or_else(|| {
                        panic!("cell {cell:?} run {run} has no column {col}")
                    })
                })
                .collect(),
        }
    }

    /// Reassemble [`ArrayComparison`]s from a cell that stores the
    /// comparison convention `[vermv, vc, max_abs_diff, len, ..]` in
    /// its first four columns, in run-index order.
    pub fn comparisons(&self, cell: &str) -> Vec<ArrayComparison> {
        match self.cells.get(cell) {
            None => Vec::new(),
            Some(m) => m
                .iter()
                .map(|(run, v)| {
                    assert!(
                        v.len() >= 4,
                        "cell {cell:?} run {run}: comparison rows need 4 columns"
                    );
                    ArrayComparison::from_parts(v[0], v[1], v[2], v[3] as usize)
                })
                .collect(),
        }
    }

    /// [`VariabilityReport`] over a comparison-convention cell —
    /// bitwise what `VariabilityHarness::array` would have returned in
    /// a single process.
    pub fn variability_report(&self, cell: &str) -> VariabilityReport {
        VariabilityReport::from_comparisons(&self.comparisons(cell))
    }

    /// [`RunSummary`] over one column of a cell.
    pub fn run_summary(&self, cell: &str, col: usize) -> RunSummary {
        RunSummary::from_values(&self.column(cell, col))
    }

    /// Merge another row set into this one (shard merge). Fails on any
    /// overlapping `(cell, run)` slot — overlap means two shards both
    /// claimed a run, which the coordinator must surface, not resolve.
    pub fn absorb(&mut self, other: SweepRows) -> Result<(), String> {
        for (cell, runs) in other.cells {
            let slot = self.cells.entry(cell.clone()).or_default();
            for (run, values) in runs {
                if slot.insert(run, values).is_some() {
                    return Err(format!(
                        "overlapping shards: cell {cell:?} run {run} appears twice"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check that `cell`'s recorded runs are exactly `expected` (an
    /// index range) — the coordinator's completeness gate before
    /// reporting.
    pub fn check_coverage(
        &self,
        cell: &str,
        expected: std::ops::Range<usize>,
    ) -> Result<(), String> {
        let runs = self.runs(cell);
        let want: Vec<usize> = expected.clone().collect();
        if runs == want {
            Ok(())
        } else {
            Err(format!(
                "cell {cell:?}: have {} runs, expected exactly {:?}",
                runs.len(),
                expected
            ))
        }
    }
}

/// Exact per-cell column sums across runs, built on
/// [`ExactAccumulator`] so merging per-shard stats in shard-index
/// order reproduces the single-process sums bitwise.
#[derive(Debug, Clone, Default)]
pub struct ExactStats {
    cells: BTreeMap<String, CellStats>,
}

/// Exact statistics for one cell: row count and one exact sum per
/// column.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Number of rows folded in.
    pub count: usize,
    /// One exact accumulator per column, normalized.
    pub sums: Vec<ExactAccumulator>,
}

impl ExactStats {
    /// Fold a row set into exact per-cell, per-column sums.
    pub fn from_rows(rows: &SweepRows) -> Self {
        let mut cells = BTreeMap::new();
        for (cell, runs) in rows.iter() {
            let width = runs.values().map(Vec::len).max().unwrap_or(0);
            let mut sums = vec![ExactAccumulator::new(); width];
            let mut count = 0usize;
            for values in runs.values() {
                count += 1;
                for (col, &v) in values.iter().enumerate() {
                    sums[col].add(v);
                }
            }
            for s in &mut sums {
                s.normalize();
            }
            cells.insert(cell.to_string(), CellStats { count, sums });
        }
        ExactStats { cells }
    }

    /// Iterate cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CellStats)> {
        self.cells.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stats for one cell.
    pub fn cell(&self, cell: &str) -> Option<&CellStats> {
        self.cells.get(cell)
    }

    /// Insert (or replace) one cell's stats — the deserialization path
    /// for shard files.
    pub fn insert_cell(&mut self, cell: String, stats: CellStats) {
        self.cells.insert(cell, stats);
    }

    /// Merge another shard's stats into this one. Exactness of
    /// [`ExactAccumulator::merge`] makes the result independent of how
    /// runs were partitioned; calling in shard-index order keeps
    /// `count` bookkeeping deterministic too.
    pub fn merge_from(&mut self, other: &ExactStats) {
        for (cell, stats) in other.cells.iter() {
            match self.cells.get_mut(cell) {
                None => {
                    self.cells.insert(cell.clone(), stats.clone());
                }
                Some(mine) => {
                    mine.count += stats.count;
                    if mine.sums.len() < stats.sums.len() {
                        mine.sums
                            .resize_with(stats.sums.len(), ExactAccumulator::new);
                    }
                    for (col, acc) in stats.sums.iter().enumerate() {
                        mine.sums[col].merge(acc);
                        mine.sums[col].normalize();
                    }
                }
            }
        }
    }

    /// FNV-1a 64 digest of every cell name, count, and normalized
    /// accumulator wire encoding — a cheap bitwise fingerprint of the
    /// whole statistic set, used in coordinator summaries and the
    /// partition-invariance tests.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for (cell, stats) in &self.cells {
            bytes.extend_from_slice(cell.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&(stats.count as u64).to_le_bytes());
            for acc in &stats.sums {
                let mut a = acc.clone();
                a.normalize();
                bytes.extend_from_slice(&a.to_wire_bytes());
            }
        }
        crate::spec::fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows(range: std::ops::Range<usize>) -> SweepRows {
        let mut rows = SweepRows::new();
        for run in range {
            let x = (run as f64 + 1.0).recip();
            rows.push("a", run, vec![x, x * x, -x, 8.0]);
            rows.push("b", run, vec![x * 3.0]);
        }
        rows
    }

    #[test]
    fn hex_round_trip_is_bitwise() {
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-308, -7.25e17] {
            let back = f64_from_hex(&f64_to_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert!(f64_from_hex("abc").is_err());
        assert!(f64_from_hex("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn absorb_of_partition_matches_full() {
        let full = sample_rows(0..10);
        let mut merged = sample_rows(0..3);
        merged.absorb(sample_rows(3..7)).unwrap();
        merged.absorb(sample_rows(7..10)).unwrap();
        assert_eq!(merged, full);
        assert_eq!(merged.row_count(), 20);
        merged.check_coverage("a", 0..10).unwrap();
        assert!(merged.check_coverage("a", 0..11).is_err());
    }

    #[test]
    fn absorb_detects_overlap() {
        let mut rows = sample_rows(0..5);
        let err = rows.absorb(sample_rows(4..6)).unwrap_err();
        assert!(err.contains("run 4"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate row")]
    fn push_rejects_duplicates() {
        let mut rows = SweepRows::new();
        rows.push("a", 0, vec![1.0]);
        rows.push("a", 0, vec![2.0]);
    }

    #[test]
    fn reports_match_harness_conventions() {
        let rows = sample_rows(0..6);
        let report = rows.variability_report("a");
        assert_eq!(report.per_run.len(), 6);
        let direct = VariabilityReport::from_comparisons(&rows.comparisons("a"));
        assert_eq!(report.vermv, direct.vermv);
        let s = rows.run_summary("b", 0);
        assert_eq!(s.runs, 6);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn exact_stats_merge_is_partition_invariant() {
        let full = ExactStats::from_rows(&sample_rows(0..50));
        for cuts in [vec![0, 50], vec![0, 13, 50], vec![0, 1, 2, 49, 50]] {
            let mut merged = ExactStats::default();
            for w in cuts.windows(2) {
                merged.merge_from(&ExactStats::from_rows(&sample_rows(w[0]..w[1])));
            }
            assert_eq!(merged.fingerprint(), full.fingerprint());
            let cell = merged.cell("a").unwrap();
            assert_eq!(cell.count, 50);
        }
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = ExactStats::from_rows(&sample_rows(0..5));
        let b = ExactStats::from_rows(&sample_rows(0..6));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
