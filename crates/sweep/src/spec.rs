//! Sweep specifications and shard manifests.
//!
//! A [`SweepSpec`] is the *semantic* identity of a sweep: which
//! experiment binary, how many runs, and every flag that affects the
//! numbers it produces. Scheduling-only knobs (`--threads`,
//! `--run-batch`, `--trace`, `--profile`, and the shard-protocol flags
//! themselves) are deliberately **not** part of a spec — results are
//! bitwise invariant to them, so two queries differing only there must
//! hash to the same store entry.
//!
//! The spec's canonical JSON (keys sorted) feeds an FNV-1a 64-bit hash;
//! that hex digest names the sweep's directory in the results store and
//! appears in every shard file so stale results are never merged.
//!
//! [`shard_assignments`] turns `(spec, shard_count)` into a manifest of
//! `(shard_id, base_seed, run_range)` rows. Boundaries come from
//! [`fpna_core::executor::fixed_chunks`] — a pure function of
//! `(runs, shards)` — and each run's RNG seed is already index-keyed
//! inside the experiments (`derive_seed(base_seed, run_index)`), so the
//! work a run does is independent of which shard executes it. That is
//! the whole trick behind byte-identical merges.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::ops::Range;

use crate::json::{self, Value};

/// Identity of one sweep: experiment name, run count, and every
/// result-affecting argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Experiment (binary) name, e.g. `"table5"`.
    pub experiment: String,
    /// Total number of runs the full sweep performs.
    pub runs: usize,
    /// Result-affecting flags, keyed by long-option name without the
    /// leading `--`. Value-less flags store an empty string.
    pub args: BTreeMap<String, String>,
}

impl SweepSpec {
    /// Start a spec for `experiment` with `runs` total runs.
    pub fn new(experiment: impl Into<String>, runs: usize) -> Self {
        SweepSpec {
            experiment: experiment.into(),
            runs,
            args: BTreeMap::new(),
        }
    }

    /// Record a valued flag (`--key value`). Values go through
    /// `Display`, so sizes resolved from `--paper-scale` are stored as
    /// concrete numbers — specs never depend on how a size was asked
    /// for, only on what it resolved to.
    pub fn arg(mut self, key: &str, value: impl Display) -> Self {
        self.args.insert(key.to_string(), value.to_string());
        self
    }

    /// Record a value-less flag (`--key`).
    pub fn flag(mut self, key: &str) -> Self {
        self.args.insert(key.to_string(), String::new());
        self
    }

    /// The experiment's base RNG seed — by convention the `seed` arg,
    /// parsed as `u64`; 0 when absent. Manifest rows expose this so a
    /// remote machine can verify it is executing the sweep it thinks
    /// it is.
    pub fn base_seed(&self) -> u64 {
        self.args
            .get("seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// Canonical JSON encoding: keys sorted (a `BTreeMap` iterates
    /// sorted already), no whitespace. Equal specs produce equal
    /// bytes; this is what gets hashed and embedded in shard files.
    pub fn canonical_json(&self) -> String {
        self.to_value().to_json()
    }

    fn to_value(&self) -> Value {
        let args = self
            .args
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        Value::Obj(vec![
            ("experiment".into(), Value::Str(self.experiment.clone())),
            ("runs".into(), Value::Num(self.runs as f64)),
            ("args".into(), Value::Obj(args)),
        ])
    }

    /// Content hash of the canonical JSON: FNV-1a 64, 16 lowercase hex
    /// digits. Names the sweep's directory under the results store.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_json().as_bytes()))
    }

    /// Reconstruct the command-line argument vector (excluding the
    /// binary name) that reproduces this spec: `--runs N` followed by
    /// each recorded flag in sorted-key order.
    pub fn argv(&self) -> Vec<String> {
        let mut out = vec!["--runs".to_string(), self.runs.to_string()];
        for (k, v) in &self.args {
            if k == "runs" {
                continue;
            }
            out.push(format!("--{k}"));
            if !v.is_empty() {
                out.push(v.clone());
            }
        }
        out
    }

    /// Parse a spec back from its JSON encoding (canonical or not —
    /// key order and whitespace are irrelevant on input).
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        Self::from_value(&v)
    }

    /// Parse a spec from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let experiment = v
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("spec missing \"experiment\"")?
            .to_string();
        let runs = v
            .get("runs")
            .and_then(Value::as_usize)
            .ok_or("spec missing \"runs\"")?;
        let mut args = BTreeMap::new();
        for (k, val) in v
            .get("args")
            .and_then(Value::as_obj)
            .ok_or("spec missing \"args\"")?
        {
            let s = val.as_str().ok_or("spec arg values must be strings")?;
            args.insert(k.clone(), s.to_string());
        }
        Ok(SweepSpec {
            experiment,
            runs,
            args,
        })
    }
}

/// FNV-1a, 64-bit. Stable, dependency-free, and plenty for
/// content-addressing a handful of sweep specs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One row of a sweep manifest: which global runs a shard owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Shard index, `0..shards`.
    pub shard_id: usize,
    /// The sweep's base seed (identical for every shard; per-run seeds
    /// are derived from it by global run index, never by shard).
    pub base_seed: u64,
    /// Global run indices this shard computes.
    pub run_range: Range<usize>,
}

/// Partition a spec's runs across `shards` shards.
///
/// A pure function of `(spec.runs, shards)` via
/// [`fpna_core::executor::fixed_chunks`]: nearly-equal contiguous
/// ranges, earlier shards taking the remainder. Shards beyond
/// `spec.runs` get empty ranges (they still appear in the manifest so
/// shard ids are dense).
pub fn shard_assignments(spec: &SweepSpec, shards: usize) -> Vec<ShardAssignment> {
    assert!(shards > 0, "need at least one shard");
    let chunks = fpna_core::executor::fixed_chunks(spec.runs, shards);
    let base_seed = spec.base_seed();
    (0..shards)
        .map(|shard_id| ShardAssignment {
            shard_id,
            base_seed,
            run_range: chunks.get(shard_id).cloned().unwrap_or({
                let end = spec.runs;
                end..end
            }),
        })
        .collect()
}

/// Render the manifest for `(spec, shards)` as a JSON document: the
/// spec, its hash, and one row per shard. This is the file a fleet
/// operator distributes to machines; each machine runs the experiment
/// binary with the shard flags from its row and ships the resulting
/// shard file back into one store directory.
pub fn manifest_json(spec: &SweepSpec, shards: usize) -> String {
    let rows = shard_assignments(spec, shards)
        .into_iter()
        .map(|a| {
            Value::Obj(vec![
                ("shard_id".into(), Value::Num(a.shard_id as f64)),
                ("base_seed".into(), Value::Num(a.base_seed as f64)),
                ("run_start".into(), Value::Num(a.run_range.start as f64)),
                ("run_end".into(), Value::Num(a.run_range.end as f64)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str("fpna-sweep-manifest-v1".into())),
        ("spec_hash".into(), Value::Str(spec.hash_hex())),
        ("spec".into(), spec.to_value()),
        ("shards".into(), Value::Arr(rows)),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new("table5", 40).arg("seed", 55).arg("gpu", "h100")
    }

    #[test]
    fn canonical_json_is_key_order_independent() {
        let a = SweepSpec::new("x", 3).arg("b", 2).arg("a", 1);
        let b = SweepSpec::new("x", 3).arg("a", 1).arg("b", 2);
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.hash_hex(), b.hash_hex());
    }

    #[test]
    fn hash_distinguishes_result_affecting_changes() {
        let base = spec();
        assert_ne!(base.hash_hex(), base.clone().arg("seed", 56).hash_hex());
        assert_ne!(base.hash_hex(), SweepSpec { runs: 41, ..base.clone() }.hash_hex());
        assert_ne!(
            base.hash_hex(),
            SweepSpec::new("fig1", 40).arg("seed", 55).arg("gpu", "h100").hash_hex()
        );
        // hash is stable across processes and time: pin one value
        assert_eq!(spec().hash_hex(), spec().hash_hex());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let back = SweepSpec::from_json_str(&s.canonical_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.base_seed(), 55);
    }

    #[test]
    fn argv_reproduces_flags() {
        let s = SweepSpec::new("t", 7).arg("seed", 9).flag("link-stats");
        assert_eq!(
            s.argv(),
            vec!["--runs", "7", "--link-stats", "--seed", "9"]
        );
    }

    #[test]
    fn assignments_partition_runs_exactly() {
        for shards in [1usize, 2, 3, 7, 40, 41] {
            let rows = shard_assignments(&spec(), shards);
            assert_eq!(rows.len(), shards);
            let mut next = 0usize;
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.shard_id, i);
                assert_eq!(row.base_seed, 55);
                assert_eq!(row.run_range.start, next.min(40));
                next = row.run_range.end;
            }
            assert_eq!(rows.last().unwrap().run_range.end, 40);
        }
    }

    #[test]
    fn manifest_lists_every_shard() {
        let text = manifest_json(&spec(), 3);
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("spec_hash").unwrap().as_str().unwrap(), spec().hash_hex());
        let rows = v.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("run_start").unwrap().as_usize(), Some(0));
        assert_eq!(rows[2].get("run_end").unwrap().as_usize(), Some(40));
    }
}
