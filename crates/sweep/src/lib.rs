//! Fleet-scale sweep coordination for the fpna experiment suite.
//!
//! The suite's experiments are already bitwise deterministic at any
//! thread count because every run's seed is keyed by its **global run
//! index** (`derive_seed(base_seed, run)`), never by scheduling. This
//! crate lifts that property one level up, from threads to *processes
//! and machines*:
//!
//! * [`spec`] — a [`spec::SweepSpec`] captures a sweep's semantic
//!   identity (experiment, runs, result-affecting flags) and hashes it
//!   for content addressing; [`spec::shard_assignments`] partitions
//!   the runs as a pure function of `(runs, shards)`.
//! * [`rows`] — the shardable result model: per-(cell, global-run)
//!   metric rows whose merge in index order is bitwise the
//!   single-process row set, plus [`rows::ExactStats`] built on
//!   `fpna-summation`'s [`fpna_summation::ExactAccumulator`] for
//!   partition-invariant cross-shard statistics.
//! * [`store`] — the resumable, content-addressed results store under
//!   `target/sweeps/<spec-hash>/`: self-describing shard files,
//!   atomic writes, stale-partition detection, and a cached merged
//!   report.
//! * [`mode`] — the four-mode protocol experiment binaries speak
//!   (`--emit-spec`, shard, merge, full), keeping each binary the
//!   single source of truth for its own spec.
//! * [`coordinator`] — spawns shard processes (bounded, resumable),
//!   merges via the binary itself, and caches the report; the `sweep`
//!   binary is its CLI.
//! * [`service`] — ref-counted in-process shard sharing for drivers
//!   that issue many overlapping sweep queries from one process.
//!
//! The end-to-end contract, enforced by tests at every layer: a
//! sharded-and-merged sweep prints **byte-identical** output to the
//! same experiment run in a single process.

#![warn(missing_docs)]

pub mod coordinator;
pub mod json;
pub mod mode;
pub mod rows;
pub mod service;
pub mod spec;
pub mod store;

pub use coordinator::{Coordinator, RunOutcome};
pub use mode::SweepMode;
pub use rows::{ExactStats, SweepRows};
pub use service::{ShardHandle, SweepService};
pub use spec::{shard_assignments, ShardAssignment, SweepSpec};
pub use store::{GcOutcome, StoreEntry, SweepStore};
