//! `sweep_selftest` — a minimal, protocol-complete experiment.
//!
//! Exists so the sharding protocol can be exercised end to end (spawn,
//! shard files, resume, merge, cache) in seconds inside `cargo test`
//! and CI, without paying for a real experiment. Per run it sums a
//! seeded array two ways and reports run statistics plus an exact
//! (error-free) total — enough structure that any merge mistake, seed
//! impurity, or lossy serialization shows up as changed report bytes.
//!
//! Flags: `--runs N` (default 12), `--len L` (default 1000), `--seed S`
//! (default 7), plus the standard sweep protocol flags
//! (`--emit-spec` / `--shard-id …` / `--from-shards …`).

use fpna_core::harness::RunSummary;
use fpna_core::rng::{derive_seed, SplitMix64};
use fpna_summation::{kahan_sum, serial_sum, ExactAccumulator};
use fpna_sweep::mode::SweepMode;
use fpna_sweep::rows::{f64_to_hex, SweepRows};
use fpna_sweep::spec::SweepSpec;

fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|e| panic!("{flag} {v:?}: {e}")))
        .unwrap_or(default)
}

fn compute(spec: &SweepSpec, range: std::ops::Range<usize>, len: usize, seed: u64) -> SweepRows {
    let mut rows = SweepRows::new();
    for run in range {
        // Seed by GLOBAL run index: the work at run r is identical no
        // matter which process computes it.
        let mut rng = SplitMix64::new(derive_seed(seed, run as u64));
        let xs: Vec<f64> = (0..len).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        rows.push("sums", run, vec![serial_sum(&xs), kahan_sum(&xs), xs[0]]);
    }
    debug_assert!(rows.is_empty() || rows.cell_count() == 1, "{spec:?}");
    rows
}

fn report(spec: &SweepSpec, rows: &SweepRows, len: usize, seed: u64) {
    println!(
        "sweep selftest: runs={} len={len} seed={seed}",
        spec.runs
    );
    let mut exact = ExactAccumulator::new();
    for v in rows.column("sums", 0) {
        exact.add(v);
    }
    let total = exact.round();
    println!("exact total of serial sums: {} ({total:.17e})", f64_to_hex(total));
    for (label, col) in [("serial", 0), ("kahan", 1), ("first", 2)] {
        let s: RunSummary = rows.run_summary("sums", col);
        println!(
            "{label}: runs={} mean={} min={} max={} std={}",
            s.runs,
            f64_to_hex(s.mean),
            f64_to_hex(s.min),
            f64_to_hex(s.max),
            f64_to_hex(s.std_dev),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = SweepMode::from_args_or_exit(&args);
    let runs = arg_u64(&args, "--runs", 12) as usize;
    let len = arg_u64(&args, "--len", 1000) as usize;
    let seed = arg_u64(&args, "--seed", 7);

    let spec = SweepSpec::new("sweep_selftest", runs)
        .arg("len", len)
        .arg("seed", seed);
    if mode.emit_spec(&spec) {
        return;
    }
    let rows = match mode.compute_range(spec.runs) {
        Some(range) => compute(&spec, range, len, seed),
        None => mode.load_rows_or_exit(&spec),
    };
    if mode.finish_shard_or_exit(&spec, &rows) {
        return;
    }
    report(&spec, &rows, len, seed);
}
