//! `sweep` — the fleet-scale experiment coordinator.
//!
//! ```text
//! sweep --bin <experiment> [--shards N] [--jobs J] [--store DIR]
//!       [--bin-dir DIR] [--refresh] [--no-cache] [--manifest PATH]
//!       -- <experiment args...>
//! ```
//!
//! Shards the experiment's runs across OS processes, resumes from any
//! shard files already in the store, merges in shard-index order, and
//! prints a report **byte-identical** to running the experiment binary
//! directly with the same arguments. Progress goes to stderr; stdout
//! carries only the merged report.
//!
//! `--manifest PATH` writes the `(shard_id, base_seed, run_range)`
//! manifest JSON (or prints it for `-`) instead of running — the
//! hand-off format for splitting one sweep across machines.
//!
//! Store hygiene (no `--bin` needed):
//!
//! ```text
//! sweep --list [--store DIR]
//! sweep --gc [--max-age AGE] [--max-bytes SIZE] [--store DIR]
//! ```
//!
//! `--list` prints one line per stored sweep (spec hash, experiment,
//! runs, shard files, completeness, cached report, size, age).
//! `--gc` removes entries older than `--max-age` (suffixes `s`/`m`/
//! `h`/`d`, default seconds), then — if the store still exceeds
//! `--max-bytes` (suffixes `k`/`m`/`g`) — evicts incomplete entries
//! oldest-first, then complete ones. A spec-complete shard set newer
//! than the age cutoff is only ever removed by the byte budget.

use std::process::exit;
use std::time::{Duration, SystemTime};

use fpna_sweep::coordinator::Coordinator;
use fpna_sweep::store::SweepStore;

fn usage() -> ! {
    eprintln!(
        "usage: sweep --bin <experiment> [--shards N] [--jobs J] [--store DIR] \
         [--bin-dir DIR] [--refresh] [--no-cache] [--manifest PATH] -- <experiment args...>\n\
         \x20      sweep --list [--store DIR]\n\
         \x20      sweep --gc [--max-age AGE] [--max-bytes SIZE] [--store DIR]"
    );
    exit(2)
}

/// Parse a duration: plain seconds, or a number with an `s`/`m`/`h`/`d`
/// suffix.
fn parse_age(s: &str) -> Result<Duration, String> {
    let (num, scale) = match s.char_indices().last() {
        Some((i, c)) if c.is_ascii_alphabetic() => {
            let scale = match c.to_ascii_lowercase() {
                's' => 1u64,
                'm' => 60,
                'h' => 3600,
                'd' => 86_400,
                other => return Err(format!("unknown age suffix {other:?}")),
            };
            (&s[..i], scale)
        }
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| Duration::from_secs(n * scale))
        .map_err(|e| format!("bad age {s:?}: {e}"))
}

/// Parse a size: plain bytes, or a number with a `k`/`m`/`g` suffix.
fn parse_size(s: &str) -> Result<u64, String> {
    let (num, scale) = match s.char_indices().last() {
        Some((i, c)) if c.is_ascii_alphabetic() => {
            let scale = match c.to_ascii_lowercase() {
                'k' => 1u64 << 10,
                'm' => 1 << 20,
                'g' => 1 << 30,
                other => return Err(format!("unknown size suffix {other:?}")),
            };
            (&s[..i], scale)
        }
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| n * scale)
        .map_err(|e| format!("bad size {s:?}: {e}"))
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn human_age(newest: SystemTime, now: SystemTime) -> String {
    let secs = now.duration_since(newest).map(|d| d.as_secs()).unwrap_or(0);
    if secs >= 86_400 {
        format!("{}d", secs / 86_400)
    } else if secs >= 3600 {
        format!("{}h", secs / 3600)
    } else if secs >= 60 {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

fn list_store(store: &SweepStore) -> i32 {
    let entries = match store.list_entries() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", store.root().display());
            return 1;
        }
    };
    if entries.is_empty() {
        println!("store {} is empty", store.root().display());
        return 0;
    }
    let now = SystemTime::now();
    println!(
        "{:<16}  {:<12} {:>6} {:>6}  {:<10} {:>9} {:>5}  report",
        "spec", "experiment", "runs", "shards", "state", "size", "age"
    );
    for e in &entries {
        let (exp, runs) = match &e.spec {
            Some(s) => (s.experiment.clone(), s.runs.to_string()),
            None => ("?".into(), "?".into()),
        };
        println!(
            "{:<16}  {:<12} {:>6} {:>6}  {:<10} {:>9} {:>5}  {}",
            e.hash,
            exp,
            runs,
            e.shard_count,
            if e.complete { "complete" } else { "incomplete" },
            human_bytes(e.total_bytes),
            human_age(e.newest_mtime, now),
            if e.has_report { "yes" } else { "no" }
        );
    }
    let total: u64 = entries.iter().map(|e| e.total_bytes).sum();
    println!("{} entries, {}", entries.len(), human_bytes(total));
    0
}

fn gc_store(store: &SweepStore, max_age: Option<Duration>, max_bytes: Option<u64>) -> i32 {
    if max_age.is_none() && max_bytes.is_none() {
        eprintln!("error: --gc needs --max-age and/or --max-bytes");
        return 2;
    }
    match store.gc(max_age, max_bytes, SystemTime::now()) {
        Ok(out) => {
            for hash in &out.removed {
                eprintln!("removed {hash}");
            }
            println!(
                "gc: removed {} entries ({}), kept {} ({})",
                out.removed.len(),
                human_bytes(out.freed_bytes),
                out.kept,
                human_bytes(out.kept_bytes)
            );
            0
        }
        Err(e) => {
            eprintln!("error: gc failed: {e}");
            1
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (own, user_args) = match argv.iter().position(|a| a == "--") {
        Some(i) => (argv[..i].to_vec(), argv[i + 1..].to_vec()),
        None => (argv, Vec::new()),
    };

    let mut bin: Option<String> = None;
    let mut shards = 2usize;
    let mut jobs: Option<usize> = None;
    let mut store: Option<String> = None;
    let mut bin_dir: Option<String> = None;
    let mut refresh = false;
    let mut no_cache = false;
    let mut manifest: Option<String> = None;
    let mut list = false;
    let mut gc = false;
    let mut max_age: Option<Duration> = None;
    let mut max_bytes: Option<u64> = None;

    let mut it = own.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--bin" => bin = Some(value()),
            "--shards" => {
                shards = value().parse().unwrap_or_else(|e| {
                    eprintln!("error: --shards: {e}");
                    usage()
                })
            }
            "--jobs" => {
                jobs = Some(value().parse().unwrap_or_else(|e| {
                    eprintln!("error: --jobs: {e}");
                    usage()
                }))
            }
            "--store" => store = Some(value()),
            "--bin-dir" => bin_dir = Some(value()),
            "--refresh" => refresh = true,
            "--no-cache" => no_cache = true,
            "--manifest" => manifest = Some(value()),
            "--list" => list = true,
            "--gc" => gc = true,
            "--max-age" => {
                max_age = Some(parse_age(&value()).unwrap_or_else(|e| {
                    eprintln!("error: --max-age: {e}");
                    usage()
                }))
            }
            "--max-bytes" => {
                max_bytes = Some(parse_size(&value()).unwrap_or_else(|e| {
                    eprintln!("error: --max-bytes: {e}");
                    usage()
                }))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other} (experiment args go after --)");
                usage()
            }
        }
    }
    if list || gc {
        if bin.is_some() {
            eprintln!("error: --list/--gc do not take --bin");
            usage()
        }
        let store = store.map(SweepStore::new).unwrap_or_else(SweepStore::default_root);
        let code = if list {
            list_store(&store)
        } else {
            gc_store(&store, max_age, max_bytes)
        };
        exit(code)
    }
    if max_age.is_some() || max_bytes.is_some() {
        eprintln!("error: --max-age/--max-bytes only apply to --gc");
        usage()
    }
    let Some(bin) = bin else {
        eprintln!("error: --bin is required");
        usage()
    };
    if shards == 0 {
        eprintln!("error: --shards must be at least 1");
        usage()
    }

    let mut coordinator = Coordinator::new(bin, user_args, shards);
    if let Some(j) = jobs {
        coordinator.jobs = j.max(1);
    }
    if let Some(dir) = store {
        coordinator.store = SweepStore::new(dir);
    }
    coordinator.bin_dir = bin_dir.map(Into::into);
    coordinator.refresh = refresh;
    coordinator.no_cache = no_cache;

    if let Some(path) = manifest {
        let text = coordinator.manifest().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        if path == "-" {
            println!("{text}");
        } else if let Err(e) =
            fpna_sweep::store::write_atomic(std::path::Path::new(&path), text.as_bytes())
        {
            eprintln!("error: cannot write manifest: {e}");
            exit(1)
        }
        return;
    }

    match coordinator.run() {
        Ok(outcome) => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&outcome.report)
                .expect("writing report to stdout");
            exit(outcome.merge_status);
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1)
        }
    }
}
