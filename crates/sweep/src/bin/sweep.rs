//! `sweep` — the fleet-scale experiment coordinator.
//!
//! ```text
//! sweep --bin <experiment> [--shards N] [--jobs J] [--store DIR]
//!       [--bin-dir DIR] [--refresh] [--no-cache] [--manifest PATH]
//!       -- <experiment args...>
//! ```
//!
//! Shards the experiment's runs across OS processes, resumes from any
//! shard files already in the store, merges in shard-index order, and
//! prints a report **byte-identical** to running the experiment binary
//! directly with the same arguments. Progress goes to stderr; stdout
//! carries only the merged report.
//!
//! `--manifest PATH` writes the `(shard_id, base_seed, run_range)`
//! manifest JSON (or prints it for `-`) instead of running — the
//! hand-off format for splitting one sweep across machines.

use std::process::exit;

use fpna_sweep::coordinator::Coordinator;
use fpna_sweep::store::SweepStore;

fn usage() -> ! {
    eprintln!(
        "usage: sweep --bin <experiment> [--shards N] [--jobs J] [--store DIR] \
         [--bin-dir DIR] [--refresh] [--no-cache] [--manifest PATH] -- <experiment args...>"
    );
    exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (own, user_args) = match argv.iter().position(|a| a == "--") {
        Some(i) => (argv[..i].to_vec(), argv[i + 1..].to_vec()),
        None => (argv, Vec::new()),
    };

    let mut bin: Option<String> = None;
    let mut shards = 2usize;
    let mut jobs: Option<usize> = None;
    let mut store: Option<String> = None;
    let mut bin_dir: Option<String> = None;
    let mut refresh = false;
    let mut no_cache = false;
    let mut manifest: Option<String> = None;

    let mut it = own.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--bin" => bin = Some(value()),
            "--shards" => {
                shards = value().parse().unwrap_or_else(|e| {
                    eprintln!("error: --shards: {e}");
                    usage()
                })
            }
            "--jobs" => {
                jobs = Some(value().parse().unwrap_or_else(|e| {
                    eprintln!("error: --jobs: {e}");
                    usage()
                }))
            }
            "--store" => store = Some(value()),
            "--bin-dir" => bin_dir = Some(value()),
            "--refresh" => refresh = true,
            "--no-cache" => no_cache = true,
            "--manifest" => manifest = Some(value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other} (experiment args go after --)");
                usage()
            }
        }
    }
    let Some(bin) = bin else {
        eprintln!("error: --bin is required");
        usage()
    };
    if shards == 0 {
        eprintln!("error: --shards must be at least 1");
        usage()
    }

    let mut coordinator = Coordinator::new(bin, user_args, shards);
    if let Some(j) = jobs {
        coordinator.jobs = j.max(1);
    }
    if let Some(dir) = store {
        coordinator.store = SweepStore::new(dir);
    }
    coordinator.bin_dir = bin_dir.map(Into::into);
    coordinator.refresh = refresh;
    coordinator.no_cache = no_cache;

    if let Some(path) = manifest {
        let text = coordinator.manifest().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        if path == "-" {
            println!("{text}");
        } else if let Err(e) =
            fpna_sweep::store::write_atomic(std::path::Path::new(&path), text.as_bytes())
        {
            eprintln!("error: cannot write manifest: {e}");
            exit(1)
        }
        return;
    }

    match coordinator.run() {
        Ok(outcome) => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&outcome.report)
                .expect("writing report to stdout");
            exit(outcome.merge_status);
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1)
        }
    }
}
