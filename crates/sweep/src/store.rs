//! Content-addressed, resumable results store.
//!
//! Layout: `<root>/<spec-hash>/shard-<id>.json` plus a cached
//! `<root>/<spec-hash>/report.txt` holding the merged report bytes.
//! The root defaults to `target/sweeps`. Because the directory name is
//! the spec's content hash, re-running the same query finds its
//! results without recomputing, and *any* result-affecting flag change
//! lands in a fresh directory.
//!
//! Each shard file is self-describing: it embeds the full spec, the
//! spec hash, its shard id, and its global run range, so a file copied
//! from another machine can be validated before it is merged.
//! [`SweepStore::load_merged`] refuses to merge anything that is not
//! an exact partition of `0..runs` — stale files from a run with a
//! different shard count fail loudly instead of silently double
//! counting.
//!
//! Writes are atomic (`.tmp.<pid>` then rename), so a shard killed
//! mid-write leaves no partial file and a concurrent reader never sees
//! one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use fpna_summation::ExactAccumulator;

use crate::json::{self, Value};
use crate::rows::{f64_from_hex, f64_to_hex, CellStats, ExactStats, SweepRows};
use crate::spec::SweepSpec;

/// Schema tag written into every shard file.
pub const SHARD_SCHEMA: &str = "fpna-sweep-shard-v1";

/// A decoded shard result file.
#[derive(Debug, Clone)]
pub struct ShardFile {
    /// Hash of the spec the shard was computed for.
    pub spec_hash: String,
    /// The spec itself, as recorded by the producing process.
    pub spec: SweepSpec,
    /// Shard index.
    pub shard_id: usize,
    /// Global run range `[run_start, run_end)` the shard computed.
    pub run_range: std::ops::Range<usize>,
    /// The shard's rows.
    pub rows: SweepRows,
    /// Exact per-cell column sums over the shard's rows.
    pub stats: ExactStats,
}

/// Handle on a results store root directory.
#[derive(Debug, Clone)]
pub struct SweepStore {
    root: PathBuf,
}

impl SweepStore {
    /// A store rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SweepStore { root: root.into() }
    }

    /// The conventional in-repo store, `target/sweeps`.
    pub fn default_root() -> Self {
        SweepStore::new("target/sweeps")
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding everything for `spec`.
    pub fn sweep_dir(&self, spec: &SweepSpec) -> PathBuf {
        self.root.join(spec.hash_hex())
    }

    /// Path of shard `shard_id`'s result file for `spec`.
    pub fn shard_path(&self, spec: &SweepSpec, shard_id: usize) -> PathBuf {
        self.sweep_dir(spec).join(format!("shard-{shard_id}.json"))
    }

    /// Path of the cached merged report for `spec`.
    pub fn report_path(&self, spec: &SweepSpec) -> PathBuf {
        self.sweep_dir(spec).join("report.txt")
    }

    /// Encode and atomically write one shard's results. Returns the
    /// final path.
    pub fn write_shard(
        &self,
        spec: &SweepSpec,
        shard_id: usize,
        run_range: std::ops::Range<usize>,
        rows: &SweepRows,
    ) -> io::Result<PathBuf> {
        let path = self.shard_path(spec, shard_id);
        let text = encode_shard(spec, shard_id, run_range, rows);
        write_atomic(&path, text.as_bytes())?;
        Ok(path)
    }

    /// Read and validate one shard file for `(spec, shard_id)`.
    ///
    /// `Ok(None)` means "not usable — compute it": the file is absent,
    /// unreadable, malformed, or describes a different spec or a
    /// different run range than `expected_range`. Only an exact match
    /// is returned, so a store shared between runs with different
    /// shard counts re-computes rather than mis-merges.
    pub fn read_valid_shard(
        &self,
        spec: &SweepSpec,
        shard_id: usize,
        expected_range: std::ops::Range<usize>,
    ) -> Option<ShardFile> {
        let path = self.shard_path(spec, shard_id);
        let text = fs::read_to_string(&path).ok()?;
        let shard = decode_shard(&text).ok()?;
        let ok = shard.spec_hash == spec.hash_hex()
            && shard.shard_id == shard_id
            && shard.run_range == expected_range;
        ok.then_some(shard)
    }

    /// Load **all** shard files under `spec`'s directory and merge
    /// them, in shard-index order, into one row set and one exact
    /// statistic set.
    ///
    /// Fails unless the files form an exact partition of
    /// `0..spec.runs`: wrong hash, overlapping or gapped ranges, and
    /// duplicate shard ids are all hard errors. (Empty-range shards —
    /// produced when `shards > runs` — are accepted and contribute
    /// nothing.)
    pub fn load_merged(&self, spec: &SweepSpec) -> Result<(SweepRows, ExactStats), String> {
        let dir = self.sweep_dir(spec);
        let mut shards: Vec<ShardFile> = Vec::new();
        let entries = fs::read_dir(&dir)
            .map_err(|e| format!("no results for spec {}: {e}", spec.hash_hex()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !(name.starts_with("shard-") && name.ends_with(".json")) {
                continue;
            }
            let text = fs::read_to_string(entry.path())
                .map_err(|e| format!("{name}: {e}"))?;
            let shard = decode_shard(&text).map_err(|e| format!("{name}: {e}"))?;
            if shard.spec_hash != spec.hash_hex() {
                return Err(format!(
                    "{name}: spec hash {} does not match {} — stale or foreign file in store",
                    shard.spec_hash,
                    spec.hash_hex()
                ));
            }
            shards.push(shard);
        }
        shards.sort_by_key(|s| s.shard_id);
        if shards.windows(2).any(|w| w[0].shard_id == w[1].shard_id) {
            return Err("duplicate shard ids in store".into());
        }

        // The non-empty ranges must tile 0..runs exactly.
        let mut covered = 0usize;
        let mut ranges: Vec<_> = shards
            .iter()
            .filter(|s| !s.run_range.is_empty())
            .map(|s| s.run_range.clone())
            .collect();
        ranges.sort_by_key(|r| r.start);
        for r in &ranges {
            if r.start != covered {
                return Err(format!(
                    "shard ranges do not tile 0..{}: gap or overlap at run {} (next range starts at {}) — \
                     remove stale shard files or re-run with --refresh",
                    spec.runs, covered, r.start
                ));
            }
            covered = r.end;
        }
        if covered != spec.runs {
            return Err(format!(
                "shard ranges cover only 0..{covered} of 0..{} — missing shards",
                spec.runs
            ));
        }

        let mut rows = SweepRows::new();
        let mut stats = ExactStats::default();
        for shard in shards {
            rows.absorb(shard.rows)?;
            stats.merge_from(&shard.stats);
        }
        Ok((rows, stats))
    }

    /// Cache the merged report bytes for `spec` (atomic write).
    pub fn write_report(&self, spec: &SweepSpec, report: &[u8]) -> io::Result<PathBuf> {
        let path = self.report_path(spec);
        write_atomic(&path, report)?;
        Ok(path)
    }

    /// The cached merged report for `spec`, if one exists.
    pub fn read_report(&self, spec: &SweepSpec) -> Option<Vec<u8>> {
        fs::read(self.report_path(spec)).ok()
    }

    /// Delete everything stored for `spec` (the `--refresh` escape
    /// hatch). Missing directory is fine.
    pub fn clear(&self, spec: &SweepSpec) -> io::Result<()> {
        match fs::remove_dir_all(self.sweep_dir(spec)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Remove shard files that do not belong to the given partition —
    /// run before merging when the shard count changed, so leftovers
    /// from an earlier partition cannot fail the tiling check.
    pub fn remove_stale_shards(
        &self,
        spec: &SweepSpec,
        assignments: &[crate::spec::ShardAssignment],
    ) -> io::Result<()> {
        let dir = self.sweep_dir(spec);
        let entries = match fs::read_dir(&dir) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            other => other?,
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if !(name.starts_with("shard-") && name.ends_with(".json")) {
                continue;
            }
            let keep = fs::read_to_string(entry.path())
                .ok()
                .and_then(|text| decode_shard(&text).ok())
                .is_some_and(|shard| {
                    assignments.iter().any(|a| {
                        a.shard_id == shard.shard_id
                            && a.run_range == shard.run_range
                            && shard.spec_hash == spec.hash_hex()
                    })
                });
            if !keep {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

/// One sweep's entry in the store, as surfaced by
/// [`SweepStore::list_entries`] (and consumed by `sweep --list` /
/// `sweep --gc`).
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Directory name under the root — the spec's content hash.
    pub hash: String,
    /// The spec, decoded from the first readable shard file. `None`
    /// when the entry holds no decodable shard (e.g. report-only or
    /// corrupt).
    pub spec: Option<SweepSpec>,
    /// Decodable shard files present.
    pub shard_count: usize,
    /// Total bytes of every file in the entry's directory.
    pub total_bytes: u64,
    /// Newest modification time over the entry's files (directory
    /// mtime when empty).
    pub newest_mtime: SystemTime,
    /// `true` when the decodable shards' non-empty run ranges exactly
    /// tile `0..spec.runs` for a consistent spec hash — i.e. the entry
    /// merges cleanly and re-running this sweep costs nothing.
    pub complete: bool,
    /// `true` when a cached merged report is present.
    pub has_report: bool,
}

/// What one [`SweepStore::gc`] pass removed and kept.
#[derive(Debug, Clone, Default)]
pub struct GcOutcome {
    /// Hashes of the entries deleted, in deletion order.
    pub removed: Vec<String>,
    /// Bytes freed by those deletions.
    pub freed_bytes: u64,
    /// Entries (and bytes) surviving the pass.
    pub kept: usize,
    /// Total bytes still stored after the pass.
    pub kept_bytes: u64,
}

impl SweepStore {
    /// Scan the store and describe every sweep entry, newest first.
    /// A missing root is an empty store, not an error; non-directory
    /// clutter under the root is ignored.
    pub fn list_entries(&self) -> io::Result<Vec<StoreEntry>> {
        let entries = match fs::read_dir(&self.root) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            other => other?,
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let hash = entry.file_name().to_string_lossy().into_owned();
            out.push(self.scan_entry(&entry.path(), hash)?);
        }
        out.sort_by(|a, b| b.newest_mtime.cmp(&a.newest_mtime).then(a.hash.cmp(&b.hash)));
        Ok(out)
    }

    fn scan_entry(&self, dir: &Path, hash: String) -> io::Result<StoreEntry> {
        let mut total_bytes = 0u64;
        let mut newest_mtime = fs::metadata(dir)?.modified()?;
        let mut has_report = false;
        let mut spec: Option<SweepSpec> = None;
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
        let mut shard_count = 0usize;
        let mut all_match = true;
        for file in fs::read_dir(dir)? {
            let file = file?;
            let meta = file.metadata()?;
            if !meta.is_file() {
                continue;
            }
            total_bytes += meta.len();
            if let Ok(mtime) = meta.modified() {
                newest_mtime = newest_mtime.max(mtime);
            }
            let name = file.file_name();
            let name = name.to_string_lossy();
            if name == "report.txt" {
                has_report = true;
            } else if name.starts_with("shard-") && name.ends_with(".json") {
                match fs::read_to_string(file.path())
                    .ok()
                    .and_then(|text| decode_shard(&text).ok())
                {
                    Some(shard) => {
                        shard_count += 1;
                        all_match &= shard.spec_hash == hash;
                        if !shard.run_range.is_empty() {
                            ranges.push(shard.run_range.clone());
                        }
                        spec.get_or_insert(shard.spec);
                    }
                    None => all_match = false,
                }
            }
        }
        ranges.sort_by_key(|r| r.start);
        let complete = all_match
            && spec.as_ref().is_some_and(|s| {
                let mut covered = 0usize;
                for r in &ranges {
                    if r.start != covered {
                        return false;
                    }
                    covered = r.end;
                }
                covered == s.runs
            });
        Ok(StoreEntry {
            hash,
            spec,
            shard_count,
            total_bytes,
            newest_mtime,
            complete,
            has_report,
        })
    }

    /// Garbage-collect the store at time `now`:
    ///
    /// 1. every entry whose newest file is older than `max_age` is
    ///    removed — age is the explicit eviction cutoff;
    /// 2. if the survivors still exceed `max_bytes`, **incomplete**
    ///    entries go first (oldest first — they cannot merge anyway),
    ///    then complete entries oldest-first until under budget.
    ///
    /// A spec-complete entry newer than the age cutoff is therefore
    /// never removed unless the byte budget cannot be met without it,
    /// and with no `max_bytes` it is never removed at all.
    pub fn gc(
        &self,
        max_age: Option<Duration>,
        max_bytes: Option<u64>,
        now: SystemTime,
    ) -> io::Result<GcOutcome> {
        let entries = self.list_entries()?;
        let mut outcome = GcOutcome::default();
        let expired = |e: &StoreEntry| {
            max_age.is_some_and(|limit| {
                now.duration_since(e.newest_mtime)
                    .map(|age| age > limit)
                    .unwrap_or(false)
            })
        };
        let mut survivors: Vec<&StoreEntry> = Vec::new();
        for e in &entries {
            if expired(e) {
                self.remove_entry(e, &mut outcome)?;
            } else {
                survivors.push(e);
            }
        }
        if let Some(budget) = max_bytes {
            let mut used: u64 = survivors.iter().map(|e| e.total_bytes).sum();
            // Incomplete entries first, then complete; oldest first
            // within each class.
            survivors.sort_by(|a, b| {
                a.complete
                    .cmp(&b.complete)
                    .then(a.newest_mtime.cmp(&b.newest_mtime))
            });
            for e in survivors {
                if used <= budget {
                    break;
                }
                used -= e.total_bytes;
                self.remove_entry(e, &mut outcome)?;
            }
        }
        for e in self.list_entries()? {
            outcome.kept += 1;
            outcome.kept_bytes += e.total_bytes;
        }
        Ok(outcome)
    }

    fn remove_entry(&self, e: &StoreEntry, outcome: &mut GcOutcome) -> io::Result<()> {
        fs::remove_dir_all(self.root.join(&e.hash))?;
        outcome.removed.push(e.hash.clone());
        outcome.freed_bytes += e.total_bytes;
        Ok(())
    }
}

/// Atomically write `bytes` to `path`: parent dirs created, content
/// written to a pid-suffixed temp file, then renamed into place.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Encode one shard's results as the self-describing JSON document.
pub fn encode_shard(
    spec: &SweepSpec,
    shard_id: usize,
    run_range: std::ops::Range<usize>,
    rows: &SweepRows,
) -> String {
    let stats = ExactStats::from_rows(rows);
    let cells = rows
        .iter()
        .map(|(cell, runs)| {
            let run_idx = runs
                .keys()
                .map(|&r| Value::Num(r as f64))
                .collect::<Vec<_>>();
            let values = runs
                .values()
                .map(|v| {
                    Value::Arr(v.iter().map(|&x| Value::Str(f64_to_hex(x))).collect())
                })
                .collect::<Vec<_>>();
            (
                cell.to_string(),
                Value::Obj(vec![
                    ("runs".into(), Value::Arr(run_idx)),
                    ("values".into(), Value::Arr(values)),
                ]),
            )
        })
        .collect();
    let stat_members = stats
        .iter()
        .map(|(cell, cs)| {
            let sums = cs
                .sums
                .iter()
                .map(|acc| Value::Str(bytes_to_hex(&acc.to_wire_bytes())))
                .collect();
            (
                cell.to_string(),
                Value::Obj(vec![
                    ("count".into(), Value::Num(cs.count as f64)),
                    ("sums".into(), Value::Arr(sums)),
                ]),
            )
        })
        .collect();
    let spec_value = json::parse(&spec.canonical_json()).expect("spec JSON is valid");
    Value::Obj(vec![
        ("schema".into(), Value::Str(SHARD_SCHEMA.into())),
        ("spec_hash".into(), Value::Str(spec.hash_hex())),
        ("spec".into(), spec_value),
        ("shard_id".into(), Value::Num(shard_id as f64)),
        ("run_start".into(), Value::Num(run_range.start as f64)),
        ("run_end".into(), Value::Num(run_range.end as f64)),
        ("cells".into(), Value::Obj(cells)),
        ("stats".into(), Value::Obj(stat_members)),
    ])
    .to_json()
}

/// Decode a shard file produced by [`encode_shard`].
pub fn decode_shard(text: &str) -> Result<ShardFile, String> {
    let v = json::parse(text)?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != SHARD_SCHEMA {
        return Err(format!("unknown shard schema {schema:?}"));
    }
    let spec_hash = v
        .get("spec_hash")
        .and_then(Value::as_str)
        .ok_or("missing spec_hash")?
        .to_string();
    let spec = SweepSpec::from_value(v.get("spec").ok_or("missing spec")?)?;
    let shard_id = v
        .get("shard_id")
        .and_then(Value::as_usize)
        .ok_or("missing shard_id")?;
    let run_start = v
        .get("run_start")
        .and_then(Value::as_usize)
        .ok_or("missing run_start")?;
    let run_end = v
        .get("run_end")
        .and_then(Value::as_usize)
        .ok_or("missing run_end")?;
    if run_end < run_start {
        return Err("run_end < run_start".into());
    }

    let mut rows = SweepRows::new();
    for (cell, entry) in v
        .get("cells")
        .and_then(Value::as_obj)
        .ok_or("missing cells")?
    {
        let runs = entry
            .get("runs")
            .and_then(Value::as_arr)
            .ok_or("cell missing runs")?;
        let values = entry
            .get("values")
            .and_then(Value::as_arr)
            .ok_or("cell missing values")?;
        if runs.len() != values.len() {
            return Err(format!("cell {cell:?}: runs/values length mismatch"));
        }
        for (run_v, vals_v) in runs.iter().zip(values) {
            let run = run_v.as_usize().ok_or("run index must be an integer")?;
            let vals = vals_v
                .as_arr()
                .ok_or("row values must be an array")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .ok_or_else(|| "row value must be a hex string".to_string())
                        .and_then(f64_from_hex)
                })
                .collect::<Result<Vec<f64>, String>>()?;
            rows.push(cell, run, vals);
        }
    }

    // Recompute stats from rows and cross-check against the recorded
    // ones — a cheap end-to-end integrity check on the payload.
    let stats = ExactStats::from_rows(&rows);
    let recorded = decode_stats(&v)?;
    if recorded.fingerprint() != stats.fingerprint() {
        return Err("recorded stats do not match row payload — corrupt shard file".into());
    }

    Ok(ShardFile {
        spec_hash,
        spec,
        shard_id,
        run_range: run_start..run_end,
        rows,
        stats,
    })
}

fn decode_stats(v: &Value) -> Result<ExactStats, String> {
    let mut out = ExactStats::default();
    let members = v
        .get("stats")
        .and_then(Value::as_obj)
        .ok_or("missing stats")?;
    for (cell, entry) in members {
        let count = entry
            .get("count")
            .and_then(Value::as_usize)
            .ok_or("stats missing count")?;
        let sums = entry
            .get("sums")
            .and_then(Value::as_arr)
            .ok_or("stats missing sums")?
            .iter()
            .map(|s| {
                let hex = s.as_str().ok_or("stat sum must be a hex string")?;
                let bytes = bytes_from_hex(hex)?;
                ExactAccumulator::from_wire_bytes(&bytes)
                    .ok_or_else(|| "bad accumulator wire bytes".to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        out.insert_cell(cell.clone(), CellStats { count, sums });
    }
    Ok(out)
}

fn bytes_to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn bytes_from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|e| format!("bad hex: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::shard_assignments;

    fn spec() -> SweepSpec {
        SweepSpec::new("selftest", 10).arg("seed", 7)
    }

    fn rows_for(range: std::ops::Range<usize>) -> SweepRows {
        let mut rows = SweepRows::new();
        for run in range {
            rows.push("cell", run, vec![run as f64 * 0.1, -1.0 / (run as f64 + 1.0)]);
        }
        rows
    }

    fn temp_store(tag: &str) -> SweepStore {
        let dir = std::env::temp_dir().join(format!(
            "fpna-sweep-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        SweepStore::new(dir)
    }

    #[test]
    fn shard_files_round_trip_bitwise() {
        let store = temp_store("roundtrip");
        let rows = rows_for(3..7);
        store.write_shard(&spec(), 1, 3..7, &rows).unwrap();
        let shard = store.read_valid_shard(&spec(), 1, 3..7).unwrap();
        assert_eq!(shard.rows, rows);
        assert_eq!(shard.spec, spec());
        assert_eq!(
            shard.stats.fingerprint(),
            ExactStats::from_rows(&rows).fingerprint()
        );
        // wrong range or id -> not usable
        assert!(store.read_valid_shard(&spec(), 1, 3..8).is_none());
        assert!(store.read_valid_shard(&spec(), 0, 3..7).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn merged_load_requires_exact_partition() {
        let store = temp_store("partition");
        let s = spec();
        store.write_shard(&s, 0, 0..5, &rows_for(0..5)).unwrap();
        // incomplete -> error
        assert!(store.load_merged(&s).is_err());
        store.write_shard(&s, 1, 5..10, &rows_for(5..10)).unwrap();
        let (rows, stats) = store.load_merged(&s).unwrap();
        assert_eq!(rows, rows_for(0..10));
        assert_eq!(
            stats.fingerprint(),
            ExactStats::from_rows(&rows_for(0..10)).fingerprint()
        );
        // stale extra shard from a different partition -> error
        store.write_shard(&s, 2, 6..10, &rows_for(6..10)).unwrap();
        let err = store.load_merged(&s).unwrap_err();
        assert!(err.contains("tile"), "{err}");
        // cleaning against the 2-shard partition recovers
        store
            .remove_stale_shards(&s, &shard_assignments(&s, 2))
            .unwrap();
        assert!(store.load_merged(&s).is_ok());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let store = temp_store("corrupt");
        let s = spec();
        let path = store.shard_path(&s, 0);
        store.write_shard(&s, 0, 0..10, &rows_for(0..10)).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        // flip one hex digit inside the row payload
        let pos = text.find("\"values\":[[\"").unwrap() + "\"values\":[[\"".len();
        let orig = text.as_bytes()[pos];
        let flipped = if orig == b'0' { '1' } else { '0' };
        text.replace_range(pos..pos + 1, &flipped.to_string());
        fs::write(&path, &text).unwrap();
        assert!(store.read_valid_shard(&s, 0, 0..10).is_none());
        let err = store.load_merged(&s).unwrap_err();
        assert!(err.contains("corrupt") || err.contains("stats"), "{err}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn list_describes_completeness_and_reports() {
        let store = temp_store("list");
        let done = spec();
        store.write_shard(&done, 0, 0..5, &rows_for(0..5)).unwrap();
        store.write_shard(&done, 1, 5..10, &rows_for(5..10)).unwrap();
        store.write_report(&done, b"cached\n").unwrap();
        let part = SweepSpec::new("selftest", 10).arg("seed", 8);
        store.write_shard(&part, 0, 0..5, &rows_for(0..5)).unwrap();

        let entries = store.list_entries().unwrap();
        assert_eq!(entries.len(), 2);
        let by_hash = |h: &str| entries.iter().find(|e| e.hash == h).unwrap();
        let d = by_hash(&done.hash_hex());
        assert!(d.complete && d.has_report && d.shard_count == 2);
        assert_eq!(d.spec.as_ref().unwrap(), &done);
        assert!(d.total_bytes > 0);
        let p = by_hash(&part.hash_hex());
        assert!(!p.complete && !p.has_report && p.shard_count == 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_never_deletes_a_complete_set_newer_than_the_cutoff() {
        let store = temp_store("gc-age");
        let s = spec();
        store.write_shard(&s, 0, 0..5, &rows_for(0..5)).unwrap();
        store.write_shard(&s, 1, 5..10, &rows_for(5..10)).unwrap();
        let written = SystemTime::now();

        // Young relative to the cutoff: spared, with or without a byte
        // budget generous enough to hold it.
        let hour = Duration::from_secs(3600);
        for max_bytes in [None, Some(u64::MAX)] {
            let out = store.gc(Some(hour), max_bytes, written + Duration::from_secs(60)).unwrap();
            assert!(out.removed.is_empty(), "young complete set must survive: {out:?}");
            assert_eq!(out.kept, 1);
            assert!(store.load_merged(&s).is_ok(), "survivor still merges");
        }
        // Past the cutoff: collected.
        let out = store.gc(Some(hour), None, written + 2 * hour).unwrap();
        assert_eq!(out.removed, vec![s.hash_hex()]);
        assert_eq!(out.kept, 0);
        assert!(store.list_entries().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_byte_budget_evicts_incomplete_entries_first() {
        let store = temp_store("gc-bytes");
        let done = spec();
        store.write_shard(&done, 0, 0..10, &rows_for(0..10)).unwrap();
        let part = SweepSpec::new("selftest", 10).arg("seed", 8);
        store.write_shard(&part, 0, 0..5, &rows_for(0..5)).unwrap();
        let entries = store.list_entries().unwrap();
        let complete_bytes = entries
            .iter()
            .find(|e| e.complete)
            .map(|e| e.total_bytes)
            .unwrap();

        // Budget with room for exactly the complete set: the
        // incomplete entry goes first even though both are young.
        let out = store.gc(None, Some(complete_bytes), SystemTime::now()).unwrap();
        assert_eq!(out.removed, vec![part.hash_hex()]);
        assert_eq!(out.kept, 1);
        assert!(store.load_merged(&done).is_ok());
        // A zero budget is the only thing that takes the complete set.
        let out = store.gc(None, Some(0), SystemTime::now()).unwrap();
        assert_eq!(out.removed, vec![done.hash_hex()]);
        assert_eq!(out.kept_bytes, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn report_cache_round_trips() {
        let store = temp_store("report");
        let s = spec();
        assert!(store.read_report(&s).is_none());
        store.write_report(&s, b"line one\nline two\n").unwrap();
        assert_eq!(store.read_report(&s).unwrap(), b"line one\nline two\n");
        store.clear(&s).unwrap();
        assert!(store.read_report(&s).is_none());
        store.clear(&s).unwrap(); // idempotent
        let _ = fs::remove_dir_all(store.root());
    }
}
