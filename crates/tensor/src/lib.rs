//! # fpna-tensor
//!
//! A PyTorch-like tensor library whose kernels exist in paired
//! **deterministic / non-deterministic** variants — the §IV substrate
//! of the paper.
//!
//! PyTorch documents a list of operations whose GPU kernels are
//! non-deterministic because they accumulate with `atomicAdd`
//! ([`torch.use_deterministic_algorithms`]). This crate mirrors that
//! situation faithfully on the simulated GPU of `fpna-gpu-sim`:
//!
//! * every listed operation is implemented here —
//!   `conv_transpose1d/2d/3d`, `cumsum`, `index_add`, `index_copy`,
//!   `index_put`, `scatter`, `scatter_reduce` (sum/mean/prod/amax/amin);
//! * the **non-deterministic** variant builds its list of atomic
//!   contributions in program order and lets the device's wave
//!   scheduler decide the commit order
//!   ([`fpna_gpu_sim::GpuDevice::atomic_scatter_add`]);
//! * the **deterministic** variant (where PyTorch has one) accumulates
//!   in a fixed order;
//! * `scatter` and `scatter_reduce` have **no** deterministic kernel:
//!   requesting one via
//!   [`fpna_core::determinism::use_deterministic_algorithms`] produces
//!   the same runtime error the paper reports hitting (§IV) — the
//!   documentation/implementation gap is part of what we reproduce.
//!
//! The kernel choice honours the global determinism switch by default
//! and can be overridden per-context for race-free experiments
//! ([`context::GpuContext::with_determinism`]).
//!
//! [`torch.use_deterministic_algorithms`]:
//!     https://pytorch.org/docs/stable/generated/torch.use_deterministic_algorithms.html
//!
//! ```
//! use fpna_tensor::{Tensor, context::GpuContext};
//! use fpna_gpu_sim::GpuModel;
//!
//! let ctx = GpuContext::new(GpuModel::H100, 42).with_determinism(Some(false));
//! let dst = Tensor::zeros(vec![4]);
//! let src = Tensor::from_vec(vec![6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
//! let index = vec![0u32, 0, 1, 1, 2, 3];
//! let out = fpna_tensor::ops::index::index_add(&ctx, &dst, &index, &src).unwrap();
//! assert_eq!(out.data()[3], 6.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod cost;
pub mod ops;
pub mod sweep;
pub mod tensor;

pub use context::GpuContext;
pub use tensor::Tensor;
