//! `scatter` and `scatter_reduce` — the operations at the centre of the
//! paper's §IV case study (Figs 3–5, Table 6).
//!
//! `Y[I[k], :] ⊕= X[k, :]` for a reduction `⊕`. Neither operation has
//! a deterministic GPU kernel in the PyTorch the paper tested: asking
//! for one raised a runtime error despite documentation suggesting
//! otherwise. We reproduce that behaviour: under
//! `use_deterministic_algorithms(Deterministic)` these functions return
//! [`fpna_core::error::FpnaError::NoDeterministicImplementation`].
//!
//! For testing and for the self-referenced experiment harness a
//! deterministic *reference* implementation exists
//! ([`reference_scatter_reduce`]); it is deliberately not reachable
//! through the PyTorch-mirror determinism switch.
//!
//! A detail worth noticing (and tested): `amax`/`amin` reductions are
//! exactly associative and commutative over floats, so even the
//! non-deterministic kernel is bitwise reproducible for them — only
//! `sum`, `mean` and `prod` are FPNA-sensitive.

use fpna_core::determinism;
use fpna_core::error::FpnaError;
use fpna_core::Result;

use crate::context::GpuContext;
use crate::tensor::Tensor;

/// Reduction applied by [`scatter_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Arithmetic mean of contributions.
    Mean,
    /// Product of contributions.
    Prod,
    /// Maximum.
    Amax,
    /// Minimum.
    Amin,
}

impl ReduceOp {
    /// Name as used in PyTorch.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Mean => "mean",
            ReduceOp::Prod => "prod",
            ReduceOp::Amax => "amax",
            ReduceOp::Amin => "amin",
        }
    }

    /// Whether the reduction is exactly associative over floats (and
    /// therefore immune to commit-order effects).
    pub fn order_invariant(&self) -> bool {
        matches!(self, ReduceOp::Amax | ReduceOp::Amin)
    }

    fn combine(&self, acc: f64, x: f64) -> f64 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => acc + x,
            ReduceOp::Prod => acc * x,
            ReduceOp::Amax => acc.max(x),
            ReduceOp::Amin => acc.min(x),
        }
    }
}

fn check_no_deterministic(ctx: &GpuContext, op: &'static str) -> Result<()> {
    match ctx.determinism {
        Some(true) => Err(FpnaError::NoDeterministicImplementation { op }),
        Some(false) => Ok(()),
        None => determinism::report_nondeterministic_only(op),
    }
}

fn validate(dst: &Tensor, index: &[u32], src: &Tensor, op: &'static str) -> Result<()> {
    if src.shape().first().copied().unwrap_or(0) != index.len() {
        return Err(FpnaError::shape(format!(
            "{op}: index length {} != src rows {}",
            index.len(),
            src.shape().first().copied().unwrap_or(0)
        )));
    }
    if dst.row_len() != src.row_len() {
        return Err(FpnaError::shape(format!(
            "{op}: row length mismatch ({} vs {})",
            dst.row_len(),
            src.row_len()
        )));
    }
    let rows = dst.shape().first().copied().unwrap_or(0);
    for &i in index {
        if i as usize >= rows {
            return Err(FpnaError::IndexOutOfBounds {
                index: i as usize,
                bound: rows,
                context: op,
            });
        }
    }
    Ok(())
}

/// `out[index[k], :] = src[k, :]` (PyTorch `scatter_` with a source
/// tensor, dim 0): a racy write — the committed-last write wins.
/// Non-deterministic only.
pub fn scatter(ctx: &GpuContext, dst: &Tensor, index: &[u32], src: &Tensor) -> Result<Tensor> {
    check_no_deterministic(ctx, "scatter")?;
    validate(dst, index, src, "scatter")?;
    let w = dst.row_len();
    let mut out = dst.clone();
    let order = ctx.device.scatter_commit_order(index.len(), &ctx.schedule);
    for &k in &order {
        let row = index[k as usize] as usize;
        out.data_mut()[row * w..(row + 1) * w].copy_from_slice(src.row(k as usize));
    }
    Ok(out)
}

/// `out[index[k], :] ⊕= src[k, :]` (PyTorch `scatter_reduce_`, dim 0,
/// `include_self=false`): rows never touched by `index` keep their
/// `dst` value; reduced rows are rebuilt from the contributions alone.
/// Non-deterministic only — a deterministic request errors, as the
/// paper observed.
pub fn scatter_reduce(
    ctx: &GpuContext,
    dst: &Tensor,
    index: &[u32],
    src: &Tensor,
    op: ReduceOp,
) -> Result<Tensor> {
    check_no_deterministic(ctx, "scatter_reduce")?;
    validate(dst, index, src, "scatter_reduce")?;
    let order = ctx.device.scatter_commit_order(index.len(), &ctx.schedule);
    Ok(apply_scatter_reduce(dst, index, src, op, order.iter().map(|&k| k as usize)))
}

/// Deterministic reference implementation (ascending `k`), used by
/// tests and as the fixed baseline in experiments. **Not** part of the
/// PyTorch-mirror surface: the tested PyTorch had no deterministic
/// `scatter_reduce` kernel.
pub fn reference_scatter_reduce(
    dst: &Tensor,
    index: &[u32],
    src: &Tensor,
    op: ReduceOp,
) -> Result<Tensor> {
    validate(dst, index, src, "scatter_reduce")?;
    Ok(apply_scatter_reduce(dst, index, src, op, 0..index.len()))
}

fn apply_scatter_reduce(
    dst: &Tensor,
    index: &[u32],
    src: &Tensor,
    op: ReduceOp,
    order: impl Iterator<Item = usize>,
) -> Tensor {
    let w = dst.row_len();
    let rows = dst.shape().first().copied().unwrap_or(0);
    let mut out = dst.clone();
    let mut counts = vec![0u32; rows];
    let mut touched = vec![false; rows];
    // include_self=false: first contribution *initialises* the row.
    for k in order {
        let row = index[k] as usize;
        let s = src.row(k);
        let orow = &mut out.data_mut()[row * w..(row + 1) * w];
        if !touched[row] {
            orow.copy_from_slice(s);
            touched[row] = true;
        } else {
            for (o, &v) in orow.iter_mut().zip(s) {
                *o = op.combine(*o, v);
            }
        }
        counts[row] += 1;
    }
    if op == ReduceOp::Mean {
        for (r, &c) in counts.iter().enumerate() {
            if c > 1 {
                let inv = 1.0 / c as f64;
                for o in &mut out.data_mut()[r * w..(r + 1) * w] {
                    *o *= inv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;
    use fpna_gpu_sim::GpuModel;

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    fn random_problem(n: usize, rows: usize, seed: u64) -> (Tensor, Vec<u32>, Tensor) {
        let mut rng = SplitMix64::new(seed);
        let src = Tensor::from_vec(
            vec![n],
            (0..n).map(|_| rng.next_f64() * 1e6 - 5e5).collect(),
        );
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        (Tensor::zeros(vec![rows]), index, src)
    }

    #[test]
    fn deterministic_request_errors_like_pytorch() {
        let ctx = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
        let (dst, index, src) = random_problem(16, 4, 1);
        let err = scatter_reduce(&ctx, &dst, &index, &src, ReduceOp::Sum).unwrap_err();
        assert!(matches!(
            err,
            FpnaError::NoDeterministicImplementation { op: "scatter_reduce" }
        ));
        let err = scatter(&ctx, &dst, &index, &src).unwrap_err();
        assert!(matches!(
            err,
            FpnaError::NoDeterministicImplementation { op: "scatter" }
        ));
    }

    #[test]
    fn reference_sum_semantics() {
        let dst = Tensor::from_vec(vec![3], vec![100.0, 200.0, 300.0]);
        let src = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let out =
            reference_scatter_reduce(&dst, &[0, 0, 2, 2], &src, ReduceOp::Sum).unwrap();
        // include_self=false: row 0 = 1+2, row 1 untouched, row 2 = 3+4
        assert_eq!(out.data(), &[3.0, 200.0, 7.0]);
    }

    #[test]
    fn reference_mean_prod_amax_amin() {
        let dst = Tensor::zeros(vec![2]);
        let src = Tensor::from_vec(vec![3], vec![2.0, 4.0, -5.0]);
        let idx = [0u32, 0, 1];
        let mean = reference_scatter_reduce(&dst, &idx, &src, ReduceOp::Mean).unwrap();
        assert_eq!(mean.data(), &[3.0, -5.0]);
        let prod = reference_scatter_reduce(&dst, &idx, &src, ReduceOp::Prod).unwrap();
        assert_eq!(prod.data(), &[8.0, -5.0]);
        let amax = reference_scatter_reduce(&dst, &idx, &src, ReduceOp::Amax).unwrap();
        assert_eq!(amax.data(), &[4.0, -5.0]);
        let amin = reference_scatter_reduce(&dst, &idx, &src, ReduceOp::Amin).unwrap();
        assert_eq!(amin.data(), &[2.0, -5.0]);
    }

    #[test]
    fn nd_sum_varies_across_runs() {
        let (dst, index, src) = random_problem(20_000, 5, 2);
        let mut bits = std::collections::HashSet::new();
        for run in 0..10 {
            let out = scatter_reduce(&ctx_nd(3).for_run(run), &dst, &index, &src, ReduceOp::Sum)
                .unwrap();
            bits.insert(out.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        assert!(bits.len() > 1, "sum should be order-sensitive");
    }

    #[test]
    fn nd_amax_is_bitwise_stable() {
        // max/min are exactly associative: no FPNA even with atomics.
        let (dst, index, src) = random_problem(20_000, 5, 4);
        let first = scatter_reduce(&ctx_nd(5).for_run(0), &dst, &index, &src, ReduceOp::Amax)
            .unwrap();
        for run in 1..10 {
            let out = scatter_reduce(&ctx_nd(5).for_run(run), &dst, &index, &src, ReduceOp::Amax)
                .unwrap();
            assert!(out.bitwise_eq(&first), "amax must be order-invariant");
        }
        assert!(ReduceOp::Amax.order_invariant());
        assert!(!ReduceOp::Sum.order_invariant());
    }

    #[test]
    fn nd_close_to_reference() {
        let (dst, index, src) = random_problem(5_000, 16, 6);
        let reference =
            reference_scatter_reduce(&dst, &index, &src, ReduceOp::Sum).unwrap();
        let nd = scatter_reduce(&ctx_nd(7), &dst, &index, &src, ReduceOp::Sum).unwrap();
        for (a, b) in reference.data().iter().zip(nd.data()) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn scatter_write_race() {
        let dst = Tensor::zeros(vec![1]);
        let n = 2048usize;
        let src = Tensor::from_fn(vec![n], |i| i as f64);
        let index = vec![0u32; n];
        let mut winners = std::collections::HashSet::new();
        for run in 0..20 {
            let out = scatter(&ctx_nd(8).for_run(run), &dst, &index, &src).unwrap();
            winners.insert(out.data()[0].to_bits());
        }
        assert!(winners.len() > 1);
    }

    #[test]
    fn validation() {
        let ctx = ctx_nd(1);
        let dst = Tensor::zeros(vec![2]);
        let src = Tensor::zeros(vec![2]);
        assert!(scatter_reduce(&ctx, &dst, &[0], &src, ReduceOp::Sum).is_err());
        assert!(scatter_reduce(&ctx, &dst, &[0, 9], &src, ReduceOp::Sum).is_err());
        assert_eq!(ReduceOp::Mean.name(), "mean");
    }
}
