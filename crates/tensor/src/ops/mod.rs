//! The operation set of the paper's Table 5: every PyTorch operation
//! documented as non-deterministic on GPU, in paired deterministic /
//! non-deterministic implementations.
//!
//! | op | deterministic kernel | non-deterministic kernel |
//! |----|----------------------|--------------------------|
//! | `index_add` | fixed accumulation order | atomic commit order |
//! | `index_copy` | last index wins | last *commit* wins |
//! | `index_put` | last index wins | last *commit* wins |
//! | `cumsum` | serial scan | block scan, look-back combine order |
//! | `conv_transpose1d/2d/3d` | output-gather order | input-scatter atomics |
//! | `scatter` | **none** (runtime error) | last commit wins |
//! | `scatter_reduce` | **none** (runtime error) | atomic commit order |
//!
//! `scatter`/`scatter_reduce` erroring under
//! `use_deterministic_algorithms(Deterministic)` reproduces the
//! documentation gap the paper reports (§IV). Reference deterministic
//! implementations still exist for testing, under `reference_*` names —
//! they are *not* part of the PyTorch-mirror surface.

pub mod conv;
pub mod cumsum;
pub mod index;
pub mod lowp;
pub mod scatter;
pub mod segment;

pub use conv::{conv_transpose1d, conv_transpose2d, conv_transpose3d, ConvParams};
pub use cumsum::cumsum;
pub use index::{gather_rows, index_add, index_copy, index_put};
pub use scatter::{reference_scatter_reduce, scatter, scatter_reduce, ReduceOp};
