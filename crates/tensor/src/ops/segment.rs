//! `embedding_bag`, `bincount` and `histc` — the remainder of
//! PyTorch's documented-non-deterministic list that reduces with
//! atomics.
//!
//! Two of these are *integer*-atomic ops, which makes them a perfect
//! control group: `bincount`/`histc` increment integer counters, and
//! integer addition is exactly associative — so even the
//! non-deterministic kernels are bitwise reproducible. (PyTorch lists
//! them because its CUDA kernels error under
//! `use_deterministic_algorithms`; the *values* cannot actually vary.
//! The float-accumulating `embedding_bag`, in contrast, varies like
//! `index_add`.)

use fpna_core::error::FpnaError;
use fpna_core::Result;

use crate::context::GpuContext;
use crate::tensor::Tensor;

/// Bag reduction mode for [`embedding_bag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BagMode {
    /// Sum the bag's embedding rows.
    Sum,
    /// Average the bag's embedding rows.
    Mean,
}

/// `embedding_bag`: for each bag `b` (delimited by `offsets`), reduce
/// the embedding rows selected by `indices[offsets[b]..offsets[b+1]]`.
///
/// The non-deterministic kernel scatters each selected row into its
/// bag's accumulator in device commit order; the deterministic kernel
/// accumulates in index order.
///
/// `offsets` must start at 0, be non-decreasing, and end at
/// `indices.len()`.
pub fn embedding_bag(
    ctx: &GpuContext,
    weight: &Tensor,
    indices: &[u32],
    offsets: &[usize],
    mode: BagMode,
) -> Result<Tensor> {
    let vocab = weight.shape().first().copied().unwrap_or(0);
    let dim = weight.row_len();
    if offsets.first() != Some(&0)
        || offsets.last() != Some(&indices.len())
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(FpnaError::config(
            "embedding_bag offsets must be monotone from 0 to indices.len()",
        ));
    }
    for &i in indices {
        if i as usize >= vocab {
            return Err(FpnaError::IndexOutOfBounds {
                index: i as usize,
                bound: vocab,
                context: "embedding_bag",
            });
        }
    }
    let bags = offsets.len() - 1;
    let mut out = Tensor::zeros(vec![bags, dim]);
    // contribution list: every (selected row, bag) pair
    if ctx.deterministic_requested() {
        for b in 0..bags {
            for &i in &indices[offsets[b]..offsets[b + 1]] {
                let w = weight.row(i as usize);
                let orow = &mut out.data_mut()[b * dim..(b + 1) * dim];
                for (o, &v) in orow.iter_mut().zip(w) {
                    *o += v;
                }
            }
        }
    } else {
        let mut contribs = Vec::with_capacity(indices.len() * dim);
        for b in 0..bags {
            for &i in &indices[offsets[b]..offsets[b + 1]] {
                let w = weight.row(i as usize);
                for (j, &v) in w.iter().enumerate() {
                    contribs.push(((b * dim + j) as u32, v));
                }
            }
        }
        ctx.device
            .atomic_scatter_add(out.data_mut(), &contribs, &ctx.schedule);
    }
    if mode == BagMode::Mean {
        for b in 0..bags {
            let count = offsets[b + 1] - offsets[b];
            if count > 1 {
                let inv = 1.0 / count as f64;
                for o in &mut out.data_mut()[b * dim..(b + 1) * dim] {
                    *o *= inv;
                }
            }
        }
    }
    Ok(out)
}

/// `bincount`: count occurrences of each value in `0..bins`. Integer
/// atomics are exactly associative, so both kernels agree bitwise —
/// asserted by tests, and the reason the "non-determinism" of this op
/// never shows up in output values.
pub fn bincount(ctx: &GpuContext, values: &[u32], bins: usize) -> Result<Vec<u64>> {
    for &v in values {
        if v as usize >= bins {
            return Err(FpnaError::IndexOutOfBounds {
                index: v as usize,
                bound: bins,
                context: "bincount",
            });
        }
    }
    let mut counts = vec![0u64; bins];
    if ctx.deterministic_requested() {
        for &v in values {
            counts[v as usize] += 1;
        }
    } else {
        let order = ctx.device.scatter_commit_order(values.len(), &ctx.schedule);
        for &k in &order {
            counts[values[k as usize] as usize] += 1;
        }
    }
    Ok(counts)
}

/// `histc`: histogram of float values over `bins` equal bins spanning
/// `[min, max]`; out-of-range values are dropped (PyTorch semantics).
/// Binning is a pure function of each value, and the counters are
/// integers, so this is order-invariant too.
pub fn histc(
    ctx: &GpuContext,
    values: &[f64],
    bins: usize,
    min: f64,
    max: f64,
) -> Result<Vec<u64>> {
    // `partial_cmp` keeps the NaN-rejecting behaviour of `!(max > min)`.
    if bins == 0 || max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
        return Err(FpnaError::config("histc needs bins > 0 and max > min"));
    }
    let width = (max - min) / bins as f64;
    let bin_of = |v: f64| -> Option<usize> {
        if !v.is_finite() || v < min || v > max {
            return None;
        }
        Some((((v - min) / width) as usize).min(bins - 1))
    };
    let mut counts = vec![0u64; bins];
    if ctx.deterministic_requested() {
        for &v in values {
            if let Some(b) = bin_of(v) {
                counts[b] += 1;
            }
        }
    } else {
        let order = ctx.device.scatter_commit_order(values.len(), &ctx.schedule);
        for &k in &order {
            if let Some(b) = bin_of(values[k as usize]) {
                counts[b] += 1;
            }
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;
    use fpna_gpu_sim::GpuModel;

    fn ctx_det() -> GpuContext {
        GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
    }

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    #[test]
    fn embedding_bag_sum_and_mean() {
        let weight = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        let indices = [0u32, 2, 1, 1];
        let offsets = [0usize, 2, 4];
        let sum = embedding_bag(&ctx_det(), &weight, &indices, &offsets, BagMode::Sum).unwrap();
        assert_eq!(sum.row(0), &[101.0, 202.0]);
        assert_eq!(sum.row(1), &[20.0, 40.0]);
        let mean = embedding_bag(&ctx_det(), &weight, &indices, &offsets, BagMode::Mean).unwrap();
        assert_eq!(mean.row(0), &[50.5, 101.0]);
        assert_eq!(mean.row(1), &[10.0, 20.0]);
    }

    #[test]
    fn embedding_bag_empty_bag() {
        let weight = Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]);
        let out =
            embedding_bag(&ctx_det(), &weight, &[0], &[0, 0, 1], BagMode::Sum).unwrap();
        assert_eq!(out.row(0), &[0.0]);
        assert_eq!(out.row(1), &[1.0]);
    }

    #[test]
    fn embedding_bag_nd_varies_like_index_add() {
        // One huge bag with wide-range rows: commit order matters.
        let vocab = 4_096usize;
        let mut rng = SplitMix64::new(2);
        let weight = Tensor::from_vec(
            vec![vocab, 2],
            (0..vocab * 2).map(|_| rng.next_f64() * 1e8 - 5e7).collect(),
        );
        let indices: Vec<u32> = (0..8_192)
            .map(|_| rng.next_below(vocab as u64) as u32)
            .collect();
        let offsets = [0usize, indices.len()];
        let mut bits = std::collections::HashSet::new();
        for run in 0..10 {
            let out = embedding_bag(
                &ctx_nd(3).for_run(run),
                &weight,
                &indices,
                &offsets,
                BagMode::Sum,
            )
            .unwrap();
            bits.insert(out.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        assert!(bits.len() > 1, "float bag accumulation should vary");
    }

    #[test]
    fn integer_atomics_are_order_invariant() {
        // The control group: bincount and histc cannot vary, ever.
        let mut rng = SplitMix64::new(4);
        let values: Vec<u32> = (0..50_000).map(|_| rng.next_below(64) as u32).collect();
        let floats: Vec<f64> = (0..50_000).map(|_| rng.next_f64() * 10.0).collect();
        let det_counts = bincount(&ctx_det(), &values, 64).unwrap();
        let det_hist = histc(&ctx_det(), &floats, 32, 0.0, 10.0).unwrap();
        for run in 0..10 {
            let c = bincount(&ctx_nd(5).for_run(run), &values, 64).unwrap();
            assert_eq!(c, det_counts, "integer bincount is exactly associative");
            let h = histc(&ctx_nd(5).for_run(run), &floats, 32, 0.0, 10.0).unwrap();
            assert_eq!(h, det_hist, "histc counters are exactly associative");
        }
        assert_eq!(det_counts.iter().sum::<u64>(), 50_000);
    }

    #[test]
    fn histc_drops_out_of_range() {
        let ctx = ctx_det();
        let h = histc(&ctx, &[-1.0, 0.5, 1.5, 99.0, f64::NAN], 2, 0.0, 2.0).unwrap();
        assert_eq!(h, vec![1, 1]);
    }

    #[test]
    fn validation() {
        let ctx = ctx_det();
        let weight = Tensor::zeros(vec![2, 2]);
        // bad offsets
        assert!(embedding_bag(&ctx, &weight, &[0], &[1, 1], BagMode::Sum).is_err());
        assert!(embedding_bag(&ctx, &weight, &[0], &[0, 2], BagMode::Sum).is_err());
        // oob index
        assert!(embedding_bag(&ctx, &weight, &[7], &[0, 1], BagMode::Sum).is_err());
        assert!(bincount(&ctx, &[9], 4).is_err());
        assert!(histc(&ctx, &[1.0], 0, 0.0, 1.0).is_err());
        assert!(histc(&ctx, &[1.0], 4, 2.0, 1.0).is_err());
    }
}
