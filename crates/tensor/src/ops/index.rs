//! `index_add`, `index_copy`, `index_put` and `gather` along dim 0 —
//! the indexing family of the paper's Table 5 and Figs 3–5.
//!
//! Semantics follow PyTorch: the tensor is viewed as `rows × row_len`
//! along dimension 0 (the dimension the paper sweeps).
//!
//! * `index_add`: `out[index[k], :] += src[k, :]`. Duplicate indices
//!   make the sum order-sensitive — the non-deterministic kernel
//!   commits contributions in the device's atomic order.
//! * `index_copy` / `index_put`: racy *writes*; with duplicate indices
//!   the winner is the last committed write, which the schedule picks.
//! * `gather`: reads only — deterministic in both modes (present for
//!   completeness and for building GNN layers).

use fpna_core::error::FpnaError;
use fpna_core::Result;

use crate::context::GpuContext;
use crate::tensor::Tensor;

fn validate_dim0_index(
    dst: &Tensor,
    index: &[u32],
    src: &Tensor,
    op: &'static str,
) -> Result<()> {
    if src.shape().first().copied().unwrap_or(0) != index.len() {
        return Err(FpnaError::shape(format!(
            "{op}: index length {} != src rows {}",
            index.len(),
            src.shape().first().copied().unwrap_or(0)
        )));
    }
    if dst.row_len() != src.row_len() {
        return Err(FpnaError::shape(format!(
            "{op}: dst row length {} != src row length {}",
            dst.row_len(),
            src.row_len()
        )));
    }
    let rows = dst.shape().first().copied().unwrap_or(0);
    for &i in index {
        if i as usize >= rows {
            return Err(FpnaError::IndexOutOfBounds {
                index: i as usize,
                bound: rows,
                context: op,
            });
        }
    }
    Ok(())
}

/// `out[index[k], :] += src[k, :]` (PyTorch `index_add_`, dim 0).
///
/// Deterministic kernel: contributions applied in ascending `k`.
/// Non-deterministic kernel: contributions committed in the device's
/// atomic order — bitwise run-to-run variability whenever duplicate
/// indices carry rounding-sensitive values.
pub fn index_add(ctx: &GpuContext, dst: &Tensor, index: &[u32], src: &Tensor) -> Result<Tensor> {
    validate_dim0_index(dst, index, src, "index_add")?;
    let w = dst.row_len();
    let mut out = dst.clone();
    if ctx.deterministic_requested() {
        for (k, &row) in index.iter().enumerate() {
            let s = src.row(k);
            let orow = &mut out.data_mut()[row as usize * w..(row as usize + 1) * w];
            for (o, &v) in orow.iter_mut().zip(s) {
                *o += v;
            }
        }
    } else {
        let mut contribs = Vec::with_capacity(index.len() * w);
        for (k, &row) in index.iter().enumerate() {
            let s = src.row(k);
            for (j, &v) in s.iter().enumerate() {
                contribs.push(((row as usize * w + j) as u32, v));
            }
        }
        ctx.device
            .atomic_scatter_add(out.data_mut(), &contribs, &ctx.schedule);
    }
    Ok(out)
}

/// `out[index[k], :] = src[k, :]` (PyTorch `index_copy_`, dim 0).
///
/// With duplicate indices the result depends on which write lands last:
/// ascending `k` for the deterministic kernel, commit order for the
/// non-deterministic one.
pub fn index_copy(ctx: &GpuContext, dst: &Tensor, index: &[u32], src: &Tensor) -> Result<Tensor> {
    validate_dim0_index(dst, index, src, "index_copy")?;
    let w = dst.row_len();
    let mut out = dst.clone();
    let write_order: Vec<u32> = if ctx.deterministic_requested() {
        (0..index.len() as u32).collect()
    } else {
        ctx.device
            .scatter_commit_order(index.len(), &ctx.schedule)
    };
    for &k in &write_order {
        let row = index[k as usize] as usize;
        let s = src.row(k as usize);
        out.data_mut()[row * w..(row + 1) * w].copy_from_slice(s);
    }
    Ok(out)
}

/// Flat-index put: `out.flat[index[k]] = values[k]` (PyTorch
/// `index_put_` with `accumulate=False`). Racy on duplicates exactly
/// like [`index_copy`].
pub fn index_put(ctx: &GpuContext, dst: &Tensor, index: &[u32], values: &[f64]) -> Result<Tensor> {
    if index.len() != values.len() {
        return Err(FpnaError::shape(format!(
            "index_put: {} indices vs {} values",
            index.len(),
            values.len()
        )));
    }
    for &i in index {
        if i as usize >= dst.numel() {
            return Err(FpnaError::IndexOutOfBounds {
                index: i as usize,
                bound: dst.numel(),
                context: "index_put",
            });
        }
    }
    let mut out = dst.clone();
    let write_order: Vec<u32> = if ctx.deterministic_requested() {
        (0..index.len() as u32).collect()
    } else {
        ctx.device
            .scatter_commit_order(index.len(), &ctx.schedule)
    };
    for &k in &write_order {
        out.data_mut()[index[k as usize] as usize] = values[k as usize];
    }
    Ok(out)
}

/// `out[k, :] = src[index[k], :]` — pure reads, deterministic always.
/// Output rows are independent, so the gather is row-blocked across
/// the intra-run thread budget (bitwise invariant to the thread
/// count).
pub fn gather_rows(src: &Tensor, index: &[u32]) -> Result<Tensor> {
    let rows = src.shape().first().copied().unwrap_or(0);
    for &i in index {
        if i as usize >= rows {
            return Err(FpnaError::IndexOutOfBounds {
                index: i as usize,
                bound: rows,
                context: "gather_rows",
            });
        }
    }
    let w = src.row_len();
    let mut data;
    if index.len() * w >= 1 << 16 {
        data = vec![0.0f64; index.len() * w];
        fpna_core::executor::par_fill(&mut data, w, |ks, region| {
            for (local, k) in ks.enumerate() {
                region[local * w..(local + 1) * w].copy_from_slice(src.row(index[k] as usize));
            }
        });
    } else {
        data = Vec::with_capacity(index.len() * w);
        for &i in index {
            data.extend_from_slice(src.row(i as usize));
        }
    }
    let mut shape = vec![index.len()];
    shape.extend_from_slice(&src.shape()[1..]);
    Ok(Tensor::from_vec(shape, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;
    use fpna_gpu_sim::GpuModel;

    fn ctx_det() -> GpuContext {
        GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
    }

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    #[test]
    fn index_add_basic_semantics() {
        let dst = Tensor::zeros(vec![3, 2]);
        let src = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = index_add(&ctx_det(), &dst, &[2, 0], &src).unwrap();
        assert_eq!(out.row(0), &[3.0, 4.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn index_add_duplicates_accumulate() {
        let dst = Tensor::full(vec![2], 10.0);
        let src = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let out = index_add(&ctx_det(), &dst, &[0, 0, 1], &src).unwrap();
        assert_eq!(out.data(), &[13.0, 13.0]);
    }

    #[test]
    fn index_add_nd_matches_multiset_sum() {
        // ND and det differ only in addition order: same value to ~1e-9.
        let mut rng = SplitMix64::new(3);
        let n = 10_000usize;
        let rows = 8usize;
        let src = Tensor::from_vec(
            vec![n],
            (0..n).map(|_| rng.next_f64() * 1e6 - 5e5).collect(),
        );
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        let dst = Tensor::zeros(vec![rows]);
        let det = index_add(&ctx_det(), &dst, &index, &src).unwrap();
        let nd = index_add(&ctx_nd(7), &dst, &index, &src).unwrap();
        for (a, b) in det.data().iter().zip(nd.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn index_add_nd_varies_det_does_not() {
        let mut rng = SplitMix64::new(5);
        let n = 20_000usize;
        let src = Tensor::from_vec(
            vec![n],
            (0..n).map(|_| rng.next_f64() * 1e8 - 5e7).collect(),
        );
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(4) as u32).collect();
        let dst = Tensor::zeros(vec![4]);
        let mut det_bits = std::collections::HashSet::new();
        let mut nd_bits = std::collections::HashSet::new();
        for run in 0..10 {
            let d = index_add(&ctx_det().for_run(run), &dst, &index, &src).unwrap();
            let n_ = index_add(&ctx_nd(9).for_run(run), &dst, &index, &src).unwrap();
            det_bits.insert(d.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
            nd_bits.insert(n_.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        assert_eq!(det_bits.len(), 1, "deterministic kernel must be stable");
        assert!(nd_bits.len() > 1, "ND kernel should vary across runs");
    }

    #[test]
    fn index_copy_last_write_wins() {
        let dst = Tensor::zeros(vec![2, 1]);
        let src = Tensor::from_vec(vec![3, 1], vec![1.0, 2.0, 3.0]);
        // det: ascending k, so k=1 (value 2.0) then k=2 (3.0) -> row0 = 3.0
        let out = index_copy(&ctx_det(), &dst, &[0, 0, 0], &src).unwrap();
        assert_eq!(out.data()[0], 3.0);
    }

    #[test]
    fn index_copy_nd_winner_varies() {
        let dst = Tensor::zeros(vec![1]);
        let n = 4096usize;
        let src = Tensor::from_fn(vec![n], |i| i as f64);
        let index = vec![0u32; n];
        let mut winners = std::collections::HashSet::new();
        for run in 0..20 {
            let out = index_copy(&ctx_nd(11).for_run(run), &dst, &index, &src).unwrap();
            winners.insert(out.data()[0].to_bits());
        }
        assert!(winners.len() > 1, "write race winner should vary");
    }

    #[test]
    fn index_put_flat_semantics() {
        let dst = Tensor::zeros(vec![2, 2]);
        let out = index_put(&ctx_det(), &dst, &[3, 0], &[7.0, 8.0]).unwrap();
        assert_eq!(out.data(), &[8.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn gather_rows_reads() {
        let src = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = gather_rows(&src, &[2, 2, 0]).unwrap();
        assert_eq!(out.shape(), &[3, 2]);
        assert_eq!(out.data(), &[5.0, 6.0, 5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn validation_errors() {
        let dst = Tensor::zeros(vec![2, 2]);
        let src = Tensor::zeros(vec![2, 2]);
        assert!(index_add(&ctx_det(), &dst, &[0], &src).is_err()); // wrong index len
        assert!(index_add(&ctx_det(), &dst, &[0, 5], &src).is_err()); // oob
        let src3 = Tensor::zeros(vec![2, 3]);
        assert!(index_add(&ctx_det(), &dst, &[0, 1], &src3).is_err()); // row len
        assert!(index_put(&ctx_det(), &dst, &[9], &[1.0]).is_err()); // oob flat
        assert!(index_put(&ctx_det(), &dst, &[0, 1], &[1.0]).is_err()); // len mismatch
        assert!(gather_rows(&src, &[7]).is_err());
    }
}
