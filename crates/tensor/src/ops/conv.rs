//! Transposed convolutions (`ConvTranspose1d/2d/3d`) — the top rows of
//! the paper's Table 5.
//!
//! cuDNN's transposed-convolution kernels are non-deterministic because
//! they are scatter-shaped: each input element multiplies the kernel
//! and *scatters* into overlapping output windows with `atomicAdd`.
//! The deterministic alternative is gather-shaped: each output element
//! sums its contributors in a fixed order. Both are implemented here,
//! for 1-D, 2-D and 3-D spatial ranks, with stride and padding.
//!
//! Shapes follow PyTorch: input `[N, C_in, S…]`, weight
//! `[C_in, C_out, K…]`, output `[N, C_out, O…]` with
//! `O_d = (S_d − 1)·stride_d − 2·padding_d + K_d`.

use fpna_core::error::FpnaError;
use fpna_core::Result;

use crate::context::GpuContext;
use crate::tensor::Tensor;

/// Stride and padding of a transposed convolution (one entry per
/// spatial dimension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvParams {
    /// Stride per spatial dim.
    pub stride: Vec<usize>,
    /// Zero padding per spatial dim.
    pub padding: Vec<usize>,
}

impl ConvParams {
    /// Uniform stride/padding across `rank` spatial dims.
    pub fn uniform(rank: usize, stride: usize, padding: usize) -> Self {
        ConvParams {
            stride: vec![stride; rank],
            padding: vec![padding; rank],
        }
    }
}

/// Iterate the cartesian product of `dims` in row-major order.
fn for_each_index(dims: &[usize], mut f: impl FnMut(&[usize])) {
    let rank = dims.len();
    if dims.contains(&0) {
        return;
    }
    let mut idx = vec![0usize; rank];
    loop {
        f(&idx);
        // odometer increment
        let mut d = rank;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < dims[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Row-major flatten.
fn flatten(idx: &[usize], dims: &[usize]) -> usize {
    let mut f = 0usize;
    for (i, d) in idx.iter().zip(dims) {
        f = f * d + i;
    }
    f
}

struct ConvShapes {
    batch: usize,
    c_in: usize,
    c_out: usize,
    spatial_in: Vec<usize>,
    kernel: Vec<usize>,
    spatial_out: Vec<usize>,
}

fn validate(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f64]>,
    params: &ConvParams,
    rank: usize,
) -> Result<ConvShapes> {
    if input.rank() != rank + 2 || weight.rank() != rank + 2 {
        return Err(FpnaError::shape(format!(
            "conv_transpose{rank}d expects rank-{} input and weight, got {} and {}",
            rank + 2,
            input.rank(),
            weight.rank()
        )));
    }
    if params.stride.len() != rank || params.padding.len() != rank {
        return Err(FpnaError::config(format!(
            "conv_transpose{rank}d needs {rank} stride/padding entries"
        )));
    }
    if params.stride.contains(&0) {
        return Err(FpnaError::config("stride must be positive"));
    }
    let c_in = input.shape()[1];
    if weight.shape()[0] != c_in {
        return Err(FpnaError::shape(format!(
            "weight C_in {} != input C_in {}",
            weight.shape()[0],
            c_in
        )));
    }
    let c_out = weight.shape()[1];
    if let Some(b) = bias {
        if b.len() != c_out {
            return Err(FpnaError::shape(format!(
                "bias length {} != C_out {c_out}",
                b.len()
            )));
        }
    }
    let spatial_in = input.shape()[2..].to_vec();
    let kernel = weight.shape()[2..].to_vec();
    let mut spatial_out = Vec::with_capacity(rank);
    for d in 0..rank {
        let o = (spatial_in[d].saturating_sub(1)) * params.stride[d] + kernel[d];
        let o = o as i64 - 2 * params.padding[d] as i64;
        if o <= 0 {
            return Err(FpnaError::config(format!(
                "output dim {d} would be {o}; reduce padding"
            )));
        }
        spatial_out.push(o as usize);
    }
    Ok(ConvShapes {
        batch: input.shape()[0],
        c_in,
        c_out,
        spatial_in,
        kernel,
        spatial_out,
    })
}

fn conv_transpose_nd(
    ctx: &GpuContext,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f64]>,
    params: &ConvParams,
    rank: usize,
) -> Result<Tensor> {
    let s = validate(input, weight, bias, params, rank)?;
    let mut out_shape = vec![s.batch, s.c_out];
    out_shape.extend_from_slice(&s.spatial_out);
    let out_spatial_len: usize = s.spatial_out.iter().product();
    let in_spatial_len: usize = s.spatial_in.iter().product();
    let k_len: usize = s.kernel.iter().product();

    // Bias initialisation is deterministic in both kernels.
    let mut out = Tensor::zeros(out_shape);
    if let Some(b) = bias {
        for n in 0..s.batch {
            for (co, &bv) in b.iter().enumerate().take(s.c_out) {
                let base = (n * s.c_out + co) * out_spatial_len;
                for x in &mut out.data_mut()[base..base + out_spatial_len] {
                    *x = bv;
                }
            }
        }
    }

    if ctx.deterministic_requested() {
        // Gather order: each output element accumulates its
        // contributors in fixed (ci, k) lexicographic order. Output
        // `(n, c_out)` planes are disjoint, so large contractions are
        // plane-blocked across the intra-run thread budget — the
        // per-element gather order is untouched, so the bits never
        // depend on the thread count.
        let gather_planes = |planes: std::ops::Range<usize>, region: &mut [f64]| {
            for (local, nc) in planes.enumerate() {
                let n = nc / s.c_out;
                let co = nc % s.c_out;
                let row = &mut region[local * out_spatial_len..(local + 1) * out_spatial_len];
                for_each_index(&s.spatial_out, |o_idx| {
                    let mut acc = 0.0f64;
                    for ci in 0..s.c_in {
                        for_each_index(&s.kernel, |k_idx| {
                            let mut in_idx = vec![0usize; rank];
                            for d in 0..rank {
                                let numer =
                                    o_idx[d] as i64 + params.padding[d] as i64 - k_idx[d] as i64;
                                if numer < 0 || numer % params.stride[d] as i64 != 0 {
                                    return;
                                }
                                let i = (numer / params.stride[d] as i64) as usize;
                                if i >= s.spatial_in[d] {
                                    return;
                                }
                                in_idx[d] = i;
                            }
                            let iv = input.data()[(n * s.c_in + ci) * in_spatial_len
                                + flatten(&in_idx, &s.spatial_in)];
                            let wv = weight.data()
                                [(ci * s.c_out + co) * k_len + flatten(k_idx, &s.kernel)];
                            acc += iv * wv;
                        });
                    }
                    row[flatten(o_idx, &s.spatial_out)] += acc;
                });
            }
        };
        let planes = s.batch * s.c_out;
        let work = planes * out_spatial_len * s.c_in * k_len;
        if work >= 1 << 16 {
            fpna_core::executor::par_fill(out.data_mut(), out_spatial_len, gather_planes);
        } else {
            gather_planes(0..planes, out.data_mut());
        }
    } else {
        // Scatter order: contributions in input-major program order,
        // committed in the device's atomic order.
        let mut contribs: Vec<(u32, f64)> = Vec::new();
        for n in 0..s.batch {
            for ci in 0..s.c_in {
                for_each_index(&s.spatial_in, |i_idx| {
                    let iv = input.data()
                        [(n * s.c_in + ci) * in_spatial_len + flatten(i_idx, &s.spatial_in)];
                    for co in 0..s.c_out {
                        for_each_index(&s.kernel, |k_idx| {
                            let mut o_idx = vec![0usize; rank];
                            for d in 0..rank {
                                let o = (i_idx[d] * params.stride[d] + k_idx[d]) as i64
                                    - params.padding[d] as i64;
                                if o < 0 || o as usize >= s.spatial_out[d] {
                                    return;
                                }
                                o_idx[d] = o as usize;
                            }
                            let wv = weight.data()
                                [(ci * s.c_out + co) * k_len + flatten(k_idx, &s.kernel)];
                            let addr = (n * s.c_out + co) * out_spatial_len
                                + flatten(&o_idx, &s.spatial_out);
                            contribs.push((addr as u32, iv * wv));
                        });
                    }
                });
            }
        }
        ctx.device
            .atomic_scatter_add(out.data_mut(), &contribs, &ctx.schedule);
    }
    Ok(out)
}

/// 1-D transposed convolution (`torch.nn.ConvTranspose1d`).
pub fn conv_transpose1d(
    ctx: &GpuContext,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f64]>,
    params: &ConvParams,
) -> Result<Tensor> {
    conv_transpose_nd(ctx, input, weight, bias, params, 1)
}

/// 2-D transposed convolution (`torch.nn.ConvTranspose2d`).
pub fn conv_transpose2d(
    ctx: &GpuContext,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f64]>,
    params: &ConvParams,
) -> Result<Tensor> {
    conv_transpose_nd(ctx, input, weight, bias, params, 2)
}

/// 3-D transposed convolution (`torch.nn.ConvTranspose3d`).
pub fn conv_transpose3d(
    ctx: &GpuContext,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f64]>,
    params: &ConvParams,
) -> Result<Tensor> {
    conv_transpose_nd(ctx, input, weight, bias, params, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_gpu_sim::GpuModel;

    fn ctx_det() -> GpuContext {
        GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
    }

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    #[test]
    fn known_1d_result() {
        // input [1,1,3] = [1,2,3], kernel [1,1,2] = [1, 10], stride 1, pad 0
        // out length = (3-1)*1 + 2 = 4: [1, 12, 23, 30]
        let input = Tensor::from_vec(vec![1, 1, 3], vec![1.0, 2.0, 3.0]);
        let weight = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 10.0]);
        let out = conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 1, 0),
        )
        .unwrap();
        assert_eq!(out.shape(), &[1, 1, 4]);
        assert_eq!(out.data(), &[1.0, 12.0, 23.0, 30.0]);
    }

    #[test]
    fn stride_and_padding_1d() {
        // stride 2: out length = (3-1)*2 + 2 = 6; padding 1 trims both ends -> 4
        let input = Tensor::from_vec(vec![1, 1, 3], vec![1.0, 2.0, 3.0]);
        let weight = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 10.0]);
        let full = conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 2, 0),
        )
        .unwrap();
        assert_eq!(full.data(), &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let padded = conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 2, 1),
        )
        .unwrap();
        assert_eq!(padded.data(), &[10.0, 2.0, 20.0, 3.0]);
    }

    #[test]
    fn bias_is_added_everywhere() {
        let input = Tensor::from_vec(vec![1, 1, 2], vec![0.0, 0.0]);
        let weight = Tensor::from_vec(vec![1, 2, 2], vec![0.0, 0.0, 0.0, 0.0]);
        let out = conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            Some(&[5.0, -1.0]),
            &ConvParams::uniform(1, 1, 0),
        )
        .unwrap();
        assert_eq!(out.shape(), &[1, 2, 3]);
        assert_eq!(out.data(), &[5.0, 5.0, 5.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn nd_matches_det_to_rounding_2d() {
        let input = Tensor::randn(vec![2, 3, 6, 6], 1).map(|x| x * 1e3);
        let weight = Tensor::randn(vec![3, 4, 3, 3], 2);
        let det = conv_transpose2d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(2, 2, 1),
        )
        .unwrap();
        let nd = conv_transpose2d(
            &ctx_nd(3),
            &input,
            &weight,
            None,
            &ConvParams::uniform(2, 2, 1),
        )
        .unwrap();
        assert_eq!(det.shape(), nd.shape());
        for (a, b) in det.data().iter().zip(nd.data()) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0) + 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn nd_varies_det_stable_3d() {
        let input = Tensor::randn(vec![1, 2, 4, 4, 4], 4).map(|x| x * 1e6);
        let weight = Tensor::randn(vec![2, 2, 3, 3, 3], 5);
        let params = ConvParams::uniform(3, 1, 0);
        let det0 = conv_transpose3d(&ctx_det().for_run(0), &input, &weight, None, &params).unwrap();
        let det1 = conv_transpose3d(&ctx_det().for_run(1), &input, &weight, None, &params).unwrap();
        assert!(det0.bitwise_eq(&det1));
        let mut bits = std::collections::HashSet::new();
        for run in 0..6 {
            let nd =
                conv_transpose3d(&ctx_nd(6).for_run(run), &input, &weight, None, &params).unwrap();
            bits.insert(nd.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        assert!(bits.len() > 1, "3-D scatter conv should vary");
    }

    #[test]
    fn channel_mixing() {
        // 2 input channels, 1 output channel, kernel of ones: output
        // sums both channels.
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 10.0, 20.0]);
        let weight = Tensor::from_vec(vec![2, 1, 1], vec![1.0, 1.0]);
        let out = conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 1, 0),
        )
        .unwrap();
        assert_eq!(out.data(), &[11.0, 22.0]);
    }

    #[test]
    fn validation_errors() {
        let input = Tensor::zeros(vec![1, 1, 3]);
        let weight = Tensor::zeros(vec![2, 1, 2]); // C_in mismatch
        assert!(conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 1, 0)
        )
        .is_err());
        let weight = Tensor::zeros(vec![1, 1, 2]);
        assert!(conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            Some(&[1.0, 2.0]), // bias len
            &ConvParams::uniform(1, 1, 0)
        )
        .is_err());
        assert!(conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 0, 0) // zero stride
        )
        .is_err());
        assert!(conv_transpose1d(
            &ctx_det(),
            &input,
            &weight,
            None,
            &ConvParams::uniform(1, 1, 9) // padding destroys output
        )
        .is_err());
    }
}
