//! Single-precision (f32) accumulation variants of the reduction ops.
//!
//! PyTorch's default dtype is `float32`, so the variability magnitudes
//! in the paper's Table 5 and Figs 4–5 sit at the fp32 rounding scale
//! (eps ≈ 1.2e-7). The main kernels in this crate accumulate in f64,
//! where the identical commit-order phenomenon appears at the f64 scale
//! (eps ≈ 2.2e-16). These fp32 variants reproduce the paper's absolute
//! magnitudes: same contribution lists, same device commit order, but
//! every addition rounded to f32.

use fpna_core::error::FpnaError;
use fpna_core::Result;

use crate::context::GpuContext;

fn validate_index(index: &[u32], rows: usize, op: &'static str) -> Result<()> {
    for &i in index {
        if i as usize >= rows {
            return Err(FpnaError::IndexOutOfBounds {
                index: i as usize,
                bound: rows,
                context: op,
            });
        }
    }
    Ok(())
}

/// fp32 `index_add` on 1-D buffers: `out[index[k]] += src[k]`, with
/// f32 accumulation in the device's commit order (ND) or ascending `k`
/// (deterministic).
pub fn index_add_f32(
    ctx: &GpuContext,
    dst: &[f32],
    index: &[u32],
    src: &[f32],
) -> Result<Vec<f32>> {
    if index.len() != src.len() {
        return Err(FpnaError::shape(format!(
            "index_add_f32: {} indices vs {} sources",
            index.len(),
            src.len()
        )));
    }
    validate_index(index, dst.len(), "index_add_f32")?;
    let mut out = dst.to_vec();
    if ctx.deterministic_requested() {
        for (k, &row) in index.iter().enumerate() {
            out[row as usize] += src[k];
        }
    } else {
        let order = ctx.device.scatter_commit_order(index.len(), &ctx.schedule);
        for &k in &order {
            out[index[k as usize] as usize] += src[k as usize];
        }
    }
    Ok(out)
}

/// fp32 `scatter_reduce` (sum or mean, `include_self=false`) on 1-D
/// buffers. Non-deterministic only, mirroring [`super::scatter::scatter_reduce`].
pub fn scatter_reduce_f32(
    ctx: &GpuContext,
    dst: &[f32],
    index: &[u32],
    src: &[f32],
    mean: bool,
) -> Result<Vec<f32>> {
    if index.len() != src.len() {
        return Err(FpnaError::shape(format!(
            "scatter_reduce_f32: {} indices vs {} sources",
            index.len(),
            src.len()
        )));
    }
    validate_index(index, dst.len(), "scatter_reduce_f32")?;
    if ctx.determinism == Some(true) {
        return Err(FpnaError::NoDeterministicImplementation {
            op: "scatter_reduce",
        });
    }
    let order = ctx.device.scatter_commit_order(index.len(), &ctx.schedule);
    let mut out = dst.to_vec();
    let mut counts = vec![0u32; dst.len()];
    for &k in &order {
        let row = index[k as usize] as usize;
        if counts[row] == 0 {
            out[row] = src[k as usize];
        } else {
            out[row] += src[k as usize];
        }
        counts[row] += 1;
    }
    if mean {
        for (o, &c) in out.iter_mut().zip(&counts) {
            if c > 1 {
                *o /= c as f32;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;
    use fpna_gpu_sim::GpuModel;

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    fn problem(n: usize, rows: usize, seed: u64) -> (Vec<f32>, Vec<u32>, Vec<f32>) {
        let mut rng = SplitMix64::new(seed);
        let src: Vec<f32> = (0..n).map(|_| (rng.next_f64() as f32 - 0.5) * 1e3).collect();
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        (vec![0.0; rows], index, src)
    }

    #[test]
    fn index_add_f32_semantics() {
        let ctx = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
        let out = index_add_f32(&ctx, &[1.0, 0.0], &[0, 0, 1], &[1.0, 2.0, 5.0]).unwrap();
        assert_eq!(out, vec![4.0, 5.0]);
    }

    #[test]
    fn f32_variability_is_at_fp32_scale() {
        // The headline: same experiment as the f64 kernels, but the
        // per-element relative deviations land near 1e-7 (f32 eps), as
        // in the paper's Table 5.
        let (dst, index, src) = problem(20_000, 100, 2);
        let reference = index_add_f32(
            &GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true)),
            &dst,
            &index,
            &src,
        )
        .unwrap();
        let nd = index_add_f32(&ctx_nd(3), &dst, &index, &src).unwrap();
        let mut max_rel = 0.0f64;
        let mut any_diff = false;
        for (a, b) in reference.iter().zip(&nd) {
            if a.to_bits() != b.to_bits() {
                any_diff = true;
                max_rel = max_rel.max(((a - b).abs() / a.abs().max(1e-10)) as f64);
            }
        }
        assert!(any_diff, "fp32 accumulation should be order-sensitive");
        assert!(
            max_rel > 1e-9 && max_rel < 1e-3,
            "relative deviations should sit near fp32 eps, got {max_rel}"
        );
    }

    #[test]
    fn scatter_reduce_f32_mean_and_sum() {
        let ctx = ctx_nd(4);
        let out = scatter_reduce_f32(&ctx, &[9.0, 9.0], &[0, 0, 1], &[2.0, 4.0, 5.0], false)
            .unwrap();
        assert_eq!(out, vec![6.0, 5.0]);
        let out = scatter_reduce_f32(&ctx, &[9.0, 9.0], &[0, 0, 1], &[2.0, 4.0, 5.0], true)
            .unwrap();
        assert_eq!(out, vec![3.0, 5.0]);
    }

    #[test]
    fn scatter_reduce_f32_det_request_errors() {
        let ctx = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
        assert!(scatter_reduce_f32(&ctx, &[0.0], &[0], &[1.0], false).is_err());
    }

    #[test]
    fn validation() {
        let ctx = ctx_nd(5);
        assert!(index_add_f32(&ctx, &[0.0], &[0, 1], &[1.0]).is_err());
        assert!(index_add_f32(&ctx, &[0.0], &[5], &[1.0]).is_err());
        assert!(scatter_reduce_f32(&ctx, &[0.0], &[9], &[1.0], false).is_err());
    }
}
