//! `cumsum` — prefix sum with a deterministic serial scan and a
//! non-deterministic two-level block scan.
//!
//! GPU prefix sums are computed per block, with block offsets combined
//! through a "decoupled look-back": each block sums the partials of its
//! predecessors *in whatever order they become visible*. The multiset
//! of partials is fixed — only the association order varies — so the
//! result differs from run to run at rounding level. That matches the
//! paper's Table 5, where `cumsum`'s variability ranges from exactly 0
//! (small inputs that fit one block) to ~5e-7.

use fpna_core::Result;

use crate::context::GpuContext;
use crate::tensor::Tensor;

/// Elements per scan block of the non-deterministic kernel.
const BLOCK: usize = 256;

/// Prefix sum over a 1-D tensor (PyTorch `torch.cumsum`, dim 0).
///
/// Deterministic kernel: plain serial scan. Non-deterministic kernel:
/// per-block serial scans plus look-back offsets whose partials combine
/// in the device's block finish order.
pub fn cumsum(ctx: &GpuContext, x: &Tensor) -> Result<Tensor> {
    let n = x.numel();
    let mut out = Tensor::zeros(vec![n]);
    if n == 0 {
        return Ok(out);
    }
    if ctx.deterministic_requested() || n <= BLOCK {
        let mut acc = 0.0f64;
        for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
            acc += v;
            *o = acc;
        }
        return Ok(out);
    }
    let nb = n.div_ceil(BLOCK);
    // Stage 1 (deterministic): per-block serial partial sums.
    let partials: Vec<f64> = (0..nb)
        .map(|b| x.data()[b * BLOCK..((b + 1) * BLOCK).min(n)].iter().sum())
        .collect();
    // Stage 2 (non-deterministic): each block's offset is the sum of
    // its predecessors' partials, accumulated in the order the
    // scheduler exposed them this run.
    let finish = ctx
        .device
        .scheduler()
        .block_finish_order(nb as u32, &ctx.schedule);
    let mut offsets = vec![0.0f64; nb];
    for (b, offset) in offsets.iter_mut().enumerate().skip(1) {
        let mut acc = 0.0f64;
        for &fb in &finish {
            if (fb as usize) < b {
                acc += partials[fb as usize];
            }
        }
        *offset = acc;
    }
    // Stage 3 (deterministic): intra-block scan on top of the offset.
    for (b, &offset) in offsets.iter().enumerate() {
        let lo = b * BLOCK;
        let hi = ((b + 1) * BLOCK).min(n);
        let mut acc = offset;
        for i in lo..hi {
            acc += x.data()[i];
            out.data_mut()[i] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_core::rng::SplitMix64;
    use fpna_gpu_sim::GpuModel;

    fn ctx_det() -> GpuContext {
        GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
    }

    fn ctx_nd(seed: u64) -> GpuContext {
        GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
    }

    fn random(n: usize, seed: u64) -> Tensor {
        let mut g = SplitMix64::new(seed);
        Tensor::from_vec(vec![n], (0..n).map(|_| g.next_f64() * 2e3 - 1e3).collect())
    }

    #[test]
    fn serial_scan_semantics() {
        let x = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let out = cumsum(&ctx_det(), &x).unwrap();
        assert_eq!(out.data(), &[1.0, 3.0, 6.0, 10.0]);
        assert_eq!(cumsum(&ctx_det(), &Tensor::zeros(vec![0])).unwrap().numel(), 0);
    }

    #[test]
    fn nd_matches_det_to_rounding() {
        let x = random(10_000, 2);
        let det = cumsum(&ctx_det(), &x).unwrap();
        let nd = cumsum(&ctx_nd(3), &x).unwrap();
        for (a, b) in det.data().iter().zip(nd.data()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        // last element is the full sum in both
        assert!((det.data()[9999] - nd.data()[9999]).abs() < 1e-8);
    }

    #[test]
    fn small_inputs_are_exactly_stable() {
        // fits one block -> no look-back -> bitwise equal to serial,
        // matching Table 5's min(Vermv) = 0 for cumsum.
        let x = random(200, 4);
        let det = cumsum(&ctx_det(), &x).unwrap();
        for run in 0..5 {
            let nd = cumsum(&ctx_nd(5).for_run(run), &x).unwrap();
            assert!(nd.bitwise_eq(&det));
        }
    }

    #[test]
    fn large_inputs_vary_across_runs() {
        let x = random(100_000, 6);
        let mut bits = std::collections::HashSet::new();
        for run in 0..10 {
            let nd = cumsum(&ctx_nd(7).for_run(run), &x).unwrap();
            bits.insert(nd.data().last().copied().unwrap().to_bits());
        }
        assert!(bits.len() > 1, "look-back order should leak into bits");
    }

    #[test]
    fn nd_replays_bitwise_for_fixed_seed() {
        let x = random(50_000, 8);
        let a = cumsum(&ctx_nd(9), &x).unwrap();
        let b = cumsum(&ctx_nd(9), &x).unwrap();
        assert!(a.bitwise_eq(&b));
    }
}
