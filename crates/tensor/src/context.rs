//! Execution context: which simulated device runs the kernels, which
//! schedule this "launch" gets, and how the deterministic/non-
//! deterministic choice is made.

use fpna_core::determinism;
use fpna_gpu_sim::{GpuDevice, GpuModel, ScheduleKind};

/// Context threaded through every tensor operation.
///
/// * `device` — the simulated GPU whose wave scheduler orders atomic
///   commits;
/// * `schedule` — the schedule for this launch. Calling
///   [`GpuContext::for_run`] re-keys it, which is the simulation
///   analogue of "run the same program again";
/// * `determinism` — `None` (default) defers to the process-global
///   switch ([`fpna_core::determinism::use_deterministic_algorithms`]),
///   mirroring the PyTorch API; `Some(choice)` overrides it, which
///   experiments use to avoid global state races.
#[derive(Debug, Clone)]
pub struct GpuContext {
    /// The simulated device.
    pub device: GpuDevice,
    /// Schedule for this launch.
    pub schedule: ScheduleKind,
    /// Per-context determinism override (`None` = consult the global).
    pub determinism: Option<bool>,
}

impl GpuContext {
    /// Context on a stock device with a seeded realistic schedule.
    pub fn new(model: GpuModel, seed: u64) -> Self {
        GpuContext {
            device: GpuDevice::new(model),
            schedule: ScheduleKind::Seeded(seed),
            determinism: None,
        }
    }

    /// Override the determinism choice for this context.
    pub fn with_determinism(mut self, determinism: Option<bool>) -> Self {
        self.determinism = determinism;
        self
    }

    /// Replace the schedule (e.g. with an adversarial order).
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// A context for repetition `run`: same device, schedule re-keyed.
    pub fn for_run(&self, run: u64) -> Self {
        GpuContext {
            device: self.device.clone(),
            schedule: self.schedule.for_run(run),
            determinism: self.determinism,
        }
    }

    /// Should kernels use their deterministic variant?
    pub fn deterministic_requested(&self) -> bool {
        match self.determinism {
            Some(choice) => choice,
            None => determinism::deterministic_requested(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_beats_global() {
        let ctx = GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true));
        assert!(ctx.deterministic_requested());
        let ctx = ctx.with_determinism(Some(false));
        assert!(!ctx.deterministic_requested());
    }

    #[test]
    fn for_run_rekeys_schedule() {
        let ctx = GpuContext::new(GpuModel::V100, 7);
        let a = ctx.for_run(0);
        let b = ctx.for_run(1);
        assert_ne!(a.schedule, b.schedule);
        // deterministic override survives re-keying
        let c = ctx.with_determinism(Some(true)).for_run(2);
        assert_eq!(c.determinism, Some(true));
    }
}
