//! Dense row-major `f64` tensors.
//!
//! Deliberately minimal: contiguous row-major storage, explicit shape,
//! no views or broadcasting tricks — every kernel in this crate indexes
//! the flat buffer directly, and keeping the layout trivial keeps the
//! determinism analysis trivial too.

use fpna_core::rng::SplitMix64;

/// A dense, contiguous, row-major tensor of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Tensor of zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f64) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Tensor from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length does not match shape");
        Tensor { shape, data }
    }

    /// Tensor built elementwise from the flat index.
    pub fn from_fn(shape: Vec<usize>, f: impl Fn(usize) -> f64) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    /// Seeded uniform random tensor on `[0, 1)`.
    pub fn rand(shape: Vec<usize>, seed: u64) -> Self {
        let n: usize = shape.iter().product();
        let mut g = SplitMix64::new(seed);
        Tensor {
            shape,
            data: (0..n).map(|_| g.next_f64()).collect(),
        }
    }

    /// Seeded standard-normal random tensor (Box–Muller).
    pub fn randn(shape: Vec<usize>, seed: u64) -> Self {
        let n: usize = shape.iter().product();
        let mut g = SplitMix64::new(seed);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1 = (1.0 - g.next_f64()).max(f64::MIN_POSITIVE);
            let u2 = g.next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat read-only data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Reinterpret with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape changes element count");
        self.shape = shape;
        self
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn size(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// For a tensor viewed as `[rows, row_len]` along dim 0: the row
    /// length (product of trailing dims). A 1-D tensor has row length 1.
    pub fn row_len(&self) -> usize {
        self.shape.iter().skip(1).product::<usize>().max(1)
    }

    /// Borrow row `r` of the dim-0 view.
    pub fn row(&self, r: usize) -> &[f64] {
        let w = self.row_len();
        &self.data[r * w..(r + 1) * w]
    }

    /// Minimum element count before an elementwise op fans across the
    /// intra-run thread budget.
    const PAR_ELEM_FLOOR: usize = 1 << 16;

    /// Elementwise map into a new tensor.
    ///
    /// Large tensors are chunk-parallel across the intra-run thread
    /// budget; `f` is applied per element either way, so the bits
    /// never depend on the thread count.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Tensor {
        if self.data.len() < Self::PAR_ELEM_FLOOR {
            return Tensor {
                shape: self.shape.clone(),
                data: self.data.iter().map(|&x| f(x)).collect(),
            };
        }
        let mut data = vec![0.0f64; self.data.len()];
        fpna_core::executor::par_fill(&mut data, 1, |range, region| {
            for (o, &x) in region.iter_mut().zip(&self.data[range]) {
                *o = f(x);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise binary zip into a new tensor.
    ///
    /// Chunk-parallel like [`Tensor::map`]; bitwise invariant to the
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        if self.data.len() < Self::PAR_ELEM_FLOOR {
            return Tensor {
                shape: self.shape.clone(),
                data: self
                    .data
                    .iter()
                    .zip(&other.data)
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            };
        }
        let mut data = vec![0.0f64; self.data.len()];
        fpna_core::executor::par_fill(&mut data, 1, |range, region| {
            for ((o, &a), &b) in region
                .iter_mut()
                .zip(&self.data[range.clone()])
                .zip(&other.data[range])
            {
                *o = f(a, b);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// `true` when both tensors are bitwise identical (shape and data).
    pub fn bitwise_eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(vec![2, 3]);
        assert_eq!(z.numel(), 6);
        assert_eq!(z.rank(), 2);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(vec![4], 2.5);
        assert_eq!(f.data(), &[2.5; 4]);
        let v = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let g = Tensor::from_fn(vec![3], |i| i as f64);
        assert_eq!(g.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn random_tensors_are_seeded() {
        let a = Tensor::rand(vec![100], 7);
        let b = Tensor::rand(vec![100], 7);
        assert!(a.bitwise_eq(&b));
        let c = Tensor::rand(vec![100], 8);
        assert!(!a.bitwise_eq(&c));
        assert!(a.data().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn randn_moments() {
        let x = Tensor::randn(vec![50_000], 1);
        let mean = x.data().iter().sum::<f64>() / x.numel() as f64;
        let var = x.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>()
            / x.numel() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn reshape_and_rows() {
        let t = Tensor::from_fn(vec![6], |i| i as f64).reshape(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.row_len(), 3);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
        // 1-D row_len is 1
        assert_eq!(Tensor::zeros(vec![5]).row_len(), 1);
    }

    #[test]
    fn map_zip() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, 4.0, 6.0]);
        let c = a.zip(&b, |x, y| y - x);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_from_vec_panics() {
        Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "element count")]
    fn bad_reshape_panics() {
        Tensor::zeros(vec![4]).reshape(vec![3]);
    }
}
