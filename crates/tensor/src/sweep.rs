//! Hyperparameter sweeps over the non-deterministic operations —
//! the machinery behind Table 5 and the reduction-ratio experiments of
//! Figs 3–5.
//!
//! The paper's protocol (§IV): for each operation, sweep its
//! hyperparameters; per configuration run the non-deterministic kernel
//! many times against a fixed reference (the deterministic kernel when
//! one exists, else the first non-deterministic run) and record
//! `Vermv`/`Vc`. Table 5 reports min/max `Vermv` over the sweep;
//! Figs 3–5 fix the operation and sweep the *reduction ratio*
//! `R = output dim / source dim`.

use fpna_core::executor::RunExecutor;
use fpna_core::harness::{VariabilityHarness, VariabilityReport};
use fpna_core::metrics::ArrayComparison;
use fpna_core::rng::SplitMix64;
use fpna_gpu_sim::GpuModel;

use crate::context::GpuContext;
use crate::ops::conv::{conv_transpose1d, conv_transpose2d, conv_transpose3d, ConvParams};
use crate::ops::cumsum::cumsum;
use crate::ops::index::{index_add, index_copy, index_put};
use crate::ops::scatter::{scatter, scatter_reduce, ReduceOp};
use crate::tensor::Tensor;

/// Value scale used for sweep inputs: large dynamic range makes
/// rounding (and therefore commit-order sensitivity) visible.
const VALUE_SCALE: f64 = 1e6;

fn wide_random(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut g = SplitMix64::new(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|_| (g.next_f64() - 0.5) * VALUE_SCALE)
            .collect(),
    )
}

fn random_index(len: usize, bound: usize, seed: u64) -> Vec<u32> {
    let mut g = SplitMix64::new(seed);
    (0..len)
        .map(|_| g.next_below(bound.max(1) as u64) as u32)
        .collect()
}

/// A shuffled permutation of `0..len` with `dups` entries overwritten by
/// other entries' values — the "mostly unique scatter" regime in which
/// write races are rare birthday events rather than pile-ups.
fn nearly_unique_index(len: usize, dups: usize, seed: u64) -> Vec<u32> {
    let mut g = SplitMix64::new(seed);
    let mut index = fpna_core::rng::permutation(len, &mut g);
    for _ in 0..dups {
        let a = g.next_below(len as u64) as usize;
        let b = g.next_below(len as u64) as usize;
        index[a] = index[b];
    }
    index
}

/// Values in `[1, 2)`: positive and bounded, so a lost write race
/// perturbs the element by at most a factor of 2 (the relative diff is
/// O(1) and well conditioned — no division by near-zero references).
fn bounded_random(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut g = SplitMix64::new(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| 1.0 + g.next_f64()).collect())
}

/// Per-operation sweep outcome: one row of Table 5.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Operation name as listed in Table 5.
    pub op: &'static str,
    /// Smallest mean `Vermv` over all configurations.
    pub min_vermv: f64,
    /// Largest mean `Vermv` over all configurations.
    pub max_vermv: f64,
    /// Number of hyperparameter configurations visited.
    pub configs: usize,
}

fn report_mean_vermv(report: &VariabilityReport) -> f64 {
    report.vermv.mean
}

/// One (operation, hyperparameter configuration) cell of the Table 5
/// sweep, with its inputs and reference baked in at construction.
///
/// `run(i)` executes the non-deterministic kernel at **global** run
/// index `i`; since inputs and per-run seeds are pure functions of the
/// sweep seed and the index, any process can recompute any slice of
/// any cell bit-for-bit — the unit of work the `fpna-sweep` shard
/// protocol distributes.
pub struct Table5Cell {
    /// Table 5 operation this cell belongs to.
    pub op: &'static str,
    /// Stable cell name `"<op>/c<k>"` (`k` = 1-based configuration
    /// index within the op) — the row key in sharded sweeps.
    pub name: String,
    /// Whether the reference is the first non-deterministic run
    /// (paper §IV protocol for ops without a deterministic kernel).
    /// Such cells have no comparison row at global run 0.
    pub self_referenced: bool,
    reference: Vec<f64>,
    run: Box<dyn Fn(usize) -> Vec<f64> + Send + Sync>,
}

impl Table5Cell {
    /// Comparisons for the global run indices in `range`, as
    /// `(global_run, comparison)` pairs in index order. For
    /// self-referenced cells run 0 *is* the reference, so pairs start
    /// at `max(range.start, 1)`; a report assembled from any exact
    /// partition of `0..runs` equals the single-process report.
    pub fn comparisons_range(
        &self,
        range: std::ops::Range<usize>,
        executor: &RunExecutor,
    ) -> Vec<(usize, ArrayComparison)> {
        let start = if self.self_referenced {
            range.start.max(1)
        } else {
            range.start
        };
        let range = start..range.end.max(start);
        let comparisons = executor.map_run_range(range.clone(), |i| {
            ArrayComparison::compare(&self.reference, &(self.run)(i))
        });
        range.zip(comparisons).collect()
    }
}

/// Materialise every Table 5 cell, in table order. Deterministic
/// references (and, for self-referenced ops, run 0) are computed
/// eagerly here: they are pure functions of `(model, seed)` and cheap
/// next to the run sweep they anchor, so each shard process just
/// recomputes them.
pub fn table5_cells(model: GpuModel, seed: u64) -> Vec<Table5Cell> {
    let mut cells = Vec::new();

    // --- ConvTranspose1d/2d/3d ------------------------------------
    for (name, rank, sizes) in [
        ("ConvTranspose1d", 1usize, &[64usize, 256][..]),
        ("ConvTranspose2d", 2, &[8, 16][..]),
        ("ConvTranspose3d", 3, &[4, 6][..]),
    ] {
        let mut configs = 0usize;
        for &size in sizes {
            for (kernel, stride, padding) in [(2usize, 1usize, 0usize), (3, 2, 1), (5, 1, 2)] {
                if padding * 2 >= (size - 1) * stride + kernel {
                    continue;
                }
                configs += 1;
                let mut in_shape = vec![1, 3];
                in_shape.extend(std::iter::repeat_n(size, rank));
                let mut w_shape = vec![3, 4];
                w_shape.extend(std::iter::repeat_n(kernel, rank));
                let input = wide_random(in_shape, seed ^ (configs as u64) << 8);
                let weight = wide_random(w_shape, seed ^ 0xABCD ^ (configs as u64));
                let params = ConvParams::uniform(rank, stride, padding);
                let run_conv = move |c: &GpuContext, input: &Tensor, weight: &Tensor| match rank {
                    1 => conv_transpose1d(c, input, weight, None, &params),
                    2 => conv_transpose2d(c, input, weight, None, &params),
                    _ => conv_transpose3d(c, input, weight, None, &params),
                };
                let det = GpuContext::new(model, seed).with_determinism(Some(true));
                let reference = run_conv(&det, &input, &weight).expect("det conv").into_data();
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                cells.push(Table5Cell {
                    op: name,
                    name: format!("{name}/c{configs}"),
                    self_referenced: false,
                    reference,
                    run: Box::new(move |i| {
                        run_conv(&nd.for_run(i as u64), &input, &weight)
                            .expect("nd conv")
                            .into_data()
                    }),
                });
            }
        }
    }

    // --- cumsum ----------------------------------------------------
    {
        let mut configs = 0usize;
        for &n in &[128usize, 4096, 65_536] {
            configs += 1;
            let x = wide_random(vec![n], seed ^ 0x10 ^ n as u64);
            let det = GpuContext::new(model, seed).with_determinism(Some(true));
            let reference = cumsum(&det, &x).expect("det cumsum").into_data();
            let nd = GpuContext::new(model, seed).with_determinism(Some(false));
            cells.push(Table5Cell {
                op: "cumsum",
                name: format!("cumsum/c{configs}"),
                self_referenced: false,
                reference,
                run: Box::new(move |i| {
                    cumsum(&nd.for_run(i as u64), &x).expect("nd cumsum").into_data()
                }),
            });
        }
    }

    // --- index_add / index_copy / index_put ------------------------
    {
        let mut configs = 0usize;
        for &(n, rows_out) in &[(512usize, 8usize), (4096, 64), (16_384, 16)] {
            configs += 1;
            let det = GpuContext::new(model, seed).with_determinism(Some(true));
            // index_add: det reference
            {
                let src = wide_random(vec![n], seed ^ 0x20 ^ n as u64);
                let index = random_index(n, rows_out, seed ^ 0x21 ^ n as u64);
                let dst = Tensor::zeros(vec![rows_out]);
                let reference = index_add(&det, &dst, &index, &src).unwrap().into_data();
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                cells.push(Table5Cell {
                    op: "index_add",
                    name: format!("index_add/c{configs}"),
                    self_referenced: false,
                    reference,
                    run: Box::new(move |i| {
                        index_add(&nd.for_run(i as u64), &dst, &index, &src)
                            .unwrap()
                            .into_data()
                    }),
                });
            }
            // Write-race ops get a nearly-unique index tensor (a
            // permutation with a handful of duplicates) and bounded
            // positive values: races are rare and each perturbs its
            // element by O(1), so the mean variability is small — the
            // regime the paper's Table 5 magnitudes imply.
            let wide_index = nearly_unique_index(n, 4, seed ^ 0x23 ^ n as u64);
            // index_copy: det reference
            {
                let wide_dst = Tensor::zeros(vec![n]);
                let wide_index = wide_index.clone();
                let src2 = bounded_random(vec![n], seed ^ 0x22 ^ n as u64);
                let reference = index_copy(&det, &wide_dst, &wide_index, &src2)
                    .unwrap()
                    .into_data();
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                cells.push(Table5Cell {
                    op: "index_copy",
                    name: format!("index_copy/c{configs}"),
                    self_referenced: false,
                    reference,
                    run: Box::new(move |i| {
                        index_copy(&nd.for_run(i as u64), &wide_dst, &wide_index, &src2)
                            .unwrap()
                            .into_data()
                    }),
                });
            }
            // index_put: det reference (flat indices into a vector)
            {
                let wide_dst = Tensor::zeros(vec![n]);
                let values: Vec<f64> =
                    bounded_random(vec![n], seed ^ 0x24 ^ n as u64).into_data();
                let reference = index_put(&det, &wide_dst, &wide_index, &values)
                    .unwrap()
                    .into_data();
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                cells.push(Table5Cell {
                    op: "index_put",
                    name: format!("index_put/c{configs}"),
                    self_referenced: false,
                    reference,
                    run: Box::new(move |i| {
                        index_put(&nd.for_run(i as u64), &wide_dst, &wide_index, &values)
                            .unwrap()
                            .into_data()
                    }),
                });
            }
        }
    }

    // --- scatter / scatter_reduce (self-referenced: no det kernel) --
    {
        let mut configs = 0usize;
        for &(n, rows_out) in &[(512usize, 8usize), (4096, 64), (16_384, 16)] {
            configs += 1;
            // scatter is a write race: nearly-unique indices and
            // bounded values (see the index_copy comment above).
            {
                let wide_index = nearly_unique_index(n, 4, seed ^ 0x32 ^ n as u64);
                let wide_dst = Tensor::zeros(vec![n]);
                let wide_src = bounded_random(vec![n], seed ^ 0x33 ^ n as u64);
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                let run = Box::new(move |i: usize| {
                    scatter(&nd.for_run(i as u64), &wide_dst, &wide_index, &wide_src)
                        .unwrap()
                        .into_data()
                });
                cells.push(Table5Cell {
                    op: "scatter",
                    name: format!("scatter/c{configs}"),
                    self_referenced: true,
                    reference: run(0),
                    run,
                });
            }
            {
                let src = wide_random(vec![n], seed ^ 0x30 ^ n as u64);
                let index = random_index(n, rows_out, seed ^ 0x31 ^ n as u64);
                let dst = Tensor::zeros(vec![rows_out]);
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                let run = Box::new(move |i: usize| {
                    scatter_reduce(&nd.for_run(i as u64), &dst, &index, &src, ReduceOp::Sum)
                        .unwrap()
                        .into_data()
                });
                cells.push(Table5Cell {
                    op: "scatter_reduce",
                    name: format!("scatter_reduce/c{configs}"),
                    self_referenced: true,
                    reference: run(0),
                    run,
                });
            }
        }
    }
    cells
}

/// Fold per-configuration mean-`Vermv` values — in cell (sweep) order —
/// into Table 5 rows: min/max per operation, ops in first-appearance
/// order. This is the merge step of a sharded Table 5 sweep; feeding it
/// the full-sweep cell means reproduces [`table5_sweep`] bitwise.
pub fn table5_reduce(cell_means: &[(&'static str, f64)]) -> Vec<SweepRow> {
    let mut rows: Vec<SweepRow> = Vec::new();
    for &(op, v) in cell_means {
        let row = match rows.iter_mut().find(|r| r.op == op) {
            Some(r) => r,
            None => {
                rows.push(SweepRow {
                    op,
                    min_vermv: f64::INFINITY,
                    max_vermv: f64::NEG_INFINITY,
                    configs: 0,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.min_vermv = row.min_vermv.min(v);
        row.max_vermv = row.max_vermv.max(v);
        row.configs += 1;
    }
    rows
}

/// Run the full Table 5 sweep. `runs` non-deterministic executions per
/// configuration (the paper used 10 000 on an H100; the default bench
/// uses fewer and documents the scaling). Runs execute through
/// `executor`; the rows are bitwise identical at any thread count.
///
/// Equivalent to walking [`table5_cells`] over the full `0..runs`
/// range and folding with [`table5_reduce`] — the decomposition the
/// `fpna-sweep` coordinator uses to shard this sweep across processes.
pub fn table5_sweep(
    model: GpuModel,
    runs: usize,
    seed: u64,
    executor: &RunExecutor,
) -> Vec<SweepRow> {
    let cells = table5_cells(model, seed);
    let means: Vec<(&'static str, f64)> = cells
        .iter()
        .map(|cell| {
            let comparisons: Vec<ArrayComparison> = cell
                .comparisons_range(0..runs, executor)
                .into_iter()
                .map(|(_, c)| c)
                .collect();
            let report = VariabilityReport::from_comparisons(&comparisons);
            (cell.op, report_mean_vermv(&report))
        })
        .collect();
    table5_reduce(&means)
}

/// Which operation a reduction-ratio experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatioOp {
    /// 1-D `scatter_reduce` with a sum reduction.
    ScatterReduceSum,
    /// 1-D `scatter_reduce` with a mean reduction.
    ScatterReduceMean,
    /// 2-D `index_add` over square inputs.
    IndexAdd,
}

impl RatioOp {
    /// Label used in the figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            RatioOp::ScatterReduceSum => "scatter reduce(sum)",
            RatioOp::ScatterReduceMean => "scatter reduce(mean)",
            RatioOp::IndexAdd => "index add",
        }
    }
}

/// One cell of the Figs 3–5 experiments: fix the op, the input
/// dimension and the reduction ratio `R = output/source`, run the ND
/// kernel `runs` times and report the variability.
///
/// `scatter_reduce` is self-referenced (no deterministic kernel);
/// `index_add` compares against its deterministic kernel — exactly the
/// paper's protocol.
pub fn ratio_experiment(
    model: GpuModel,
    op: RatioOp,
    input_dim: usize,
    ratio: f64,
    runs: usize,
    seed: u64,
    executor: &RunExecutor,
) -> VariabilityReport {
    assert!(ratio > 0.0 && ratio <= 1.0, "reduction ratio in (0, 1]");
    let harness = VariabilityHarness::new(runs).with_executor(*executor);
    let out_rows = ((input_dim as f64 * ratio).round() as usize).max(1);
    let nd = GpuContext::new(model, seed).with_determinism(Some(false));
    match op {
        RatioOp::ScatterReduceSum | RatioOp::ScatterReduceMean => {
            let reduce = if op == RatioOp::ScatterReduceSum {
                ReduceOp::Sum
            } else {
                ReduceOp::Mean
            };
            let src = wide_random(vec![input_dim], seed ^ 0x40);
            let index = random_index(input_dim, out_rows, seed ^ 0x41);
            let dst = Tensor::zeros(vec![out_rows]);
            harness.array_self_referenced(|i| {
                scatter_reduce(&nd.for_run(i as u64), &dst, &index, &src, reduce)
                    .unwrap()
                    .into_data()
            })
        }
        RatioOp::IndexAdd => {
            // 2-D square source, reduced along dim 0.
            let src = wide_random(vec![input_dim, input_dim], seed ^ 0x42);
            let index = random_index(input_dim, out_rows, seed ^ 0x43);
            let dst = Tensor::zeros(vec![out_rows, input_dim]);
            let det = GpuContext::new(model, seed).with_determinism(Some(true));
            let reference = index_add(&det, &dst, &index, &src).unwrap().into_data();
            harness.array(&reference, |i| {
                index_add(&nd.for_run(i as u64), &dst, &index, &src)
                    .unwrap()
                    .into_data()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_sweep_smoke() {
        let rows = table5_sweep(GpuModel::H100, 3, 123, &RunExecutor::serial());
        assert_eq!(rows.len(), 9, "one row per Table 5 operation");
        for row in &rows {
            assert!(row.configs > 0, "{}", row.op);
            assert!(
                row.min_vermv <= row.max_vermv,
                "{}: {} > {}",
                row.op,
                row.min_vermv,
                row.max_vermv
            );
            assert!(row.max_vermv.is_finite());
        }
        // accumulating ops must show nonzero variability somewhere
        let max_of = |name: &str| {
            rows.iter()
                .find(|r| r.op == name)
                .map(|r| r.max_vermv)
                .unwrap()
        };
        assert!(max_of("index_add") > 0.0);
        assert!(max_of("scatter_reduce") > 0.0);
    }

    #[test]
    fn ratio_experiment_scatter_sum() {
        let report = ratio_experiment(
            GpuModel::H100,
            RatioOp::ScatterReduceSum,
            2000,
            0.5,
            5,
            7,
            &RunExecutor::serial(),
        );
        // self-referenced: runs-1 comparisons
        assert_eq!(report.per_run.len(), 4);
        assert!(report.vc.mean >= 0.0);
    }

    #[test]
    fn ratio_experiment_index_add_has_det_reference() {
        let report = ratio_experiment(
            GpuModel::H100,
            RatioOp::IndexAdd,
            64,
            0.5,
            5,
            8,
            &RunExecutor::serial(),
        );
        assert_eq!(report.per_run.len(), 5);
        // with duplicates and wide values the ND kernel should differ
        // from the deterministic reference in at least one run
        assert!(report.vc.max > 0.0);
    }

    fn reports_identical(a: &VariabilityReport, b: &VariabilityReport) -> bool {
        a.per_run.len() == b.per_run.len()
            && a.bitwise_identical_runs == b.bitwise_identical_runs
            && a.per_run.iter().zip(&b.per_run).all(|(x, y)| {
                x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits()
            })
            && a.vermv.mean.to_bits() == b.vermv.mean.to_bits()
            && a.vc.std_dev.to_bits() == b.vc.std_dev.to_bits()
            && a.max_abs_diff.max.to_bits() == b.max_abs_diff.max.to_bits()
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        // The tentpole guarantee: parallel execution is bitwise
        // indistinguishable from serial, per report and per row.
        let serial = ratio_experiment(
            GpuModel::H100,
            RatioOp::IndexAdd,
            48,
            0.5,
            9,
            31,
            &RunExecutor::serial(),
        );
        for threads in [2usize, 4, 7] {
            let parallel = ratio_experiment(
                GpuModel::H100,
                RatioOp::IndexAdd,
                48,
                0.5,
                9,
                31,
                &RunExecutor::new(threads),
            );
            assert!(
                reports_identical(&serial, &parallel),
                "ratio_experiment diverged at threads={threads}"
            );
        }

        let rows_serial = table5_sweep(GpuModel::H100, 3, 123, &RunExecutor::serial());
        let rows_parallel = table5_sweep(GpuModel::H100, 3, 123, &RunExecutor::new(4));
        assert_eq!(rows_serial.len(), rows_parallel.len());
        for (a, b) in rows_serial.iter().zip(&rows_parallel) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.min_vermv.to_bits(), b.min_vermv.to_bits(), "{}", a.op);
            assert_eq!(a.max_vermv.to_bits(), b.max_vermv.to_bits(), "{}", a.op);
            assert_eq!(a.configs, b.configs);
        }
    }

    #[test]
    #[should_panic(expected = "reduction ratio")]
    fn bad_ratio_panics() {
        ratio_experiment(
            GpuModel::H100,
            RatioOp::IndexAdd,
            10,
            0.0,
            2,
            1,
            &RunExecutor::serial(),
        );
    }

    #[test]
    fn labels() {
        assert_eq!(RatioOp::ScatterReduceSum.label(), "scatter reduce(sum)");
        assert_eq!(RatioOp::IndexAdd.label(), "index add");
    }
}
