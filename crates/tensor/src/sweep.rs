//! Hyperparameter sweeps over the non-deterministic operations —
//! the machinery behind Table 5 and the reduction-ratio experiments of
//! Figs 3–5.
//!
//! The paper's protocol (§IV): for each operation, sweep its
//! hyperparameters; per configuration run the non-deterministic kernel
//! many times against a fixed reference (the deterministic kernel when
//! one exists, else the first non-deterministic run) and record
//! `Vermv`/`Vc`. Table 5 reports min/max `Vermv` over the sweep;
//! Figs 3–5 fix the operation and sweep the *reduction ratio*
//! `R = output dim / source dim`.

use fpna_core::executor::RunExecutor;
use fpna_core::harness::{VariabilityHarness, VariabilityReport};
use fpna_core::rng::SplitMix64;
use fpna_gpu_sim::GpuModel;

use crate::context::GpuContext;
use crate::ops::conv::{conv_transpose1d, conv_transpose2d, conv_transpose3d, ConvParams};
use crate::ops::cumsum::cumsum;
use crate::ops::index::{index_add, index_copy, index_put};
use crate::ops::scatter::{scatter, scatter_reduce, ReduceOp};
use crate::tensor::Tensor;

/// Value scale used for sweep inputs: large dynamic range makes
/// rounding (and therefore commit-order sensitivity) visible.
const VALUE_SCALE: f64 = 1e6;

fn wide_random(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut g = SplitMix64::new(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|_| (g.next_f64() - 0.5) * VALUE_SCALE)
            .collect(),
    )
}

fn random_index(len: usize, bound: usize, seed: u64) -> Vec<u32> {
    let mut g = SplitMix64::new(seed);
    (0..len)
        .map(|_| g.next_below(bound.max(1) as u64) as u32)
        .collect()
}

/// A shuffled permutation of `0..len` with `dups` entries overwritten by
/// other entries' values — the "mostly unique scatter" regime in which
/// write races are rare birthday events rather than pile-ups.
fn nearly_unique_index(len: usize, dups: usize, seed: u64) -> Vec<u32> {
    let mut g = SplitMix64::new(seed);
    let mut index = fpna_core::rng::permutation(len, &mut g);
    for _ in 0..dups {
        let a = g.next_below(len as u64) as usize;
        let b = g.next_below(len as u64) as usize;
        index[a] = index[b];
    }
    index
}

/// Values in `[1, 2)`: positive and bounded, so a lost write race
/// perturbs the element by at most a factor of 2 (the relative diff is
/// O(1) and well conditioned — no division by near-zero references).
fn bounded_random(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut g = SplitMix64::new(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| 1.0 + g.next_f64()).collect())
}

/// Per-operation sweep outcome: one row of Table 5.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Operation name as listed in Table 5.
    pub op: &'static str,
    /// Smallest mean `Vermv` over all configurations.
    pub min_vermv: f64,
    /// Largest mean `Vermv` over all configurations.
    pub max_vermv: f64,
    /// Number of hyperparameter configurations visited.
    pub configs: usize,
}

fn report_mean_vermv(report: &VariabilityReport) -> f64 {
    report.vermv.mean
}

/// Run the full Table 5 sweep. `runs` non-deterministic executions per
/// configuration (the paper used 10 000 on an H100; the default bench
/// uses fewer and documents the scaling). Runs execute through
/// `executor`; the rows are bitwise identical at any thread count.
pub fn table5_sweep(
    model: GpuModel,
    runs: usize,
    seed: u64,
    executor: &RunExecutor,
) -> Vec<SweepRow> {
    let harness = VariabilityHarness::new(runs).with_executor(*executor);
    let mut rows = Vec::new();

    // --- ConvTranspose1d/2d/3d ------------------------------------
    for (name, rank, sizes) in [
        ("ConvTranspose1d", 1usize, &[64usize, 256][..]),
        ("ConvTranspose2d", 2, &[8, 16][..]),
        ("ConvTranspose3d", 3, &[4, 6][..]),
    ] {
        let mut min_v = f64::INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        let mut configs = 0usize;
        for &size in sizes {
            for (kernel, stride, padding) in [(2usize, 1usize, 0usize), (3, 2, 1), (5, 1, 2)] {
                if padding * 2 >= (size - 1) * stride + kernel {
                    continue;
                }
                configs += 1;
                let mut in_shape = vec![1, 3];
                in_shape.extend(std::iter::repeat_n(size, rank));
                let mut w_shape = vec![3, 4];
                w_shape.extend(std::iter::repeat_n(kernel, rank));
                let input = wide_random(in_shape, seed ^ (configs as u64) << 8);
                let weight = wide_random(w_shape, seed ^ 0xABCD ^ (configs as u64));
                let params = ConvParams::uniform(rank, stride, padding);
                let ctx = GpuContext::new(model, seed).with_determinism(Some(true));
                let run_conv = |c: &GpuContext| match rank {
                    1 => conv_transpose1d(c, &input, &weight, None, &params),
                    2 => conv_transpose2d(c, &input, &weight, None, &params),
                    _ => conv_transpose3d(c, &input, &weight, None, &params),
                };
                let reference = run_conv(&ctx).expect("det conv").into_data();
                let nd = GpuContext::new(model, seed).with_determinism(Some(false));
                let report = harness.array(&reference, |i| {
                    run_conv(&nd.for_run(i as u64)).expect("nd conv").into_data()
                });
                let v = report_mean_vermv(&report);
                min_v = min_v.min(v);
                max_v = max_v.max(v);
            }
        }
        rows.push(SweepRow {
            op: name,
            min_vermv: min_v,
            max_vermv: max_v,
            configs,
        });
    }

    // --- cumsum ----------------------------------------------------
    {
        let mut min_v = f64::INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        let mut configs = 0;
        for &n in &[128usize, 4096, 65_536] {
            configs += 1;
            let x = wide_random(vec![n], seed ^ 0x10 ^ n as u64);
            let det = GpuContext::new(model, seed).with_determinism(Some(true));
            let reference = cumsum(&det, &x).expect("det cumsum").into_data();
            let nd = GpuContext::new(model, seed).with_determinism(Some(false));
            let report = harness.array(&reference, |i| {
                cumsum(&nd.for_run(i as u64), &x).expect("nd cumsum").into_data()
            });
            let v = report_mean_vermv(&report);
            min_v = min_v.min(v);
            max_v = max_v.max(v);
        }
        rows.push(SweepRow {
            op: "cumsum",
            min_vermv: min_v,
            max_vermv: max_v,
            configs,
        });
    }

    // --- index_add / index_copy / index_put ------------------------
    {
        let mut rows_ic: Vec<(&'static str, f64, f64, usize)> = vec![
            ("index_add", f64::INFINITY, f64::NEG_INFINITY, 0),
            ("index_copy", f64::INFINITY, f64::NEG_INFINITY, 0),
            ("index_put", f64::INFINITY, f64::NEG_INFINITY, 0),
        ];
        for &(n, rows_out) in &[(512usize, 8usize), (4096, 64), (16_384, 16)] {
            let src = wide_random(vec![n], seed ^ 0x20 ^ n as u64);
            let index = random_index(n, rows_out, seed ^ 0x21 ^ n as u64);
            let dst = Tensor::zeros(vec![rows_out]);
            let det = GpuContext::new(model, seed).with_determinism(Some(true));
            let nd = GpuContext::new(model, seed).with_determinism(Some(false));
            // index_add: det reference
            {
                let reference = index_add(&det, &dst, &index, &src).unwrap().into_data();
                let report = harness.array(&reference, |i| {
                    index_add(&nd.for_run(i as u64), &dst, &index, &src)
                        .unwrap()
                        .into_data()
                });
                let v = report_mean_vermv(&report);
                rows_ic[0].1 = rows_ic[0].1.min(v);
                rows_ic[0].2 = rows_ic[0].2.max(v);
                rows_ic[0].3 += 1;
            }
            // Write-race ops get a nearly-unique index tensor (a
            // permutation with a handful of duplicates) and bounded
            // positive values: races are rare and each perturbs its
            // element by O(1), so the mean variability is small — the
            // regime the paper's Table 5 magnitudes imply.
            let wide_index = nearly_unique_index(n, 4, seed ^ 0x23 ^ n as u64);
            let wide_dst = Tensor::zeros(vec![n]);
            // index_copy: det reference
            {
                let src2 = bounded_random(vec![n], seed ^ 0x22 ^ n as u64);
                let reference = index_copy(&det, &wide_dst, &wide_index, &src2)
                    .unwrap()
                    .into_data();
                let report = harness.array(&reference, |i| {
                    index_copy(&nd.for_run(i as u64), &wide_dst, &wide_index, &src2)
                        .unwrap()
                        .into_data()
                });
                let v = report_mean_vermv(&report);
                rows_ic[1].1 = rows_ic[1].1.min(v);
                rows_ic[1].2 = rows_ic[1].2.max(v);
                rows_ic[1].3 += 1;
            }
            // index_put: det reference (flat indices into a vector)
            {
                let values: Vec<f64> =
                    bounded_random(vec![n], seed ^ 0x24 ^ n as u64).into_data();
                let reference = index_put(&det, &wide_dst, &wide_index, &values)
                    .unwrap()
                    .into_data();
                let report = harness.array(&reference, |i| {
                    index_put(&nd.for_run(i as u64), &wide_dst, &wide_index, &values)
                        .unwrap()
                        .into_data()
                });
                let v = report_mean_vermv(&report);
                rows_ic[2].1 = rows_ic[2].1.min(v);
                rows_ic[2].2 = rows_ic[2].2.max(v);
                rows_ic[2].3 += 1;
            }
        }
        for (op, min_v, max_v, configs) in rows_ic {
            rows.push(SweepRow {
                op,
                min_vermv: min_v,
                max_vermv: max_v,
                configs,
            });
        }
    }

    // --- scatter / scatter_reduce (self-referenced: no det kernel) --
    {
        let mut s_min = f64::INFINITY;
        let mut s_max = f64::NEG_INFINITY;
        let mut sr_min = f64::INFINITY;
        let mut sr_max = f64::NEG_INFINITY;
        let mut configs = 0;
        for &(n, rows_out) in &[(512usize, 8usize), (4096, 64), (16_384, 16)] {
            configs += 1;
            let src = wide_random(vec![n], seed ^ 0x30 ^ n as u64);
            let index = random_index(n, rows_out, seed ^ 0x31 ^ n as u64);
            let dst = Tensor::zeros(vec![rows_out]);
            let nd = GpuContext::new(model, seed).with_determinism(Some(false));
            // scatter is a write race: nearly-unique indices and
            // bounded values (see the index_copy comment above).
            let wide_index = nearly_unique_index(n, 4, seed ^ 0x32 ^ n as u64);
            let wide_dst = Tensor::zeros(vec![n]);
            let wide_src = bounded_random(vec![n], seed ^ 0x33 ^ n as u64);
            let report = harness.array_self_referenced(|i| {
                scatter(&nd.for_run(i as u64), &wide_dst, &wide_index, &wide_src)
                    .unwrap()
                    .into_data()
            });
            let v = report_mean_vermv(&report);
            s_min = s_min.min(v);
            s_max = s_max.max(v);
            let report = harness.array_self_referenced(|i| {
                scatter_reduce(&nd.for_run(i as u64), &dst, &index, &src, ReduceOp::Sum)
                    .unwrap()
                    .into_data()
            });
            let v = report_mean_vermv(&report);
            sr_min = sr_min.min(v);
            sr_max = sr_max.max(v);
        }
        rows.push(SweepRow {
            op: "scatter",
            min_vermv: s_min,
            max_vermv: s_max,
            configs,
        });
        rows.push(SweepRow {
            op: "scatter_reduce",
            min_vermv: sr_min,
            max_vermv: sr_max,
            configs,
        });
    }
    rows
}

/// Which operation a reduction-ratio experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatioOp {
    /// 1-D `scatter_reduce` with a sum reduction.
    ScatterReduceSum,
    /// 1-D `scatter_reduce` with a mean reduction.
    ScatterReduceMean,
    /// 2-D `index_add` over square inputs.
    IndexAdd,
}

impl RatioOp {
    /// Label used in the figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            RatioOp::ScatterReduceSum => "scatter reduce(sum)",
            RatioOp::ScatterReduceMean => "scatter reduce(mean)",
            RatioOp::IndexAdd => "index add",
        }
    }
}

/// One cell of the Figs 3–5 experiments: fix the op, the input
/// dimension and the reduction ratio `R = output/source`, run the ND
/// kernel `runs` times and report the variability.
///
/// `scatter_reduce` is self-referenced (no deterministic kernel);
/// `index_add` compares against its deterministic kernel — exactly the
/// paper's protocol.
pub fn ratio_experiment(
    model: GpuModel,
    op: RatioOp,
    input_dim: usize,
    ratio: f64,
    runs: usize,
    seed: u64,
    executor: &RunExecutor,
) -> VariabilityReport {
    assert!(ratio > 0.0 && ratio <= 1.0, "reduction ratio in (0, 1]");
    let harness = VariabilityHarness::new(runs).with_executor(*executor);
    let out_rows = ((input_dim as f64 * ratio).round() as usize).max(1);
    let nd = GpuContext::new(model, seed).with_determinism(Some(false));
    match op {
        RatioOp::ScatterReduceSum | RatioOp::ScatterReduceMean => {
            let reduce = if op == RatioOp::ScatterReduceSum {
                ReduceOp::Sum
            } else {
                ReduceOp::Mean
            };
            let src = wide_random(vec![input_dim], seed ^ 0x40);
            let index = random_index(input_dim, out_rows, seed ^ 0x41);
            let dst = Tensor::zeros(vec![out_rows]);
            harness.array_self_referenced(|i| {
                scatter_reduce(&nd.for_run(i as u64), &dst, &index, &src, reduce)
                    .unwrap()
                    .into_data()
            })
        }
        RatioOp::IndexAdd => {
            // 2-D square source, reduced along dim 0.
            let src = wide_random(vec![input_dim, input_dim], seed ^ 0x42);
            let index = random_index(input_dim, out_rows, seed ^ 0x43);
            let dst = Tensor::zeros(vec![out_rows, input_dim]);
            let det = GpuContext::new(model, seed).with_determinism(Some(true));
            let reference = index_add(&det, &dst, &index, &src).unwrap().into_data();
            harness.array(&reference, |i| {
                index_add(&nd.for_run(i as u64), &dst, &index, &src)
                    .unwrap()
                    .into_data()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_sweep_smoke() {
        let rows = table5_sweep(GpuModel::H100, 3, 123, &RunExecutor::serial());
        assert_eq!(rows.len(), 9, "one row per Table 5 operation");
        for row in &rows {
            assert!(row.configs > 0, "{}", row.op);
            assert!(
                row.min_vermv <= row.max_vermv,
                "{}: {} > {}",
                row.op,
                row.min_vermv,
                row.max_vermv
            );
            assert!(row.max_vermv.is_finite());
        }
        // accumulating ops must show nonzero variability somewhere
        let max_of = |name: &str| {
            rows.iter()
                .find(|r| r.op == name)
                .map(|r| r.max_vermv)
                .unwrap()
        };
        assert!(max_of("index_add") > 0.0);
        assert!(max_of("scatter_reduce") > 0.0);
    }

    #[test]
    fn ratio_experiment_scatter_sum() {
        let report = ratio_experiment(
            GpuModel::H100,
            RatioOp::ScatterReduceSum,
            2000,
            0.5,
            5,
            7,
            &RunExecutor::serial(),
        );
        // self-referenced: runs-1 comparisons
        assert_eq!(report.per_run.len(), 4);
        assert!(report.vc.mean >= 0.0);
    }

    #[test]
    fn ratio_experiment_index_add_has_det_reference() {
        let report = ratio_experiment(
            GpuModel::H100,
            RatioOp::IndexAdd,
            64,
            0.5,
            5,
            8,
            &RunExecutor::serial(),
        );
        assert_eq!(report.per_run.len(), 5);
        // with duplicates and wide values the ND kernel should differ
        // from the deterministic reference in at least one run
        assert!(report.vc.max > 0.0);
    }

    fn reports_identical(a: &VariabilityReport, b: &VariabilityReport) -> bool {
        a.per_run.len() == b.per_run.len()
            && a.bitwise_identical_runs == b.bitwise_identical_runs
            && a.per_run.iter().zip(&b.per_run).all(|(x, y)| {
                x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits()
            })
            && a.vermv.mean.to_bits() == b.vermv.mean.to_bits()
            && a.vc.std_dev.to_bits() == b.vc.std_dev.to_bits()
            && a.max_abs_diff.max.to_bits() == b.max_abs_diff.max.to_bits()
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        // The tentpole guarantee: parallel execution is bitwise
        // indistinguishable from serial, per report and per row.
        let serial = ratio_experiment(
            GpuModel::H100,
            RatioOp::IndexAdd,
            48,
            0.5,
            9,
            31,
            &RunExecutor::serial(),
        );
        for threads in [2usize, 4, 7] {
            let parallel = ratio_experiment(
                GpuModel::H100,
                RatioOp::IndexAdd,
                48,
                0.5,
                9,
                31,
                &RunExecutor::new(threads),
            );
            assert!(
                reports_identical(&serial, &parallel),
                "ratio_experiment diverged at threads={threads}"
            );
        }

        let rows_serial = table5_sweep(GpuModel::H100, 3, 123, &RunExecutor::serial());
        let rows_parallel = table5_sweep(GpuModel::H100, 3, 123, &RunExecutor::new(4));
        assert_eq!(rows_serial.len(), rows_parallel.len());
        for (a, b) in rows_serial.iter().zip(&rows_parallel) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.min_vermv.to_bits(), b.min_vermv.to_bits(), "{}", a.op);
            assert_eq!(a.max_vermv.to_bits(), b.max_vermv.to_bits(), "{}", a.op);
            assert_eq!(a.configs, b.configs);
        }
    }

    #[test]
    #[should_panic(expected = "reduction ratio")]
    fn bad_ratio_panics() {
        ratio_experiment(
            GpuModel::H100,
            RatioOp::IndexAdd,
            10,
            0.0,
            2,
            1,
            &RunExecutor::serial(),
        );
    }

    #[test]
    fn labels() {
        assert_eq!(RatioOp::ScatterReduceSum.label(), "scatter reduce(sum)");
        assert_eq!(RatioOp::IndexAdd.label(), "index add");
    }
}
