//! Kernel-runtime model for the framework-level operations — the GPU
//! columns of Table 6.
//!
//! Framework kernels pay costs the raw reduction kernels of
//! `fpna-gpu-sim` do not: dispatcher overhead, index validation, and —
//! for the *deterministic* `index_add` — a sort-based reformulation
//! (sort contributions by destination, then segmented reduce), which is
//! why PyTorch's deterministic `index_add` is an order of magnitude
//! slower than the atomic version (161 µs vs 12.8 µs in Table 6).
//!
//! `scatter_reduce` has no deterministic kernel, so its deterministic
//! time is `None` — rendered as "N/A", as in the paper.

use fpna_gpu_sim::profile::DeviceProfile;

/// The operations timed in Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedOp {
    /// `scatter_reduce` with sum reduction (input dim 1000, R = 0.5).
    ScatterReduceSum,
    /// `scatter_reduce` with mean reduction.
    ScatterReduceMean,
    /// `index_add` (input 1000 × 1000, R = 0.5).
    IndexAdd,
}

impl TimedOp {
    /// Row label.
    pub fn label(&self) -> &'static str {
        match self {
            TimedOp::ScatterReduceSum => "scatter_reduce (sum)",
            TimedOp::ScatterReduceMean => "scatter_reduce (mean)",
            TimedOp::IndexAdd => "index_add",
        }
    }
}

/// Fixed framework dispatch overhead per kernel family, in µs.
/// Calibrated against the H100 column of Table 6; scatter ops run a
/// multi-kernel plan (index checks + reduce + optional divide), hence
/// the larger constants.
fn dispatch_us(op: TimedOp, deterministic: bool) -> Option<f64> {
    match (op, deterministic) {
        (TimedOp::ScatterReduceSum, false) => Some(30.0),
        (TimedOp::ScatterReduceMean, false) => Some(74.0),
        (TimedOp::ScatterReduceSum | TimedOp::ScatterReduceMean, true) => None, // no det kernel
        (TimedOp::IndexAdd, false) => Some(4.0),
        (TimedOp::IndexAdd, true) => Some(30.0),
    }
}

/// Memory passes over the contribution stream: the ND kernels touch
/// source + destination once; the deterministic sort-based `index_add`
/// pays radix-sort passes plus the segmented reduce.
fn passes(op: TimedOp, deterministic: bool) -> f64 {
    match (op, deterministic) {
        (TimedOp::IndexAdd, true) => 16.0,
        (_, _) => 1.1,
    }
}

/// Estimated kernel time in µs for `n_contributions` scattered
/// elements. `None` when no kernel exists for the requested mode.
pub fn op_time_us(
    profile: &DeviceProfile,
    op: TimedOp,
    n_contributions: usize,
    deterministic: bool,
) -> Option<f64> {
    let fixed = dispatch_us(op, deterministic)?;
    let bytes = n_contributions as f64 * 8.0;
    let stream_us = bytes * passes(op, deterministic) / profile.effective_bandwidth_gbps / 1e3;
    Some(fixed + stream_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpna_gpu_sim::profile::GpuModel;

    fn h100() -> DeviceProfile {
        DeviceProfile::new(GpuModel::H100)
    }

    #[test]
    fn table6_h100_shape() {
        // scatter_reduce sum ND: ~30 µs at n = 1000 (paper: 30.2)
        let t = op_time_us(&h100(), TimedOp::ScatterReduceSum, 1_000, false).unwrap();
        assert!((t - 30.2).abs() < 2.0, "{t}");
        // scatter_reduce mean ND: ~75 µs (paper: 74.9)
        let t = op_time_us(&h100(), TimedOp::ScatterReduceMean, 1_000, false).unwrap();
        assert!((t - 74.9).abs() < 3.0, "{t}");
        // index_add ND at 1e6 contributions: ~12.8 µs
        let t_nd = op_time_us(&h100(), TimedOp::IndexAdd, 1_000_000, false).unwrap();
        assert!((t_nd - 12.8).abs() < 3.0, "{t_nd}");
        // det index_add is an order of magnitude slower (paper: 161)
        let t_d = op_time_us(&h100(), TimedOp::IndexAdd, 1_000_000, true).unwrap();
        assert!(t_d / t_nd > 8.0, "{t_d} vs {t_nd}");
        assert!((t_d - 161.0).abs() < 35.0, "{t_d}");
    }

    #[test]
    fn det_scatter_reduce_is_na() {
        assert!(op_time_us(&h100(), TimedOp::ScatterReduceSum, 1_000, true).is_none());
        assert!(op_time_us(&h100(), TimedOp::ScatterReduceMean, 1_000, true).is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(TimedOp::IndexAdd.label(), "index_add");
    }
}
