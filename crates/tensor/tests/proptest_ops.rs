//! Property tests for the tensor kernels: shape laws, conservation
//! laws, D/ND value agreement, and order-invariance of the exactly
//! associative reductions.

use proptest::collection::vec;
use proptest::prelude::*;

use fpna_gpu_sim::GpuModel;
use fpna_tensor::context::GpuContext;
use fpna_tensor::ops::conv::{conv_transpose1d, ConvParams};
use fpna_tensor::ops::cumsum::cumsum;
use fpna_tensor::ops::index::{gather_rows, index_add};
use fpna_tensor::ops::scatter::{reference_scatter_reduce, scatter_reduce, ReduceOp};
use fpna_tensor::Tensor;

fn det_ctx() -> GpuContext {
    GpuContext::new(GpuModel::H100, 1).with_determinism(Some(true))
}

fn nd_ctx(seed: u64) -> GpuContext {
    GpuContext::new(GpuModel::H100, seed).with_determinism(Some(false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ConvTranspose1d obeys the PyTorch output-shape law and matches
    /// between its deterministic and non-deterministic kernels.
    #[test]
    fn conv1d_shape_and_agreement(
        len in 2usize..24,
        kernel in 1usize..5,
        stride in 1usize..3,
        c_in in 1usize..3,
        c_out in 1usize..3,
        seed in any::<u64>(),
    ) {
        let input = Tensor::rand(vec![1, c_in, len], seed).map(|u| u * 2.0 - 1.0);
        let weight = Tensor::rand(vec![c_in, c_out, kernel], seed ^ 1).map(|u| u * 2.0 - 1.0);
        let params = ConvParams::uniform(1, stride, 0);
        let det = conv_transpose1d(&det_ctx(), &input, &weight, None, &params).unwrap();
        let expect_len = (len - 1) * stride + kernel;
        prop_assert_eq!(det.shape(), &[1, c_out, expect_len][..]);
        let nd = conv_transpose1d(&nd_ctx(seed), &input, &weight, None, &params).unwrap();
        for (a, b) in det.data().iter().zip(nd.data()) {
            prop_assert!((a - b).abs() <= 1e-10 * a.abs().max(1.0) + 1e-12);
        }
    }

    /// index_add conserves the total sum (up to rounding) and is a
    /// no-op for an empty source.
    #[test]
    fn index_add_conservation(
        values in vec(-1e6..1e6f64, 0..300),
        rows in 1usize..16,
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let mut rng = fpna_core::rng::SplitMix64::new(seed);
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        let src = Tensor::from_vec(vec![n], values.clone());
        let dst = Tensor::zeros(vec![rows]);
        for ctx in [det_ctx(), nd_ctx(seed)] {
            let out = index_add(&ctx, &dst, &index, &src).unwrap();
            let before = fpna_summation::exact::exact_sum(&values);
            let after = fpna_summation::exact::exact_sum(out.data());
            let scale: f64 = values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
            prop_assert!((before - after).abs() <= 1e-10 * scale);
        }
    }

    /// gather(index) then flattening reads exactly the selected rows.
    #[test]
    fn gather_selects(rows in 1usize..16, cols in 1usize..8, picks in vec(0usize..16, 0..32), seed in any::<u64>()) {
        let src = Tensor::rand(vec![rows, cols], seed);
        let index: Vec<u32> = picks.iter().map(|&p| (p % rows) as u32).collect();
        let out = gather_rows(&src, &index).unwrap();
        prop_assert_eq!(out.shape()[0], index.len());
        for (k, &i) in index.iter().enumerate() {
            prop_assert_eq!(out.row(k), src.row(i as usize));
        }
    }

    /// cumsum's last element equals the serial total; deterministic
    /// mode is bitwise equal to a plain scan.
    #[test]
    fn cumsum_total(values in vec(-1e6..1e6f64, 1..600)) {
        let x = Tensor::from_vec(vec![values.len()], values.clone());
        let out = cumsum(&det_ctx(), &x).unwrap();
        let mut acc = 0.0;
        for (i, &v) in values.iter().enumerate() {
            acc += v;
            prop_assert_eq!(out.data()[i].to_bits(), acc.to_bits());
        }
    }

    /// amax/amin scatter reductions are bitwise order-invariant (exact
    /// associativity), while the ND kernel still matches the reference
    /// *values* for sum up to rounding.
    #[test]
    fn scatter_reduce_order_invariance(
        values in vec(-1e6..1e6f64, 1..300),
        rows in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = values.len();
        let mut rng = fpna_core::rng::SplitMix64::new(seed);
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        let src = Tensor::from_vec(vec![n], values);
        let dst = Tensor::zeros(vec![rows]);
        for op in [ReduceOp::Amax, ReduceOp::Amin] {
            let reference = reference_scatter_reduce(&dst, &index, &src, op).unwrap();
            let nd = scatter_reduce(&nd_ctx(seed), &dst, &index, &src, op).unwrap();
            prop_assert!(nd.bitwise_eq(&reference), "{:?} must be order-invariant", op);
        }
        let reference = reference_scatter_reduce(&dst, &index, &src, ReduceOp::Sum).unwrap();
        let nd = scatter_reduce(&nd_ctx(seed), &dst, &index, &src, ReduceOp::Sum).unwrap();
        for (a, b) in reference.data().iter().zip(nd.data()) {
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }

    /// Elementwise ops, row gathers and the deterministic transposed
    /// convolution are bitwise invariant to the intra-run thread
    /// budget.
    #[test]
    fn tensor_ops_are_intra_thread_invariant(
        seed in any::<u64>(),
        n in 1usize..50_000,
        c_in in 1usize..4,
        c_out in 1usize..4,
        len in 1usize..40,
        k in 1usize..4,
    ) {
        use fpna_core::executor::{intra_hint_test_guard, set_intra_threads};
        let _hint = intra_hint_test_guard();
        let x = Tensor::rand(vec![n], seed).map(|v| v * 1e6 - 5e5);
        let y = Tensor::rand(vec![n], seed ^ 1);
        let rows = 64usize.min(n);
        let mut rng = fpna_core::rng::SplitMix64::new(seed ^ 2);
        let index: Vec<u32> = (0..n).map(|_| rng.next_below(rows as u64) as u32).collect();
        let table = Tensor::rand(vec![rows, 3], seed ^ 3);
        let cin = Tensor::rand(vec![2, c_in, len], seed ^ 4);
        let w = Tensor::rand(vec![c_in, c_out, k], seed ^ 5);
        let params = ConvParams::uniform(1, 1, 0);

        set_intra_threads(1);
        let map_ref = x.map(|v| v.sqrt().abs() + 1.0);
        let zip_ref = x.zip(&y, |a, b| a * b + 0.5);
        let gather_ref = gather_rows(&table, &index).unwrap();
        let conv_ref = conv_transpose1d(&det_ctx(), &cin, &w, None, &params).unwrap();
        for threads in [2usize, 4, 7] {
            set_intra_threads(threads);
            prop_assert!(x.map(|v| v.sqrt().abs() + 1.0).bitwise_eq(&map_ref), "map threads={}", threads);
            prop_assert!(x.zip(&y, |a, b| a * b + 0.5).bitwise_eq(&zip_ref), "zip threads={}", threads);
            prop_assert!(gather_rows(&table, &index).unwrap().bitwise_eq(&gather_ref), "gather threads={}", threads);
            prop_assert!(
                conv_transpose1d(&det_ctx(), &cin, &w, None, &params).unwrap().bitwise_eq(&conv_ref),
                "conv threads={}", threads
            );
        }
    }
}
